"""Tests for the LP model builder."""

import math

import numpy as np
import pytest

from repro.lp.model import LpModel, Sense


class TestAddVariable:
    def test_indices_sequential(self):
        model = LpModel()
        assert model.add_variable() == 0
        assert model.add_variable() == 1
        assert model.n_variables == 2

    def test_default_name(self):
        model = LpModel()
        model.add_variable()
        assert model.variables[0].name == "v0"

    def test_binary_shortcut(self):
        model = LpModel()
        index = model.add_binary(objective=3.0, name="y")
        var = model.variables[index]
        assert (var.low, var.high, var.integer) == (0.0, 1.0, True)

    def test_invalid_bounds_rejected(self):
        model = LpModel()
        with pytest.raises(ValueError):
            model.add_variable(low=2.0, high=1.0)
        with pytest.raises(ValueError):
            model.add_variable(low=math.inf)
        with pytest.raises(ValueError):
            model.add_variable(objective=math.nan)


class TestAddConstraint:
    def test_unknown_variable_rejected(self):
        model = LpModel()
        model.add_variable()
        with pytest.raises(ValueError, match="references variable"):
            model.add_constraint({5: 1.0}, Sense.LE, 1.0)

    def test_empty_constraint_rejected(self):
        model = LpModel()
        with pytest.raises(ValueError):
            model.add_constraint({}, Sense.LE, 1.0)

    def test_non_finite_rejected(self):
        model = LpModel()
        x = model.add_variable()
        with pytest.raises(ValueError):
            model.add_constraint({x: math.inf}, Sense.LE, 1.0)
        with pytest.raises(ValueError):
            model.add_constraint({x: 1.0}, Sense.LE, math.nan)


class TestRelaxedAndBounds:
    def test_relaxed_drops_integrality(self):
        model = LpModel()
        model.add_binary()
        model.add_variable(integer=True)
        relaxed = model.relaxed()
        assert relaxed.integer_indices == []
        assert model.integer_indices == [0, 1]  # original untouched

    def test_relaxed_preserves_constraints(self):
        model = LpModel()
        x = model.add_variable(objective=1.0)
        model.add_constraint({x: 2.0}, Sense.GE, 4.0)
        relaxed = model.relaxed()
        assert relaxed.n_constraints == 1
        assert relaxed.constraints[0].rhs == 4.0

    def test_with_bounds_overrides(self):
        model = LpModel()
        x = model.add_binary()
        patched = model.with_bounds({x: (1.0, 1.0)})
        assert patched.variables[x].low == 1.0
        assert model.variables[x].low == 0.0  # original untouched


class TestToArrays:
    def test_senses_mapped(self):
        model = LpModel()
        x = model.add_variable(objective=1.0)
        y = model.add_variable(objective=-1.0)
        model.add_constraint({x: 1.0}, Sense.LE, 5.0)
        model.add_constraint({y: 2.0}, Sense.GE, 4.0)
        model.add_constraint({x: 1.0, y: 1.0}, Sense.EQ, 3.0)
        c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
        np.testing.assert_array_equal(c, [1.0, -1.0])
        assert a_ub.shape == (2, 2)
        # GE was negated into LE.
        np.testing.assert_array_equal(a_ub.toarray()[1], [0.0, -2.0])
        assert b_ub[1] == -4.0
        np.testing.assert_array_equal(a_eq.toarray(), [[1.0, 1.0]])
        np.testing.assert_array_equal(b_eq, [3.0])
        assert bounds == [(0.0, None), (0.0, None)]

    def test_no_constraints_gives_none(self):
        model = LpModel()
        model.add_variable()
        _, a_ub, b_ub, a_eq, b_eq, _ = model.to_arrays()
        assert a_ub is None and b_ub is None
        assert a_eq is None and b_eq is None
