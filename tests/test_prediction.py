"""Tests for the predictor interface, AR (Eq. 27) and EWMA."""

import numpy as np
import pytest

from repro.mec.requests import Request
from repro.prediction import (
    ArPredictor,
    EwmaPredictor,
    LastValuePredictor,
    MeanPredictor,
    OraclePredictor,
)
from repro.workload.demand import BurstyDemandModel, ConstantDemandModel


class TestPredictorBase:
    def test_history_accumulates(self):
        predictor = LastValuePredictor(3)
        predictor.observe(np.array([1.0, 2.0, 3.0]))
        predictor.observe(np.array([4.0, 5.0, 6.0]))
        assert predictor.n_observed == 2
        assert predictor.history.shape == (2, 3)

    def test_observe_shape_checked(self):
        predictor = LastValuePredictor(3)
        with pytest.raises(ValueError):
            predictor.observe(np.array([1.0, 2.0]))

    def test_observe_rejects_negative(self):
        predictor = LastValuePredictor(2)
        with pytest.raises(ValueError):
            predictor.observe(np.array([1.0, -1.0]))

    def test_prediction_error(self):
        predictor = LastValuePredictor(2)
        predictor.observe(np.array([1.0, 3.0]))
        assert predictor.prediction_error(np.array([2.0, 5.0])) == pytest.approx(1.5)

    def test_empty_history_returns_empty_matrix(self):
        predictor = LastValuePredictor(4)
        assert predictor.history.shape == (0, 4)


class TestLastValueAndMean:
    def test_last_value(self):
        predictor = LastValuePredictor(2)
        assert np.all(predictor.predict_next() == 0)
        predictor.observe(np.array([1.0, 2.0]))
        predictor.observe(np.array([5.0, 6.0]))
        np.testing.assert_array_equal(predictor.predict_next(), [5.0, 6.0])

    def test_mean(self):
        predictor = MeanPredictor(2)
        predictor.observe(np.array([1.0, 2.0]))
        predictor.observe(np.array([3.0, 6.0]))
        np.testing.assert_array_equal(predictor.predict_next(), [2.0, 4.0])


class TestArPredictor:
    def test_default_weights_valid(self):
        predictor = ArPredictor(2, order=5)
        w = predictor.weights
        assert w.shape == (5,)
        assert np.isclose(w.sum(), 1.0)
        assert np.all(np.diff(w) <= 0)  # non-increasing (Eq. 27)
        assert np.all((0 <= w) & (w <= 1))

    def test_prediction_weighted_sum(self):
        predictor = ArPredictor(1, order=2, weights=[0.75, 0.25])
        predictor.observe(np.array([4.0]))  # lag 2
        predictor.observe(np.array([8.0]))  # lag 1
        assert predictor.predict_next()[0] == pytest.approx(0.75 * 8.0 + 0.25 * 4.0)

    def test_short_history_renormalises(self):
        predictor = ArPredictor(1, order=5)
        predictor.observe(np.array([6.0]))
        assert predictor.predict_next()[0] == pytest.approx(6.0)

    def test_no_history_predicts_zero(self):
        predictor = ArPredictor(3, order=4)
        np.testing.assert_array_equal(predictor.predict_next(), np.zeros(3))

    def test_constant_series_predicted_exactly(self):
        predictor = ArPredictor(2, order=3)
        for _ in range(10):
            predictor.observe(np.array([5.0, 7.0]))
        np.testing.assert_allclose(predictor.predict_next(), [5.0, 7.0])

    def test_weight_validation(self):
        with pytest.raises(ValueError, match="sum to 1"):
            ArPredictor(1, order=2, weights=[0.9, 0.3])
        with pytest.raises(ValueError, match="non-increasing"):
            ArPredictor(1, order=2, weights=[0.25, 0.75])
        with pytest.raises(ValueError, match="length"):
            ArPredictor(1, order=3, weights=[0.5, 0.5])
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ArPredictor(1, order=2, weights=[1.5, -0.5])

    def test_order_must_be_positive(self):
        with pytest.raises(ValueError):
            ArPredictor(1, order=0)


class TestEwmaPredictor:
    def test_first_observation_initialises_state(self):
        predictor = EwmaPredictor(2, alpha=0.5)
        predictor.observe(np.array([4.0, 8.0]))
        np.testing.assert_array_equal(predictor.predict_next(), [4.0, 8.0])

    def test_smoothing(self):
        predictor = EwmaPredictor(1, alpha=0.5)
        predictor.observe(np.array([0.0]))
        predictor.observe(np.array([10.0]))
        assert predictor.predict_next()[0] == pytest.approx(5.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(1, alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictor(1, alpha=1.5)

    def test_no_history_predicts_zero(self):
        assert np.all(EwmaPredictor(3).predict_next() == 0)


class TestOraclePredictor:
    def _model(self):
        requests = [
            Request(index=i, service_index=0, basic_demand_mb=1.0 + i, hotspot_index=0)
            for i in range(3)
        ]
        return BurstyDemandModel(requests, np.random.default_rng(0))

    def test_oracle_has_zero_error(self):
        model = self._model()
        oracle = OraclePredictor(model)
        for t in range(10):
            actual = model.demand_at(t)
            np.testing.assert_allclose(oracle.predict_next(), actual)
            oracle.observe(actual)

    def test_oracle_beats_ar_on_bursty_demand(self):
        model = self._model()
        oracle = OraclePredictor(model)
        ar = ArPredictor(3, order=5)
        oracle_err, ar_err = [], []
        for t in range(80):
            actual = model.demand_at(t)
            oracle_err.append(np.mean(np.abs(oracle.predict_next() - actual)))
            ar_err.append(np.mean(np.abs(ar.predict_next() - actual)))
            oracle.observe(actual)
            ar.observe(actual)
        assert np.mean(oracle_err) < np.mean(ar_err)
