"""Tests for the GAN sample-quality metrics."""

import numpy as np
import pytest

from repro.gan import InfoRnnGan
from repro.gan.evaluation import (
    autocorrelation_gap,
    latent_recovery_accuracy,
    marginal_ks_statistic,
)


def toy_series(seed=0, window=6, batch=8):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(2.0, 1.0, size=(window, batch, 1)))


class TestMarginalKs:
    def test_identical_samples_zero(self):
        series = toy_series()
        assert marginal_ks_statistic(series, series) == 0.0

    def test_disjoint_distributions_near_one(self):
        a = toy_series()
        b = a + 100.0
        assert marginal_ks_statistic(a, b) == pytest.approx(1.0)

    def test_similar_distributions_small(self):
        a, b = toy_series(seed=1), toy_series(seed=2)
        assert marginal_ks_statistic(a, b) < 0.25

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            marginal_ks_statistic(np.zeros((4, 2)), np.zeros((4, 2, 1)))


class TestAutocorrelationGap:
    def test_same_structure_zero_gap(self):
        series = toy_series()
        assert autocorrelation_gap(series, series) == pytest.approx(0.0)

    def test_structured_vs_noise_positive_gap(self):
        window, batch = 20, 4
        trend = np.tile(
            np.linspace(1.0, 5.0, window)[:, None, None], (1, batch, 1)
        )
        rng = np.random.default_rng(3)
        noise = np.abs(rng.normal(3.0, 1.0, size=(window, batch, 1)))
        assert autocorrelation_gap(trend, noise) > 0.3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation_gap(toy_series(), toy_series()[:4])

    def test_short_window_rejected(self):
        short = toy_series()[:2]
        with pytest.raises(ValueError):
            autocorrelation_gap(short, short)


class TestLatentRecovery:
    def _trained_gan(self, steps=150):
        """Train on data where the code strongly determines the level."""
        rng = np.random.default_rng(5)
        gan = InfoRnnGan(
            code_dim=3, rng=rng, hidden_size=8, info_lambda=1.0,
            supervised_weight=5.0,
        )
        window, batch = 5, 12
        for _ in range(steps):
            labels = rng.integers(0, 3, size=batch)
            codes = np.eye(3)[labels]
            levels = np.array([1.0, 4.0, 8.0])[labels]
            real = np.abs(
                levels[None, :, None]
                + rng.normal(0, 0.2, size=(window, batch, 1))
            )
            cond = real  # simple self-conditioning for the test
            gan.train_step(real, cond, codes)
        return gan, rng

    def test_accuracy_above_chance_after_training(self):
        gan, rng = self._trained_gan()
        labels = rng.integers(0, 3, size=12)
        codes = np.eye(3)[labels]
        levels = np.array([1.0, 4.0, 8.0])[labels]
        cond = np.abs(
            levels[None, :, None] + rng.normal(0, 0.2, size=(5, 12, 1))
        )
        accuracy = latent_recovery_accuracy(gan, cond, codes, n_samples=3)
        assert accuracy > 1.0 / 3.0 + 0.15  # clearly above chance

    def test_accuracy_in_unit_interval(self):
        gan, rng = self._trained_gan(steps=2)
        codes = np.eye(3)[rng.integers(0, 3, size=6)]
        cond = np.abs(rng.normal(2, 1, size=(5, 6, 1)))
        accuracy = latent_recovery_accuracy(gan, cond, codes)
        assert 0.0 <= accuracy <= 1.0

    def test_n_samples_validated(self):
        gan, rng = self._trained_gan(steps=1)
        codes = np.eye(3)[[0]]
        cond = np.abs(rng.normal(2, 1, size=(5, 1, 1)))
        with pytest.raises(ValueError):
            latent_recovery_accuracy(gan, cond, codes, n_samples=0)
