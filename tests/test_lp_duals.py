"""Tests for LP duals and station congestion prices."""

import numpy as np
import pytest

from repro.core.formulation import build_caching_model
from repro.lp.duals import capacity_shadow_prices, solve_lp_with_duals
from repro.lp.model import LpModel, Sense
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


class TestSolveLpWithDuals:
    def test_binding_constraint_has_positive_price(self):
        # min x  s.t. x >= 3  ->  dual of the GE constraint is -1 in the
        # user's orientation (tightening `x >= 3` upward raises the cost).
        model = LpModel()
        x = model.add_variable(objective=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 3.0)
        duals = solve_lp_with_duals(model)
        assert duals.is_optimal
        assert duals.primal.value_of(x) == pytest.approx(3.0)
        assert duals.ineq_duals[0] == pytest.approx(-1.0)

    def test_le_shadow_price_positive_when_binding(self):
        # max 2x (<=> min -2x) with x <= 5: relaxing x<=5 by 1 improves
        # the objective by 2 -> price +2.
        model = LpModel()
        x = model.add_variable(objective=-2.0)
        model.add_constraint({x: 1.0}, Sense.LE, 5.0)
        duals = solve_lp_with_duals(model)
        assert duals.ineq_duals[0] == pytest.approx(2.0)

    def test_slack_constraint_zero_price(self):
        model = LpModel()
        x = model.add_variable(objective=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 3.0)
        model.add_constraint({x: 1.0}, Sense.LE, 100.0)  # never binding
        duals = solve_lp_with_duals(model)
        assert duals.ineq_duals[1] == pytest.approx(0.0)

    def test_equality_dual_reported(self):
        model = LpModel()
        x = model.add_variable(objective=3.0)
        model.add_constraint({x: 1.0}, Sense.EQ, 2.0)
        duals = solve_lp_with_duals(model)
        assert duals.eq_duals.shape == (1,)
        assert duals.eq_duals[0] == pytest.approx(-3.0)

    def test_infeasible_reports_status(self):
        model = LpModel()
        x = model.add_variable(low=0.0, high=1.0, objective=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 5.0)
        duals = solve_lp_with_duals(model)
        assert not duals.is_optimal

    def test_strong_duality_objective_match(self):
        """b'y (duals) equals the primal optimum for a pure-LE model with
        free-ish bounds absorbed into constraints."""
        model = LpModel()
        x = model.add_variable(objective=-1.0)
        y = model.add_variable(objective=-2.0)
        model.add_constraint({x: 1.0, y: 1.0}, Sense.LE, 4.0)
        model.add_constraint({x: 1.0}, Sense.LE, 3.0)
        duals = solve_lp_with_duals(model)
        # Dual objective: sum over LE rows of price * rhs (signs per our
        # convention give the objective *improvement* available).
        dual_value = -(duals.ineq_duals @ np.array([4.0, 3.0]))
        assert duals.primal.objective == pytest.approx(dual_value, abs=1e-9)


class TestCapacityShadowPrices:
    def _congested_world(self):
        rngs = RngRegistry(seed=61)
        network = MECNetwork.synthetic(5, 2, rngs)
        rng = rngs.get("requests")
        requests = [
            Request(
                index=i,
                service_index=int(rng.integers(2)),
                basic_demand_mb=2.0,
            )
            for i in range(8)
        ]
        demands = np.full(8, 2.0)
        # Make compute scarce so capacity rows bind at the fast stations.
        network.c_unit_mhz = float(network.capacities_mhz.min() / 2.5)
        return network, requests, demands

    def test_prices_shape_and_nonnegative(self):
        network, requests, demands = self._congested_world()
        model, _ = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        duals = solve_lp_with_duals(model)
        prices = capacity_shadow_prices(model, duals, network.n_stations)
        assert prices.shape == (network.n_stations,)
        assert np.all(prices >= -1e-9)

    def test_congested_fast_station_is_priced(self):
        network, requests, demands = self._congested_world()
        theta = network.delays.true_means
        model, variables = build_caching_model(network, requests, demands, theta)
        duals = solve_lp_with_duals(model)
        prices = capacity_shadow_prices(model, duals, network.n_stations)
        x = variables.x_matrix(duals.primal.values)
        loads = (x * demands[:, None]).sum(axis=0) * network.c_unit_mhz
        utilisation = loads / network.capacities_mhz
        # Complementary slackness: priced stations are saturated.
        for i in range(network.n_stations):
            if prices[i] > 1e-6:
                assert utilisation[i] == pytest.approx(1.0, abs=1e-6)
        # And with compute this scarce, at least one station is priced.
        assert prices.max() > 1e-6

    def test_requires_optimal_duals(self):
        network, requests, demands = self._congested_world()
        model, _ = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        bad = solve_lp_with_duals(LpModelWithImpossibleRow(model))
        with pytest.raises(ValueError, match="optimal"):
            capacity_shadow_prices(model, bad, network.n_stations)


def LpModelWithImpossibleRow(model):
    """A copy of ``model`` with an infeasible extra constraint."""
    clone = model.with_bounds({})
    first = 0
    clone.add_constraint({first: 1.0}, Sense.GE, 10.0)
    clone.add_constraint({first: 1.0}, Sense.LE, -10.0)
    return clone
