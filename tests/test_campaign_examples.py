"""The shipped example campaign specs stay valid and pin their grids.

Every TOML under examples/campaigns must parse, validate against the
registries and expand to its documented cell list with stable derived
seeds (the pinned seeds below are the campaign contract: changing the
seeding derivation or the cell-id scheme invalidates existing result
trees, and must show up here).  The smoke campaign is additionally run
end-to-end at reduced scale and checked for bit-identical equivalence
with a direct ``run_repetitions`` call over the same cells.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignScenario,
    CampaignSpec,
    failure_schedule,
    load_campaign_toml,
    run_campaign,
)
from repro.sim import run_repetitions

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "campaigns"


def load(name: str) -> CampaignSpec:
    return load_campaign_toml(EXAMPLES / f"{name}.toml")


class TestSpecsParseAndExpand:
    @pytest.mark.parametrize(
        "name", ["quickstart", "network_scaling", "resilience_study", "smoke"]
    )
    def test_loads_and_expands(self, name):
        spec = load(name)
        cells = spec.expand()
        assert cells
        assert len({c.seed for c in cells}) == len(cells)

    def test_quickstart_matches_script_setting(self):
        spec = load("quickstart")
        assert spec.seed == 7
        assert spec.scenario.controllers == ("OL_GD", "Greedy_GD")
        assert spec.scenario.horizon == 40
        assert spec.scenario.n_stations == 40
        assert [c.cell_id for c in spec.expand()] == ["base"]

    def test_network_scaling_sweeps_sizes(self):
        spec = load("network_scaling")
        assert spec.scenario.controllers == ("OL_GD", "Pri_GD", "Greedy_GD")
        assert [c.cell_id for c in spec.expand()] == [
            "n_stations=30", "n_stations=60", "n_stations=90",
        ]
        assert [c.scenario.n_stations for c in spec.expand()] == [30, 60, 90]

    def test_resilience_pins_outages_and_sweeps_workload(self):
        spec = load("resilience_study")
        assert len(spec.scenario.outages) == 2
        assert spec.scenario.outages[0].remaining_fraction == 0.0
        assert spec.scenario.outages[1].remaining_fraction == 0.3
        cells = spec.expand()
        assert [c.cell_id for c in cells] == [
            "workload=constant", "workload=bursty",
        ]
        for cell in cells:
            schedule = failure_schedule(cell.scenario)
            assert schedule is not None and schedule.n_outages == 2

    def test_smoke_is_two_by_two(self):
        assert len(load("smoke").expand()) == 4

    def test_cell_seeds_are_pinned(self):
        """Seed derivation is part of the on-disk campaign contract."""
        spec = load("smoke")
        seeds = {c.cell_id: c.seed for c in spec.expand()}
        assert seeds == {
            "n_stations=12-workload=constant": 10348842576864410878,
            "n_stations=12-workload=bursty": 1111802933159792548,
            "n_stations=16-workload=constant": 8974672453904589343,
            "n_stations=16-workload=bursty": 10458316430341636518,
        }


class TestSmokeEquivalence:
    def test_campaign_cells_equal_direct_runs(self, tmp_path):
        # The shipped smoke spec, scaled down to a single repetition so
        # the end-to-end check stays fast.
        spec = dataclasses.replace(load("smoke"), repetitions=1)
        result = run_campaign(spec, tmp_path / "camp")
        assert result.complete
        for cell in result.cells:
            direct = run_repetitions(
                CampaignScenario(cell.scenario),
                seed=cell.seed,
                repetitions=spec.repetitions,
                horizon=cell.scenario.horizon,
                failures=failure_schedule(cell.scenario),
            )
            study = result.studies[cell.cell_id]
            for controller in cell.scenario.controllers:
                for metric in ("mean_delay_ms", "total_churn"):
                    assert (
                        study.summary(controller, metric).values
                        == direct.summary(controller, metric).values
                    ), (cell.cell_id, controller, metric)
