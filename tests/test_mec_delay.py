"""Tests for the per-station delay processes d_i(t)."""

import numpy as np
import pytest

from repro.mec.basestation import BaseStationTier
from repro.mec.delay import DriftingDelay, UniformTierDelay
from repro.mec.topology import gtitm_topology, place_base_stations


@pytest.fixture
def stations():
    g = gtitm_topology(30, np.random.default_rng(0))
    return place_base_stations(g, np.random.default_rng(1))


class TestUniformTierDelay:
    def test_means_within_tier_bands(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2))
        for bs, mean in zip(stations, process.true_means):
            lo, hi = bs.profile.unit_delay_ms
            assert lo <= mean <= hi

    def test_sample_stable_within_slot(self, stations):
        """d_i(t) must not change during a slot (paper §III-D)."""
        process = UniformTierDelay(stations, np.random.default_rng(2))
        np.testing.assert_array_equal(process.sample(3), process.sample(3))

    def test_samples_vary_across_slots(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2))
        assert not np.array_equal(process.sample(0), process.sample(1))

    def test_samples_within_noise_band(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2), noise_fraction=0.2)
        means = process.true_means
        for t in range(20):
            d = process.sample(t)
            assert np.all(d >= means * 0.8 - 1e-9)
            assert np.all(d <= means * 1.2 + 1e-9)

    def test_empirical_mean_converges_to_theta(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2))
        samples = np.stack([process.sample(t) for t in range(600)])
        np.testing.assert_allclose(samples.mean(axis=0), process.true_means, rtol=0.05)

    def test_bounds_cover_all_samples(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2))
        lo, hi = process.bounds
        for t in range(50):
            d = process.sample(t)
            assert np.all(d >= lo - 1e-9)
            assert np.all(d <= hi + 1e-9)

    def test_congestion_scales_means(self, stations):
        factors = [2.0] * len(stations)
        base = UniformTierDelay(stations, np.random.default_rng(2))
        congested = UniformTierDelay(
            stations, np.random.default_rng(2), congestion=factors
        )
        np.testing.assert_allclose(congested.true_means, base.true_means * 2.0)

    def test_congestion_below_one_rejected(self, stations):
        with pytest.raises(ValueError):
            UniformTierDelay(
                stations, np.random.default_rng(2), congestion=[0.5] * len(stations)
            )

    def test_congestion_wrong_length_rejected(self, stations):
        with pytest.raises(ValueError):
            UniformTierDelay(stations, np.random.default_rng(2), congestion=[1.0])

    def test_noise_fraction_one_rejected(self, stations):
        with pytest.raises(ValueError):
            UniformTierDelay(stations, np.random.default_rng(2), noise_fraction=1.0)

    def test_empty_stations_rejected(self):
        with pytest.raises(ValueError):
            UniformTierDelay([], np.random.default_rng(0))

    def test_n_stations(self, stations):
        process = UniformTierDelay(stations, np.random.default_rng(2))
        assert process.n_stations == len(stations)


class TestDriftingDelay:
    def test_sample_stable_within_slot(self, stations):
        process = DriftingDelay(stations, np.random.default_rng(3))
        np.testing.assert_array_equal(process.sample(5), process.sample(5))

    def test_means_drift_over_time(self, stations):
        process = DriftingDelay(stations, np.random.default_rng(3), drift_ms=2.0)
        early = np.mean([process.sample(t) for t in range(5)], axis=0)
        late = np.mean([process.sample(t) for t in range(200, 205)], axis=0)
        # With a substantial walk, at least some stations moved noticeably.
        assert np.max(np.abs(late - early)) > 1.0

    def test_out_of_order_sampling_consistent(self, stations):
        """Sampling slot 10 then slot 3 must agree with forward order."""
        p1 = DriftingDelay(stations, np.random.default_rng(4))
        d10 = p1.sample(10)
        p2 = DriftingDelay(stations, np.random.default_rng(4))
        for t in range(11):
            d = p2.sample(t)
        np.testing.assert_array_equal(d10, d)

    def test_samples_respect_bounds(self, stations):
        process = DriftingDelay(
            stations,
            np.random.default_rng(5),
            drift_ms=5.0,
            mean_floor_ms=1.0,
            mean_ceil_ms=60.0,
        )
        lo, hi = process.bounds
        for t in range(100):
            d = process.sample(t)
            assert np.all(d >= lo - 1e-9)
            assert np.all(d <= hi + 1e-9)

    def test_true_means_are_initial(self, stations):
        process = DriftingDelay(stations, np.random.default_rng(6))
        for bs, mean in zip(stations, process.true_means):
            lo, hi = bs.profile.unit_delay_ms
            assert lo <= mean <= hi

    def test_floor_above_ceil_rejected(self, stations):
        with pytest.raises(ValueError):
            DriftingDelay(
                stations, np.random.default_rng(0), mean_floor_ms=50.0, mean_ceil_ms=10.0
            )
