"""The ``repro serve`` subcommand, end to end, plus CLI flag consistency.

The subprocess test is the PR's lifecycle acceptance scenario run the way
an operator would: ``python -m repro serve --stdio`` driven over pipes,
killed with SIGTERM mid-slot (offers already buffered), restarted with
``--resume``, and the stitched decision trace compared bit-for-bit
against an uninterrupted in-process server fed the same offers.

The flag-audit test pins the satellite contract: ``--seed``, ``--jobs``,
``--checkpoint-dir``, ``--checkpoint-every``, ``--resume``,
``--metrics-out`` and ``--trace`` spell the same concept — same dest,
same parsed value — on every subcommand that supports them.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.serve import DecisionServer, ServeConfig

HORIZON = 8
CUT = 5  # SIGTERM lands after this many completed slots

# Must mirror _cmd_serve's ServeConfig construction exactly: the
# subprocess trace is compared against an in-process server built from
# this config (CLI-unexposed fields keep their ServeConfig defaults).
WORLD = dict(
    controller="OL_GD",
    seed=11,
    horizon=8,
    n_stations=10,
    n_services=2,
    n_requests=6,
)

CLI_WORLD_FLAGS = [
    "--controller", "OL_GD", "--seed", "11", "--horizon", "8",
    "--stations", "10", "--services", "2", "--requests", "6",
]


def offers_for(slot):
    rng = np.random.default_rng(1000 + slot)
    return [
        (int(rng.integers(WORLD["n_requests"])), float(rng.uniform(0.5, 2.0)))
        for _ in range(1 + slot % 3)
    ]


def deterministic(placement_json):
    """A placement's trace-identity fields (wall-clock timing dropped)."""
    return {
        key: value
        for key, value in placement_json.items()
        if key != "decision_seconds"
    }


class ServeProcess:
    """``repro serve --stdio`` as a pipe-driven protocol peer."""

    def __init__(self, tmp_path: Path, *extra: str) -> None:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [src, env.get("PYTHONPATH")])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--stdio",
                *CLI_WORLD_FLAGS,
                "--checkpoint-dir", str(tmp_path),
                "--checkpoint-every", "3",
                *extra,
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )

    def request(self, payload):
        assert self.proc.stdin is not None and self.proc.stdout is not None
        self.proc.stdin.write(json.dumps(payload) + "\n")
        self.proc.stdin.flush()
        line = self.proc.stdout.readline()
        assert line, self.proc.stderr.read() if self.proc.stderr else ""
        return json.loads(line)

    def terminate_and_wait(self, sig=signal.SIGTERM, timeout=30):
        self.proc.send_signal(sig)
        return self.proc.wait(timeout=timeout)


@pytest.mark.slow
class TestServeSubprocess:
    def test_sigterm_drain_resume_bit_identity(self, tmp_path):
        # ---- reference: uninterrupted in-process server ---------------- #
        reference = DecisionServer(ServeConfig(**WORLD))
        reference.start()
        expected = []
        for slot in range(HORIZON):
            for request, volume in offers_for(slot):
                reference.offer(request, volume)
            expected.append(deterministic(reference.decide(slot).to_json()))
        reference.stop()

        # ---- first process: serve CUT slots, buffer the open slot, ---- #
        # ---- then SIGTERM (drain + checkpoint + clean exit)        ---- #
        first = ServeProcess(tmp_path)
        trace = []
        for slot in range(CUT):
            for request, volume in offers_for(slot):
                assert first.request(
                    {"op": "offer", "request": request, "volume_mb": volume}
                )["accepted"]
            response = first.request({"op": "decide", "slot": slot})
            trace.append(deterministic(response["placement"]))
        pending = offers_for(CUT)
        for request, volume in pending:
            assert first.request(
                {"op": "offer", "request": request, "volume_mb": volume}
            )["accepted"]
        assert first.terminate_and_wait() == 0
        snapshot = ServeConfig(
            **WORLD, checkpoint_dir=tmp_path
        ).snapshot_path()
        assert snapshot.exists()

        # ---- second process: --resume, close the interrupted slot ----- #
        second = ServeProcess(tmp_path, "--resume")
        status = second.request({"op": "status"})["status"]
        assert status["slot"] == CUT
        assert status["buffer_fill"] == len(pending)
        trace.append(
            deterministic(
                second.request({"op": "decide", "slot": CUT})["placement"]
            )
        )
        for slot in range(CUT + 1, HORIZON):
            for request, volume in offers_for(slot):
                assert second.request(
                    {"op": "offer", "request": request, "volume_mb": volume}
                )["accepted"]
            trace.append(
                deterministic(
                    second.request({"op": "decide", "slot": slot})["placement"]
                )
            )
        assert second.terminate_and_wait() == 0

        assert trace == expected


class TestServeCommandErrors:
    def test_unknown_controller_exits_2(self, capsys):
        assert main(["serve", "--controller", "Nope", "--stdio"]) == 2
        assert "unknown controller" in capsys.readouterr().err

    def test_resume_without_checkpoint_dir_exits_2(self, capsys):
        assert main(["serve", "--resume", "--stdio"]) == 2
        assert "checkpoint_dir" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# Shared flag spellings (the CLI-consistency satellite)
# --------------------------------------------------------------------- #

#: flag -> (argv value, parsed dest value); None = store_true.
SHARED_FLAGS = {
    "--seed": ("7", 7),
    "--jobs": ("2", 2),
    "--checkpoint-dir": ("ckpt", Path("ckpt")),
    "--checkpoint-every": ("3", 3),
    "--resume": (None, True),
    "--metrics-out": ("m.json", Path("m.json")),
    "--trace": ("t.jsonl", Path("t.jsonl")),
}

#: subcommand prefix -> flags it must support with identical semantics.
SUBCOMMANDS = {
    ("figure", "fig3"): set(SHARED_FLAGS),
    ("report",): set(SHARED_FLAGS),
    ("serve",): set(SHARED_FLAGS),
    # campaign persistence is rooted at --out and seeds live in the TOML,
    # so only the execution/telemetry flags apply there.
    ("campaign", "run", "spec.toml", "--out", "o"): {
        "--jobs", "--resume", "--metrics-out", "--trace",
    },
    ("trace", "--out", "o"): {"--seed"},
}


class TestSharedFlagSpellings:
    @pytest.mark.parametrize(
        "prefix", sorted(SUBCOMMANDS), ids=lambda p: "-".join(p[:2])
    )
    def test_flags_parse_identically(self, prefix):
        parser = build_parser()
        for flag in sorted(SUBCOMMANDS[prefix]):
            value, expected = SHARED_FLAGS[flag]
            argv = list(prefix) + (
                [flag] if value is None else [flag, value]
            )
            args = parser.parse_args(argv)
            dest = flag.lstrip("-").replace("-", "_")
            assert getattr(args, dest) == expected, (prefix, flag)

    def test_serve_accepts_every_shared_flag_at_once(self):
        argv = ["serve"]
        for flag, (value, _) in sorted(SHARED_FLAGS.items()):
            argv += [flag] if value is None else [flag, value]
        args = build_parser().parse_args(argv)
        assert args.command == "serve"
        assert (args.seed, args.jobs) == (7, 2)
        assert (args.checkpoint_dir, args.checkpoint_every) == (
            Path("ckpt"), 3,
        )
        assert args.resume and args.metrics_out == Path("m.json")
