"""Tests for unit conversions and the Stopwatch."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.timer import Stopwatch
from repro.utils.units import (
    mbps_to_mb_per_ms,
    mhz_to_ghz,
    ms_to_seconds,
    seconds_to_ms,
)


class TestUnits:
    def test_seconds_ms_round_trip(self):
        assert ms_to_seconds(seconds_to_ms(1.25)) == pytest.approx(1.25)

    def test_seconds_to_ms(self):
        assert seconds_to_ms(2.0) == 2000.0

    def test_mhz_to_ghz(self):
        assert mhz_to_ghz(8000.0) == pytest.approx(8.0)

    def test_mbps_to_mb_per_ms(self):
        # 800 Mbps = 100 MB/s = 0.1 MB/ms
        assert mbps_to_mb_per_ms(800.0) == pytest.approx(0.1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seconds_to_ms(-1.0)
        with pytest.raises(ValueError):
            mbps_to_mb_per_ms(-5.0)

    @given(st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_round_trip_property(self, seconds):
        assert ms_to_seconds(seconds_to_ms(seconds)) == pytest.approx(seconds)


class TestStopwatch:
    def test_lap_records_positive_duration(self):
        watch = Stopwatch()
        watch.start()
        duration = watch.stop()
        assert duration >= 0.0
        assert watch.laps == [duration]

    def test_context_manager(self):
        watch = Stopwatch()
        with watch:
            pass
        assert len(watch.laps) == 1

    def test_total_and_mean(self):
        watch = Stopwatch()
        for _ in range(3):
            with watch:
                pass
        assert watch.total_seconds == pytest.approx(sum(watch.laps))
        assert watch.mean_seconds == pytest.approx(watch.total_seconds / 3)

    def test_mean_of_empty_is_zero(self):
        assert Stopwatch().mean_seconds == 0.0

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError, match="already running"):
            watch.start()
        # The failed start must not clobber the running lap.
        assert watch.stop() >= 0.0
        assert len(watch.laps) == 1

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not started"):
            Stopwatch().stop()

    def test_double_stop_raises(self):
        watch = Stopwatch()
        watch.start()
        watch.stop()
        with pytest.raises(RuntimeError, match="not started"):
            watch.stop()

    def test_exception_inside_context_still_records_lap(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch:
                raise ValueError("boom")
        # __exit__ stopped the lap, so the watch is reusable immediately.
        assert len(watch.laps) == 1
        with watch:
            pass
        assert len(watch.laps) == 2

    def test_reset_clears_everything(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.start()
        watch.reset()
        assert watch.laps == []
        # After reset the watch can start cleanly again.
        watch.start()
        watch.stop()
        assert len(watch.laps) == 1
