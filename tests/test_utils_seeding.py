"""Tests for the deterministic RNG registry and seed derivation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.seeding import RngRegistry, fork_rng, spawn_seeds


class TestRngRegistry:
    def test_same_name_returns_cached_generator(self):
        rngs = RngRegistry(seed=1)
        assert rngs.get("a") is rngs.get("a")

    def test_different_names_give_different_streams(self):
        rngs = RngRegistry(seed=1)
        a = rngs.get("a").integers(0, 2**31, size=16)
        b = rngs.get("b").integers(0, 2**31, size=16)
        assert not np.array_equal(a, b)

    def test_same_seed_reproduces_stream(self):
        draws1 = RngRegistry(seed=5).get("topology").uniform(size=10)
        draws2 = RngRegistry(seed=5).get("topology").uniform(size=10)
        np.testing.assert_array_equal(draws1, draws2)

    def test_different_seeds_differ(self):
        draws1 = RngRegistry(seed=5).get("topology").uniform(size=10)
        draws2 = RngRegistry(seed=6).get("topology").uniform(size=10)
        assert not np.array_equal(draws1, draws2)

    def test_stream_isolated_from_other_stream_usage(self):
        """Drawing from stream A must not perturb stream B."""
        rngs1 = RngRegistry(seed=9)
        rngs1.get("noise").uniform(size=1000)  # heavy use of another stream
        b1 = rngs1.get("delays").uniform(size=8)

        rngs2 = RngRegistry(seed=9)
        b2 = rngs2.get("delays").uniform(size=8)
        np.testing.assert_array_equal(b1, b2)

    def test_fresh_replaces_stream(self):
        rngs = RngRegistry(seed=3)
        first = rngs.get("x")
        first.uniform(size=4)
        replaced = rngs.fresh("x")
        assert replaced is not first
        # The fresh stream restarts from the beginning.
        np.testing.assert_array_equal(
            replaced.uniform(size=4), RngRegistry(seed=3).get("x").uniform(size=4)
        )

    def test_child_registry_is_deterministic(self):
        a = RngRegistry(seed=11).child("rep0").get("s").uniform(size=4)
        b = RngRegistry(seed=11).child("rep0").get("s").uniform(size=4)
        np.testing.assert_array_equal(a, b)

    def test_child_registries_differ_by_name(self):
        root = RngRegistry(seed=11)
        a = root.child("rep0").get("s").uniform(size=4)
        b = root.child("rep1").get("s").uniform(size=4)
        assert not np.array_equal(a, b)

    def test_child_derivation_not_commutative(self):
        """Regression: XOR composition made child('a').child('b') equal
        child('b').child('a'), correlating "independent" repetitions."""
        ab = RngRegistry(seed=7).child("a").child("b")
        ba = RngRegistry(seed=7).child("b").child("a")
        assert ab.seed != ba.seed
        a = ab.get("s").uniform(size=8)
        b = ba.get("s").uniform(size=8)
        assert not np.array_equal(a, b)

    def test_child_streams_pinned(self):
        """Pin the SeedSequence-based child derivation: these values are a
        compatibility contract — changing them shifts every repetition's
        world, so any change must be deliberate and documented."""
        child = RngRegistry(seed=2020).child("rep0")
        assert child.seed == 3711570800993666580
        np.testing.assert_array_equal(
            child.get("s").integers(0, 2**31, size=4),
            [1804112083, 480174828, 1805076252, 600528749],
        )

    def test_child_distinct_from_root_stream(self):
        """child(name) must not alias the stream get(name) of the parent."""
        root = RngRegistry(seed=13)
        stream_draws = root.get("x").uniform(size=8)
        child_draws = root.child("x").get("x").uniform(size=8)
        assert not np.array_equal(stream_draws, child_draws)

    def test_names_lists_created_streams(self):
        rngs = RngRegistry(seed=0)
        rngs.get("b")
        rngs.get("a")
        assert rngs.names() == ["a", "b"]

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            RngRegistry(seed=-1)

    def test_rejects_non_integer_seed(self):
        with pytest.raises(TypeError):
            RngRegistry(seed=1.5)  # type: ignore[arg-type]

    def test_rejects_bool_seed(self):
        with pytest.raises(TypeError):
            RngRegistry(seed=True)  # type: ignore[arg-type]


class TestForkRng:
    def test_fork_count(self):
        children = fork_rng(np.random.default_rng(0), 5)
        assert len(children) == 5

    def test_forked_streams_are_independent(self):
        children = fork_rng(np.random.default_rng(0), 2)
        a = children[0].uniform(size=16)
        b = children[1].uniform(size=16)
        assert not np.array_equal(a, b)

    def test_fork_zero_returns_empty(self):
        assert fork_rng(np.random.default_rng(0), 0) == []

    def test_fork_negative_raises(self):
        with pytest.raises(ValueError):
            fork_rng(np.random.default_rng(0), -1)


class TestSpawnSeeds:
    def test_spawn_is_deterministic(self):
        assert list(spawn_seeds(7, 4)) == list(spawn_seeds(7, 4))

    def test_spawned_seeds_unique(self):
        seeds = list(spawn_seeds(7, 100))
        assert len(set(seeds)) == 100

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            list(spawn_seeds(7, -2))

    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=32))
    def test_spawn_yields_exactly_n_non_negative_seeds(self, seed, n):
        seeds = list(spawn_seeds(seed, n))
        assert len(seeds) == n
        assert all(s >= 0 for s in seeds)
