"""Tests for the remote data center and the cloud-only baseline."""

import numpy as np
import pytest

from repro.mec.datacenter import RemoteDataCenter, cloud_only_delay_ms
from repro.mec.requests import Request


class TestRemoteDataCenter:
    def test_paper_default_band(self):
        dc = RemoteDataCenter(np.random.default_rng(0))
        assert dc.delay_band_ms == (50.0, 100.0)
        assert dc.mean_unit_delay_ms == 75.0

    def test_delays_within_band(self):
        dc = RemoteDataCenter(np.random.default_rng(1))
        for t in range(100):
            assert 50.0 <= dc.unit_delay_ms(t) <= 100.0

    def test_slot_deterministic_and_order_independent(self):
        dc1 = RemoteDataCenter(np.random.default_rng(2))
        dc2 = RemoteDataCenter(np.random.default_rng(2))
        forward = [dc1.unit_delay_ms(t) for t in range(20)]
        backward = [dc2.unit_delay_ms(t) for t in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_custom_band(self):
        dc = RemoteDataCenter(np.random.default_rng(3), delay_band_ms=(10.0, 20.0))
        assert all(10.0 <= dc.unit_delay_ms(t) <= 20.0 for t in range(30))

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            RemoteDataCenter(np.random.default_rng(0), delay_band_ms=(100.0, 50.0))
        with pytest.raises(ValueError):
            RemoteDataCenter(np.random.default_rng(0), delay_band_ms=(0.0, 50.0))

    def test_negative_slot_rejected(self):
        dc = RemoteDataCenter(np.random.default_rng(0))
        with pytest.raises(ValueError):
            dc.unit_delay_ms(-1)


class TestCloudOnlyBaseline:
    def _requests(self, n=4):
        return [
            Request(index=i, service_index=0, basic_demand_mb=1.0 + i)
            for i in range(n)
        ]

    def test_matches_hand_computation(self):
        dc = RemoteDataCenter(np.random.default_rng(4))
        requests = self._requests()
        demands = np.array([1.0, 2.0, 3.0, 4.0])
        expected = demands.mean() * dc.unit_delay_ms(7)
        assert cloud_only_delay_ms(dc, requests, demands, 7) == pytest.approx(expected)

    def test_dominated_by_typical_edge_delay(self):
        """The premise: edge unit delays (5-50 ms) beat the cloud's 50-100."""
        dc = RemoteDataCenter(np.random.default_rng(5))
        requests = self._requests()
        demands = np.ones(4)
        cloud = cloud_only_delay_ms(dc, requests, demands, 0)
        best_edge = demands.mean() * 5.0  # femto lower bound
        assert cloud > best_edge

    def test_shape_validation(self):
        dc = RemoteDataCenter(np.random.default_rng(6))
        with pytest.raises(ValueError):
            cloud_only_delay_ms(dc, self._requests(), np.ones(2), 0)
        with pytest.raises(ValueError):
            cloud_only_delay_ms(dc, self._requests(), -np.ones(4), 0)
