"""Tests for constant and bursty demand models (Eq. 1)."""

import numpy as np
import pytest

from repro.mec.requests import Request
from repro.workload.bursty import FlashCrowdSchedule
from repro.workload.demand import BurstyDemandModel, ConstantDemandModel


def make_requests(n=6, hotspots=(0, 0, 1, 1, None, None)):
    return [
        Request(
            index=i,
            service_index=i % 2,
            basic_demand_mb=1.0 + i,
            hotspot_index=hotspots[i % len(hotspots)],
        )
        for i in range(n)
    ]


class TestConstantDemandModel:
    def test_demand_is_basic_everywhere(self):
        model = ConstantDemandModel(make_requests())
        for t in range(10):
            np.testing.assert_array_equal(model.demand_at(t), model.basic_demands)

    def test_bursty_is_zero(self):
        model = ConstantDemandModel(make_requests())
        assert np.all(model.bursty_at(3) == 0.0)

    def test_matrix_shape(self):
        model = ConstantDemandModel(make_requests(4, hotspots=(0, 1, None, 0)))
        assert model.matrix(7).shape == (7, 4)

    def test_matrix_zero_horizon(self):
        model = ConstantDemandModel(make_requests())
        assert model.matrix(0).shape == (0, 6)

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            ConstantDemandModel([])

    def test_requests_copy_returned(self):
        requests = make_requests()
        model = ConstantDemandModel(requests)
        got = model.requests
        got.pop()
        assert model.n_requests == len(requests)


class TestBurstyDemandModel:
    def test_demand_at_least_basic(self):
        model = BurstyDemandModel(make_requests(), np.random.default_rng(0))
        for t in range(50):
            assert np.all(model.demand_at(t) >= model.basic_demands - 1e-12)

    def test_deterministic_per_slot(self):
        model = BurstyDemandModel(make_requests(), np.random.default_rng(1))
        np.testing.assert_array_equal(model.bursty_at(9), model.bursty_at(9))

    def test_reproducible_across_instances(self):
        a = BurstyDemandModel(make_requests(), np.random.default_rng(2))
        b = BurstyDemandModel(make_requests(), np.random.default_rng(2))
        np.testing.assert_array_equal(a.matrix(30), b.matrix(30))

    def test_hotspot_correlation(self):
        """Users on the same hotspot must burst in the same slots."""
        requests = make_requests(4, hotspots=(0, 0, 1, 1))
        model = BurstyDemandModel(
            requests, np.random.default_rng(3), p_enter=0.3, p_exit=0.3, jitter=0.0
        )
        for t in range(200):
            bursts = model.bursty_at(t)
            # Same hotspot, zero jitter -> identical burst volume.
            assert bursts[0] == pytest.approx(bursts[1])
            assert bursts[2] == pytest.approx(bursts[3])

    def test_different_hotspots_independent(self):
        requests = make_requests(4, hotspots=(0, 0, 1, 1))
        model = BurstyDemandModel(
            requests, np.random.default_rng(4), p_enter=0.2, p_exit=0.3
        )
        states0 = [model.hotspot_state(0, t) for t in range(300)]
        states1 = [model.hotspot_state(1, t) for t in range(300)]
        assert states0 != states1

    def test_jitter_spreads_users(self):
        requests = make_requests(2, hotspots=(0, 0))
        model = BurstyDemandModel(
            requests, np.random.default_rng(5), p_enter=1.0, p_exit=0.0, jitter=0.3
        )
        bursts = model.bursty_at(5)
        assert bursts[0] != bursts[1]
        # Ratio bounded by the jitter band.
        ratio = bursts[0] / bursts[1]
        assert 0.7 / 1.3 <= ratio <= 1.3 / 0.7

    def test_flash_crowd_adds_amplitude(self):
        requests = make_requests(2, hotspots=(0, 0))
        quiet = BurstyDemandModel(
            requests, np.random.default_rng(6), p_enter=0.0, jitter=0.0
        )
        schedule = FlashCrowdSchedule().add_event(0, start=3, duration=2, amplitude_mb=10.0)
        crowded = BurstyDemandModel(
            requests,
            np.random.default_rng(6),
            flash_crowds=schedule,
            p_enter=0.0,
            jitter=0.0,
        )
        np.testing.assert_array_equal(quiet.bursty_at(3), np.zeros(2))
        np.testing.assert_array_equal(crowded.bursty_at(3), np.full(2, 10.0))
        np.testing.assert_array_equal(crowded.bursty_at(5), np.zeros(2))

    def test_solo_requests_burst_independently(self):
        requests = make_requests(2, hotspots=(None, None))
        model = BurstyDemandModel(
            requests, np.random.default_rng(7), p_enter=0.3, p_exit=0.3
        )
        series = model.matrix(400)
        # Two independent chains almost surely diverge within 400 slots.
        assert not np.array_equal(series[:, 0], series[:, 1])

    def test_hotspot_state_unknown_raises(self):
        model = BurstyDemandModel(make_requests(), np.random.default_rng(8))
        with pytest.raises(KeyError):
            model.hotspot_state(99, 0)

    def test_hotspot_indices(self):
        model = BurstyDemandModel(
            make_requests(4, hotspots=(2, 0, 2, None)), np.random.default_rng(9)
        )
        assert model.hotspot_indices == [0, 2]

    def test_bursts_are_bursty(self):
        """The demand series must be right-skewed: burst peaks well above median."""
        requests = make_requests(1, hotspots=(0,))
        model = BurstyDemandModel(
            requests, np.random.default_rng(10), p_enter=0.1, p_exit=0.4
        )
        series = model.matrix(2000)[:, 0]
        assert series.max() > 3.0 * np.median(series)


def make_wide_requests(n=60, n_hotspots=12):
    """Many hotspots (>= 10) plus solo users: the checkpoint-bug regime."""
    return [
        Request(
            index=i,
            service_index=i % 2,
            basic_demand_mb=1.0 + (i % 5),
            hotspot_index=None if i % 6 == 5 else i % n_hotspots,
        )
        for i in range(n)
    ]


class TestCheckpointIdentity:
    """state_dict / load_state_dict round-trips and mismatch detection."""

    def test_round_trip_with_many_hotspot_keys(self):
        """Regression: keys were compared zip-sorted, string-vs-int, so any
        model with >= 10 hotspots ("10" < "2" lexicographically) failed to
        resume even against its own checkpoint."""
        requests = make_wide_requests()
        a = BurstyDemandModel(requests, np.random.default_rng(11))
        b = BurstyDemandModel(requests, np.random.default_rng(11))
        b.load_state_dict(a.state_dict())  # must not raise
        np.testing.assert_array_equal(a.matrix(30), b.matrix(30))

    def test_different_hotspot_cover_rejected(self):
        requests = make_wide_requests()
        narrow = make_wide_requests(n_hotspots=3)
        a = BurstyDemandModel(requests, np.random.default_rng(12))
        b = BurstyDemandModel(narrow, np.random.default_rng(12))
        with pytest.raises(ValueError, match="different hotspots"):
            b.load_state_dict(a.state_dict())

    def test_flash_crowd_schedule_round_trips(self):
        requests = make_wide_requests()
        schedule = (
            FlashCrowdSchedule()
            .add_event(0, start=2, duration=3, amplitude_mb=5.0)
            .add_event(11, start=4, duration=2, amplitude_mb=3.0)
        )
        a = BurstyDemandModel(
            requests, np.random.default_rng(13), flash_crowds=schedule
        )
        b = BurstyDemandModel(
            requests, np.random.default_rng(13), flash_crowds=schedule
        )
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(a.matrix(20), b.matrix(20))

    def test_mutated_flash_crowd_schedule_rejected(self):
        """Regression: the schedule was not part of state_dict, so a run
        could resume under a different schedule and silently realise a
        different demand trajectory."""
        requests = make_wide_requests()
        schedule = FlashCrowdSchedule().add_event(
            0, start=2, duration=3, amplitude_mb=5.0
        )
        mutated = FlashCrowdSchedule().add_event(
            0, start=2, duration=3, amplitude_mb=9.0
        )
        a = BurstyDemandModel(
            requests, np.random.default_rng(14), flash_crowds=schedule
        )
        b = BurstyDemandModel(
            requests, np.random.default_rng(14), flash_crowds=mutated
        )
        with pytest.raises(ValueError, match="flash-crowd schedule"):
            b.load_state_dict(a.state_dict())

    def test_missing_schedule_on_resume_rejected(self):
        requests = make_wide_requests()
        schedule = FlashCrowdSchedule().add_event(
            0, start=1, duration=2, amplitude_mb=4.0
        )
        a = BurstyDemandModel(
            requests, np.random.default_rng(15), flash_crowds=schedule
        )
        b = BurstyDemandModel(requests, np.random.default_rng(15))
        with pytest.raises(ValueError, match="flash-crowd schedule"):
            b.load_state_dict(a.state_dict())

    def test_pre_pr6_checkpoint_loads_into_schedule_free_model(self):
        """Older checkpoints carry no ``flash_crowds`` key; they must keep
        resuming schedule-free models (and only those)."""
        requests = make_wide_requests()
        a = BurstyDemandModel(requests, np.random.default_rng(16))
        state = a.state_dict()
        del state["flash_crowds"]  # emulate a pre-PR-6 snapshot
        b = BurstyDemandModel(requests, np.random.default_rng(16))
        b.load_state_dict(state)  # schedule-free: fine

        schedule = FlashCrowdSchedule().add_event(
            0, start=0, duration=1, amplitude_mb=2.0
        )
        c = BurstyDemandModel(
            requests, np.random.default_rng(16), flash_crowds=schedule
        )
        with pytest.raises(ValueError, match="flash-crowd schedule"):
            c.load_state_dict(state)

    def test_jitter_realisation_mismatch_rejected(self):
        requests = make_wide_requests()
        a = BurstyDemandModel(requests, np.random.default_rng(17))
        b = BurstyDemandModel(requests, np.random.default_rng(18))
        with pytest.raises(ValueError, match="jitter"):
            b.load_state_dict(a.state_dict())
