"""Tests for the GRU layers and the BiRNN factory."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.layers import BiLSTM
from repro.nn.recurrent import BiGRU, GRU, GRUCell, make_birnn
from repro.nn.tensor import Tensor


class TestGruCell:
    def test_shapes(self):
        cell = GRUCell(3, 5, np.random.default_rng(0))
        h = cell.initial_state(batch=2)
        h2 = cell(Tensor(np.ones((2, 3))), h)
        assert h2.shape == (2, 5)

    def test_input_shape_checked(self):
        cell = GRUCell(3, 5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            cell(Tensor(np.ones((2, 4))), cell.initial_state(2))

    def test_zero_update_gate_is_interpolation(self):
        """h' interpolates between candidate and previous state, so it
        stays within [-1, 1] when h does."""
        cell = GRUCell(2, 4, np.random.default_rng(1))
        h = Tensor(np.random.default_rng(2).uniform(-1, 1, size=(3, 4)))
        h2 = cell(Tensor(np.random.default_rng(3).normal(size=(3, 2))), h)
        assert np.all(np.abs(h2.data) <= 1.0 + 1e-9)

    def test_gradcheck(self):
        cell = GRUCell(2, 3, np.random.default_rng(4))
        x = Tensor(np.random.default_rng(5).normal(size=(2, 2)))

        def f():
            return (cell(x, cell.initial_state(2)) ** 2).sum()

        gradcheck(f, cell.parameters(), rtol=1e-3)


class TestGru:
    def test_output_shape(self):
        gru = GRU(3, 6, np.random.default_rng(0), num_layers=2)
        out = gru(Tensor(np.random.default_rng(1).normal(size=(7, 2, 3))))
        assert out.shape == (7, 2, 6)

    def test_causal(self):
        gru = GRU(2, 4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        base = rng.normal(size=(5, 1, 2))
        changed = base.copy()
        changed[4] += 10.0
        np.testing.assert_allclose(
            gru(Tensor(base)).data[:4], gru(Tensor(changed)).data[:4]
        )

    def test_sequence_shape_checked(self):
        gru = GRU(3, 6, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gru(Tensor(np.ones((7, 2, 5))))

    def test_gradcheck(self):
        gru = GRU(2, 3, np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(3, 2, 2)))
        gradcheck(lambda: (gru(x) ** 2).sum(), gru.parameters(), rtol=1e-3)


class TestBiGru:
    def test_output_shape(self):
        bigru = BiGRU(3, 4, np.random.default_rng(0))
        out = bigru(Tensor(np.random.default_rng(1).normal(size=(6, 2, 3))))
        assert out.shape == (6, 2, 8)
        assert bigru.output_size == 8

    def test_sees_both_directions(self):
        bigru = BiGRU(2, 4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        base = rng.normal(size=(5, 1, 2))
        changed = base.copy()
        changed[4] += 10.0
        out_base = bigru(Tensor(base)).data
        out_changed = bigru(Tensor(changed)).data
        assert not np.allclose(out_base[0], out_changed[0])

    def test_gradcheck(self):
        bigru = BiGRU(2, 2, np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(3, 1, 2)))
        gradcheck(lambda: (bigru(x) ** 2).sum(), bigru.parameters(), rtol=1e-3)


class TestFactory:
    def test_lstm_choice(self):
        trunk = make_birnn("lstm", 3, 4, np.random.default_rng(0))
        assert isinstance(trunk, BiLSTM)

    def test_gru_choice(self):
        trunk = make_birnn("gru", 3, 4, np.random.default_rng(0))
        assert isinstance(trunk, BiGRU)

    def test_invalid_choice(self):
        with pytest.raises(ValueError):
            make_birnn("vanilla", 3, 4, np.random.default_rng(0))

    def test_gru_gan_trains(self):
        """End-to-end: the GAN with GRU trunks reduces its anchor loss."""
        from repro.gan import InfoRnnGan

        rng = np.random.default_rng(7)
        gan = InfoRnnGan(code_dim=3, rng=rng, hidden_size=8, rnn_type="gru")
        real = np.abs(rng.normal(2.0, 1.0, size=(5, 4, 1)))
        cond = np.abs(rng.normal(2.0, 1.0, size=(5, 4, 1)))
        codes = np.eye(3)[rng.integers(0, 3, size=4)]
        first = gan.train_step(real, cond, codes).supervised
        for _ in range(40):
            last = gan.train_step(real, cond, codes).supervised
        assert last < 0.6 * first
