"""Tests for the M/M/1 queueing cost extension."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import Assignment, evaluate_assignment
from repro.core.queueing import evaluate_mm1, mm1_factor
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


class TestMm1Factor:
    def test_idle_station_factor_one(self):
        np.testing.assert_allclose(mm1_factor(np.array([0.0])), [1.0])

    def test_half_load_factor_two(self):
        np.testing.assert_allclose(mm1_factor(np.array([0.5])), [2.0])

    def test_saturation_clipped(self):
        np.testing.assert_allclose(
            mm1_factor(np.array([1.0, 2.0]), max_factor=20.0), [20.0, 20.0]
        )

    def test_monotone(self):
        utils = np.linspace(0.0, 1.2, 30)
        factors = mm1_factor(utils)
        assert np.all(np.diff(factors) >= -1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_factor(np.array([-0.1]))
        with pytest.raises(ValueError):
            mm1_factor(np.array([0.5]), max_factor=0.5)

    @given(st.floats(min_value=0.0, max_value=0.94))
    def test_exact_formula_below_saturation(self, u):
        assert mm1_factor(np.array([u]))[0] == pytest.approx(1.0 / (1.0 - u))


class TestEvaluateMm1:
    @pytest.fixture
    def setting(self):
        rngs = RngRegistry(seed=15)
        network = MECNetwork.synthetic(6, 2, rngs)
        requests = [
            Request(index=i, service_index=i % 2, basic_demand_mb=1.0)
            for i in range(4)
        ]
        demands = np.ones(4)
        return network, requests, demands

    def test_costs_at_least_plain_evaluation(self, setting):
        """Queueing can only add delay relative to the load-free model."""
        network, requests, demands = setting
        assignment = Assignment.from_stations([0, 1, 2, 3], requests)
        d_t = network.delays.sample(0)
        plain = evaluate_assignment(assignment, network, requests, demands, d_t)
        queued = evaluate_mm1(assignment, network, requests, demands, d_t)
        assert queued >= plain - 1e-9

    def test_concentration_costs_more_than_spreading(self, setting):
        network, requests, demands = setting
        # Push loads high enough for the M/M/1 factor to bite: pack all
        # four requests onto the *smallest* station (utilisation > 1).
        network.c_unit_mhz = 0.3 * float(network.capacities_mhz.min())
        d_t = np.full(network.n_stations, 10.0)
        smallest = int(np.argmin(network.capacities_mhz))
        others = [i for i in range(network.n_stations) if i != smallest][:4]
        packed = Assignment.from_stations([smallest] * 4, requests)
        spread = Assignment.from_stations(others, requests)
        assert evaluate_mm1(
            packed, network, requests, demands, d_t
        ) > evaluate_mm1(spread, network, requests, demands, d_t)

    def test_shape_validation(self, setting):
        network, requests, demands = setting
        assignment = Assignment.from_stations([0, 1, 2, 3], requests)
        d_t = network.delays.sample(0)
        with pytest.raises(ValueError, match="covers"):
            evaluate_mm1(assignment, network, requests[:2], demands[:2], d_t)
        with pytest.raises(ValueError, match="unit delay"):
            evaluate_mm1(assignment, network, requests, demands, d_t[:-1])
