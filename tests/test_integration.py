"""Cross-module integration tests: invariants, failure injection, learning.

These exercise whole pipelines (network + workload + controller + engine)
rather than single modules.
"""

import numpy as np
import pytest

from repro.core import (
    GreedyController,
    OlGdController,
    OlRegController,
    PriorityController,
)
from repro.core.assignment import Assignment
from repro.mec import DriftingDelay, MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import (
    BurstyDemandModel,
    ConstantDemandModel,
    FlashCrowdSchedule,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)


def build_world(seed=5, n_stations=25, n_users=20, horizon=30, drift=0.5):
    rngs = RngRegistry(seed=seed)
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=4, n_users=n_users, rng=rngs.get("trace"), horizon_slots=horizon
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations, 3, rngs, anchor_points=anchors
    )
    if drift > 0:
        network.delays = DriftingDelay(
            network.stations, rngs.get("delays-drift"), drift_ms=drift
        )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    return rngs, network, requests


class TestAssignmentInvariants:
    @pytest.mark.parametrize(
        "make",
        [
            lambda n, r, g: OlGdController(n, r, g),
            lambda n, r, g: GreedyController(n, r, g),
            lambda n, r, g: PriorityController(n, r, g),
        ],
        ids=["OL_GD", "Greedy_GD", "Pri_GD"],
    )
    def test_assignments_always_valid(self, make):
        rngs, network, requests = build_world()
        controller = make(network, requests, rngs.get("ctrl"))
        model = ConstantDemandModel(requests)
        for t in range(15):
            demands = model.demand_at(t)
            assignment = controller.decide(t, demands)
            # Every request served by an existing station (Eq. 4).
            assert assignment.station_of.shape == (len(requests),)
            assert np.all(assignment.station_of >= 0)
            assert np.all(assignment.station_of < network.n_stations)
            # Constraint 6: the serving station caches the needed service.
            for request, station in zip(requests, assignment.station_of):
                assert (request.service_index, int(station)) in assignment.cached
            controller.observe(
                t, demands, network.delays.sample(t), assignment
            )

    def test_ol_gd_respects_capacity_with_known_demands(self):
        rngs, network, requests = build_world()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        model = ConstantDemandModel(requests)
        for t in range(10):
            demands = model.demand_at(t)
            assignment = controller.decide(t, demands)
            loads = assignment.loads_mhz(
                demands, network.c_unit_mhz, network.n_stations
            )
            assert np.all(loads <= network.capacities_mhz + 1e-6)
            controller.observe(t, demands, network.delays.sample(t), assignment)


class TestLearningBehaviour:
    def test_ol_gd_beats_greedy_under_drift(self):
        """The paper's core claim on a fresh (non-figure) configuration."""
        deltas = []
        for seed in (21, 22, 23):
            rngs, network, requests = build_world(seed=seed, drift=1.0, horizon=50)
            model = ConstantDemandModel(requests)
            ol = OlGdController(network, requests, rngs.get("ol"))
            greedy = GreedyController(network, requests, rngs.get("gr"))
            ol_delay = run_simulation(network, model, ol, 50).mean_delay_ms(10)
            gr_delay = run_simulation(network, model, greedy, 50).mean_delay_ms(10)
            deltas.append(gr_delay - ol_delay)
        assert np.mean(deltas) > 0, f"OL_GD should win on average, deltas={deltas}"

    def test_ol_gd_regret_below_greedy_regret_on_average(self):
        """Single topologies are noisy; the learner wins in the mean."""
        ol_regrets, greedy_regrets = [], []
        for seed in (21, 22, 23):
            rngs, network, requests = build_world(seed=seed, drift=1.0, horizon=50)
            model = ConstantDemandModel(requests)
            ol = OlGdController(network, requests, rngs.get("ol"))
            greedy = GreedyController(network, requests, rngs.get("gr"))
            ol_regrets.append(
                run_simulation(network, model, ol, 50, compute_optimal=True)
                .regret_tracker()
                .total_regret
            )
            greedy_regrets.append(
                run_simulation(network, model, greedy, 50, compute_optimal=True)
                .regret_tracker()
                .total_regret
            )
        assert np.mean(ol_regrets) < np.mean(greedy_regrets), (
            f"OL regrets {ol_regrets} vs greedy {greedy_regrets}"
        )

    def test_achieved_cost_never_below_lp_bound(self):
        rngs, network, requests = build_world(seed=41)
        model = ConstantDemandModel(requests)
        controller = OlGdController(network, requests, rngs.get("ol"))
        result = run_simulation(network, model, controller, 10, compute_optimal=True)
        assert np.all(result.regret_tracker().per_slot_regret >= -1e-9)


class TestFailureInjection:
    def test_flash_crowd_visible_and_absorbed(self):
        """A scheduled crowd must raise delay during, not after, the event."""
        rngs, network, requests = build_world(seed=51, horizon=45, drift=0.0)
        crowd = FlashCrowdSchedule().add_event(
            0, start=20, duration=6, amplitude_mb=8.0
        )
        model = BurstyDemandModel(
            requests, rngs.get("demand"), flash_crowds=crowd, p_enter=0.0
        )
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, model, controller, horizon=45, demands_known=False
        )
        before = result.delays_ms[10:20].mean()
        during = result.delays_ms[20:26].mean()
        after = result.delays_ms[32:45].mean()
        assert during > before, "the crowd must be visible in the delay"
        assert after < during, "the controller must recover after the crowd"

    def test_station_outage_handled(self):
        """Zeroing a station's capacity mid-experiment must not crash and
        the LP must route around it."""
        rngs, network, requests = build_world(seed=61)
        model = ConstantDemandModel(requests)
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        for t in range(5):
            demands = model.demand_at(t)
            assignment = controller.decide(t, demands)
            controller.observe(t, demands, network.delays.sample(t), assignment)
        # Outage: the most-used station loses (almost) all its capacity.
        victim = int(np.bincount(assignment.station_of).argmax())
        network.stations[victim].capacity_mhz = 1e-6
        for t in range(5, 10):
            demands = model.demand_at(t)
            assignment = controller.decide(t, demands)
            assert victim not in assignment.stations_used()
            controller.observe(t, demands, network.delays.sample(t), assignment)

    def test_extreme_burst_scales_lp_not_crash(self):
        """Demand exceeding total capacity triggers the LP demand scaling
        (documented fallback) instead of an infeasible-solve crash."""
        rngs, network, requests = build_world(seed=71)
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        huge = np.full(
            len(requests),
            2.0 * network.total_capacity_mhz() / network.c_unit_mhz / len(requests),
        )
        assignment = controller.decide(0, huge)
        assert assignment.n_requests == len(requests)

    def test_single_station_network(self):
        """Degenerate topology: every algorithm must still work."""
        rngs = RngRegistry(seed=81)
        network = MECNetwork.synthetic(1, 2, rngs)
        requests = [
            Request(index=0, service_index=0, basic_demand_mb=1.0),
            Request(index=1, service_index=1, basic_demand_mb=1.0),
        ]
        model = ConstantDemandModel(requests)
        for make in (OlGdController, GreedyController, PriorityController):
            controller = make(network, requests, rngs.fresh("ctrl"))
            result = run_simulation(network, model, controller, horizon=3)
            assert np.all(result.delays_ms > 0)
