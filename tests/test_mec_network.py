"""Tests for the MECNetwork facade."""

import numpy as np
import pytest

from repro.mec.basestation import BaseStationTier
from repro.mec.geometry import Point
from repro.mec.network import MECNetwork
from repro.utils.seeding import RngRegistry


@pytest.fixture
def net():
    return MECNetwork.synthetic(40, 5, RngRegistry(seed=10))


class TestSynthetic:
    def test_sizes(self, net):
        assert net.n_stations == 40
        assert net.n_services == 5
        assert net.graph.number_of_nodes() == 40

    def test_reproducible(self):
        a = MECNetwork.synthetic(30, 4, RngRegistry(seed=3))
        b = MECNetwork.synthetic(30, 4, RngRegistry(seed=3))
        np.testing.assert_array_equal(a.capacities_mhz, b.capacities_mhz)
        np.testing.assert_array_equal(a.delays.true_means, b.delays.true_means)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_capacities_vector(self, net):
        caps = net.capacities_mhz
        assert caps.shape == (40,)
        assert np.all(caps > 0)
        assert net.total_capacity_mhz() == pytest.approx(caps.sum())

    def test_tier_counts_sum(self, net):
        assert sum(net.tier_counts().values()) == 40

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MECNetwork.synthetic(0, 3, RngRegistry(seed=0))
        with pytest.raises(ValueError):
            MECNetwork.synthetic(10, 0, RngRegistry(seed=0))


class TestAs1755Network:
    def test_scale(self):
        net = MECNetwork.as1755(4, RngRegistry(seed=1))
        assert net.n_stations == 87
        assert net.graph.number_of_edges() == 161

    def test_congestion_inflates_hub_delays(self):
        net = MECNetwork.as1755(4, RngRegistry(seed=1), bottleneck_strength=1.0)
        flat = MECNetwork.as1755(4, RngRegistry(seed=1), bottleneck_strength=0.0)
        # Means with bottlenecks dominate the flat means station-by-station.
        assert np.all(net.delays.true_means >= flat.delays.true_means - 1e-9)
        assert net.delays.true_means.mean() > flat.delays.true_means.mean()

    def test_negative_bottleneck_rejected(self):
        with pytest.raises(ValueError):
            MECNetwork.as1755(4, RngRegistry(seed=1), bottleneck_strength=-1.0)


class TestCoverage:
    def test_coverage_count_matches_covering_stations(self, net):
        point = net.stations[0].position
        assert net.coverage_count(point) == len(net.covering_stations(point))

    def test_station_covers_own_position(self, net):
        for bs in net.stations[:10]:
            assert bs.index in net.covering_stations(bs.position)

    def test_far_point_uncovered(self, net):
        assert net.coverage_count(Point(1e8, 1e8)) == 0


class TestValidationAndState:
    def test_mismatched_station_count_rejected(self, net):
        with pytest.raises(ValueError, match="stations"):
            MECNetwork(
                net.graph,
                net.stations[:-1],
                net.services,
                net.delays,
            )

    def test_clear_caches(self, net):
        net.stations[0].cache_service(1)
        net.stations[5].cache_service(2)
        net.clear_caches()
        assert all(not bs.cached_services for bs in net.stations)

    def test_validate_demand_fits_passes_small(self, net):
        net.validate_demand_fits(total_demand_mb=1.0)

    def test_validate_demand_fits_raises_large(self, net):
        huge = net.total_capacity_mhz() / net.c_unit_mhz + 1.0
        with pytest.raises(ValueError, match="MHz"):
            net.validate_demand_fits(total_demand_mb=huge)

    def test_c_unit_positive(self, net):
        with pytest.raises(ValueError):
            MECNetwork(net.graph, net.stations, net.services, net.delays, c_unit_mhz=0.0)
