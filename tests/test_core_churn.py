"""Tests for churn-aware costing and the hysteresis wrapper."""

import numpy as np
import pytest

from repro.core import Assignment, GreedyController, OlGdController, evaluate_assignment
from repro.core.churn import HysteresisController, evaluate_with_churn
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


@pytest.fixture
def setting():
    rngs = RngRegistry(seed=13)
    network = MECNetwork.synthetic(12, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(6)
    ]
    demands = np.array([r.basic_demand_mb for r in requests])
    return rngs, network, requests, demands


class TestEvaluateWithChurn:
    def test_first_slot_equals_plain(self, setting):
        _, network, requests, demands = setting
        assignment = Assignment.from_stations([0, 1, 2, 0, 1, 2], requests)
        d_t = network.delays.sample(0)
        plain = evaluate_assignment(assignment, network, requests, demands, d_t)
        churned = evaluate_with_churn(
            assignment, network, requests, demands, d_t, previous=None
        )
        assert churned == pytest.approx(plain)

    def test_stable_cache_amortised(self, setting):
        _, network, requests, demands = setting
        assignment = Assignment.from_stations([0, 1, 2, 0, 1, 2], requests)
        d_t = network.delays.sample(1)
        plain = evaluate_assignment(assignment, network, requests, demands, d_t)
        churned = evaluate_with_churn(
            assignment, network, requests, demands, d_t, previous=assignment
        )
        # All instantiation costs amortised away.
        total_ins = sum(
            network.services.instantiation_delay(i, k) for k, i in assignment.cached
        )
        assert churned == pytest.approx(plain - total_ins / len(requests))

    def test_partial_overlap(self, setting):
        _, network, requests, demands = setting
        first = Assignment.from_stations([0, 1, 2, 0, 1, 2], requests)
        second = Assignment.from_stations([0, 1, 3, 0, 1, 3], requests)
        d_t = network.delays.sample(2)
        plain = evaluate_assignment(second, network, requests, demands, d_t)
        churned = evaluate_with_churn(
            second, network, requests, demands, d_t, previous=first
        )
        kept = second.cached & first.cached
        amortised = sum(
            network.services.instantiation_delay(i, k) for k, i in kept
        )
        assert churned == pytest.approx(plain - amortised / len(requests))
        assert churned < plain


class TestHysteresisController:
    def test_name_decorated(self, setting):
        rngs, network, requests, _ = setting
        wrapped = HysteresisController(
            OlGdController(network, requests, rngs.get("inner"))
        )
        assert wrapped.name == "OL_GD+hyst"

    def test_first_slot_passthrough(self, setting):
        rngs, network, requests, demands = setting
        inner = GreedyController(network, requests, rngs.get("inner"))
        wrapped = HysteresisController(inner)
        plain = GreedyController(network, requests, rngs.get("inner2"))
        a = wrapped.decide(0, demands)
        b = plain.decide(0, demands)
        np.testing.assert_array_equal(a.station_of, b.station_of)

    def test_reduces_churn(self, setting):
        rngs, network, requests, demands = setting
        from repro.mec.delay import DriftingDelay

        network.delays = DriftingDelay(
            network.stations, rngs.get("drift"), drift_ms=1.0
        )
        model = ConstantDemandModel(requests)

        def total_churn(controller):
            previous, churn = None, 0
            for t in range(25):
                d = model.demand_at(t)
                assignment = controller.decide(t, d)
                if previous is not None:
                    churn += assignment.cache_churn(previous)
                controller.observe(t, d, network.delays.sample(t), assignment)
                previous = assignment
            return churn

        plain = OlGdController(network, requests, rngs.get("plain"))
        wrapped = HysteresisController(
            OlGdController(network, requests, rngs.get("wrapped"))
        )
        assert total_churn(wrapped) < total_churn(plain)

    def test_moves_when_saving_is_large(self, setting):
        """A station whose estimate collapses must still attract moves."""
        rngs, network, requests, demands = setting
        inner = OlGdController(network, requests, rngs.get("inner"))
        wrapped = HysteresisController(inner, switch_threshold_ms=0.5)
        first = wrapped.decide(0, demands)
        wrapped.observe(0, demands, network.delays.sample(0), first)
        # Forge arm statistics: one station becomes overwhelmingly better.
        inner.arms.reset()
        best = 0 if first.station_of[0] != 0 else 1
        for i in range(network.n_stations):
            value = 0.1 if i == best else 60.0
            inner.arms.observe(i, value)
        second = wrapped.decide(1, demands)
        assert np.any(second.station_of == best)

    def test_requires_arm_statistics(self, setting):
        rngs, network, requests, demands = setting
        from repro.core import Controller

        class NoArms(Controller):
            name = "NoArms"

            def decide(self, slot, demands):
                return Assignment.from_stations(
                    [0] * len(self.requests), self.requests
                )

            def observe(self, slot, demands, unit_delays, assignment):
                pass

        inner = NoArms(network, requests)
        wrapped = HysteresisController(inner)
        wrapped.decide(0, demands)  # first slot never needs theta
        with pytest.raises(TypeError, match="arm"):
            wrapped.decide(1, demands)

    def test_threshold_validated(self, setting):
        rngs, network, requests, _ = setting
        inner = OlGdController(network, requests, rngs.get("inner"))
        with pytest.raises(ValueError):
            HysteresisController(inner, switch_threshold_ms=-1.0)
