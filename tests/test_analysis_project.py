"""Unit tests for the cross-module layer (``repro.analysis.project``):
module summaries, the import graph, symbol resolution, the call index,
worker reachability, and the summary JSON round-trip the cache relies on.
"""

import ast
import json

from repro.analysis import ModuleSummary, ProjectContext, build_summary
from repro.analysis.engine import ModuleContext


def summarize(path, source):
    return build_summary(ModuleContext(path, source, ast.parse(source)))


def make_project(files):
    """Build a :class:`ProjectContext` from ``{path: source}``."""
    return ProjectContext([summarize(path, src) for path, src in files.items()])


# --------------------------------------------------------------------- #
# Module summaries
# --------------------------------------------------------------------- #


class TestModuleSummary:
    def test_top_names_and_imports(self):
        summary = summarize(
            "src/repro/core/x.py",
            "import numpy as np\n"
            "from repro.core.other import helper\n"
            "CONST = 1\n"
            "def fn():\n    pass\n"
            "class Cls:\n    pass\n",
        )
        assert summary.dotted == "repro.core.x"
        assert summary.top_names["np"] == "import"
        assert summary.top_names["helper"] == "import"
        assert summary.top_names["CONST"] == "assign"
        assert summary.top_names["fn"] == "function"
        assert summary.top_names["Cls"] == "class"
        assert summary.imports["helper"] == "repro.core.other.helper"
        assert "repro.core.other.helper" in summary.import_targets

    def test_relative_import_is_anchored_on_the_package(self):
        summary = summarize(
            "src/repro/core/x.py", "from .other import helper\n"
        )
        assert summary.imports["helper"] == "repro.core.other.helper"

    def test_class_mutation_outside_construction_is_recorded(self):
        summary = summarize(
            "src/repro/core/x.py",
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self._xs = []\n"
            "    def record(self, v):\n"
            "        self._xs.append(v)\n",
        )
        cls = summary.classes["Tracker"]
        assert cls.mutated_attrs == ("_xs",)

    def test_init_only_writes_are_not_mutations(self):
        summary = summarize(
            "src/repro/core/x.py",
            "class Frozen:\n"
            "    def __init__(self):\n"
            "        self._xs = []\n"
            "    def peek(self):\n"
            "        return self._xs\n",
        )
        assert summary.classes["Frozen"].mutated_attrs == ()

    def test_state_dict_literal_keys(self):
        summary = summarize(
            "src/repro/core/x.py",
            "class C:\n"
            "    def state_dict(self):\n"
            "        return {'a': self.a, 'b': self.b}\n"
            "    def load_state_dict(self, state):\n"
            "        self.a = state['a']\n"
            "        self.b = state.get('b')\n",
        )
        cls = summary.classes["C"]
        assert sorted(cls.state_keys) == ["a", "b"]
        assert sorted(cls.load_keys) == ["a", "b"]
        assert not cls.state_dynamic and not cls.load_dynamic

    def test_dynamic_state_dict_is_flagged_not_guessed(self):
        summary = summarize(
            "src/repro/core/x.py",
            "class C:\n"
            "    def state_dict(self):\n"
            "        return dict(self.__dict__)\n"
            "    def load_state_dict(self, state):\n"
            "        for k, v in state.items():\n"
            "            setattr(self, k, v)\n",
        )
        cls = summary.classes["C"]
        assert cls.state_dynamic and cls.load_dynamic

    def test_mutable_module_globals(self):
        summary = summarize(
            "src/repro/core/x.py", "CACHE = {}\nLIMIT = 3\nNAMES = []\n"
        )
        assert set(summary.mutable_globals) == {"CACHE", "NAMES"}

    def test_submit_site_classification(self):
        summary = summarize(
            "src/repro/core/x.py",
            "import functools\n"
            "def work(x):\n    return x\n"
            "class Driver:\n"
            "    def go(self, pool):\n"
            "        pool.submit(work, 1)\n"
            "        pool.submit(lambda: 2)\n"
            "        pool.submit(self.step)\n"
            "        pool.submit(functools.partial(work, 3))\n"
            "    def run(self, pool):\n"
            "        def inner():\n            return 4\n"
            "        pool.submit(inner)\n",
        )
        kinds = [site.callable_kind for site in summary.submit_sites]
        assert kinds.count("name") == 2  # work, partial(work)
        assert "lambda" in kinds
        assert "self" in kinds
        assert "nested" in kinds

    def test_generator_param_and_argument_detection(self):
        summary = summarize(
            "src/repro/core/x.py",
            "import numpy as np\n"
            "def work(seed, rng: np.random.Generator):\n    return seed\n"
            "def drive(pool):\n"
            "    rng = np.random.default_rng(0)\n"
            "    pool.submit(work, 1, rng)\n",
        )
        assert summary.functions["work"].generator_params == ("rng",)
        (site,) = summary.submit_sites
        assert site.generator_args == ("rng",)

    def test_obs_uses_and_declarations(self):
        summary = summarize(
            "src/repro/sim/x.py",
            "from repro import obs\n"
            "def tick():\n"
            "    obs.inc('sim.slots')\n"
            "    with obs.span('sim.decide'):\n        pass\n",
        )
        assert {(u.helper, u.name) for u in summary.obs_uses} == {
            ("inc", "sim.slots"),
            ("span", "sim.decide"),
        }
        names = summarize(
            "src/repro/obs/names.py",
            "COUNTERS = frozenset({'sim.slots'})\nSPANS = frozenset({'sim.decide'})\n",
        )
        assert {(d.kind, d.name) for d in names.obs_declarations} == {
            ("counter", "sim.slots"),
            ("span", "sim.decide"),
        }

    def test_summary_json_round_trip(self):
        summary = summarize(
            "src/repro/core/x.py",
            "import numpy as np\n"
            "CACHE = {}\n"
            "def work(rng: np.random.Generator):\n"
            "    CACHE['k'] = 1\n"
            "def drive(pool):\n"
            "    pool.submit(work)\n"
            "class C:\n"
            "    def bump(self):\n        self.n = 1\n",
        )
        payload = json.loads(json.dumps(summary.to_json()))
        restored = ModuleSummary.from_json(payload)
        assert restored == summary


# --------------------------------------------------------------------- #
# Import graph + resolution
# --------------------------------------------------------------------- #


class TestImportGraph:
    def test_edges_and_transitive_closure(self):
        project = make_project(
            {
                "src/repro/a.py": "from repro.b import f\n",
                "src/repro/b.py": "from repro.c import g\ndef f():\n    pass\n",
                "src/repro/c.py": "def g():\n    pass\n",
            }
        )
        assert project.import_graph["repro.a"] == {"repro.b"}
        assert project.transitive_imports("repro.a") == {"repro.b", "repro.c"}

    def test_import_cycles_terminate(self):
        project = make_project(
            {
                "src/repro/a.py": "import repro.b\n",
                "src/repro/b.py": "import repro.a\n",
            }
        )
        assert project.transitive_imports("repro.a") == {"repro.a", "repro.b"}

    def test_resolve_follows_reexport_chain(self):
        project = make_project(
            {
                "src/repro/pkg/__init__.py": "from repro.pkg.impl import Thing\n",
                "src/repro/pkg/impl.py": "class Thing:\n    pass\n",
                "src/repro/user.py": "from repro.pkg import Thing\n",
            }
        )
        assert project.resolve("repro.user", "Thing") == (
            "repro.pkg.impl",
            "Thing",
            "class",
        )

    def test_unresolvable_name_is_none(self):
        project = make_project({"src/repro/a.py": "import os\n"})
        assert project.resolve("repro.a", "os.path") is None
        assert project.resolve("repro.a", "missing") is None


class TestClassProvides:
    def test_inherited_method_through_project_base(self):
        project = make_project(
            {
                "src/repro/base.py": (
                    "class Base:\n"
                    "    def state_dict(self):\n        return {}\n"
                ),
                "src/repro/child.py": (
                    "from repro.base import Base\n"
                    "class Child(Base):\n    pass\n"
                ),
            }
        )
        child = project.modules["repro.child"].classes["Child"]
        assert project.class_provides("repro.child", child, "state_dict")
        assert not project.class_provides("repro.child", child, "load_state_dict")

    def test_unresolvable_base_counts_as_not_providing(self):
        project = make_project(
            {
                "src/repro/child.py": (
                    "from torch import nn\n"
                    "class Child(nn.Module):\n    pass\n"
                )
            }
        )
        child = project.modules["repro.child"].classes["Child"]
        assert not project.class_provides("repro.child", child, "state_dict")


# --------------------------------------------------------------------- #
# Call index + worker reachability
# --------------------------------------------------------------------- #


class TestWorkerReachability:
    FILES = {
        "src/repro/worker.py": (
            "from repro.helper import deep\n"
            "def entry(x):\n    return deep(x)\n"
            "def unrelated():\n    pass\n"
        ),
        "src/repro/helper.py": "def deep(x):\n    return x\n",
        "src/repro/driver.py": (
            "from repro.worker import entry\n"
            "def drive(pool):\n    pool.submit(entry, 1)\n"
        ),
    }

    def test_entry_points_resolve_across_modules(self):
        project = make_project(self.FILES)
        assert project.worker_entry_functions() == {("repro.worker", "entry")}

    def test_reachability_closes_over_named_calls(self):
        project = make_project(self.FILES)
        reachable = project.worker_reachable_functions()
        assert ("repro.worker", "entry") in reachable
        assert ("repro.helper", "deep") in reachable
        assert ("repro.worker", "unrelated") not in reachable

    def test_pool_initializer_is_an_entry_point(self):
        project = make_project(
            {
                "src/repro/p.py": (
                    "from concurrent.futures import ProcessPoolExecutor\n"
                    "def init():\n    pass\n"
                    "def drive():\n"
                    "    return ProcessPoolExecutor(2, initializer=init)\n"
                )
            }
        )
        assert ("repro.p", "init") in project.worker_entry_functions()
