"""Tests for Assignment and the realised-cost evaluation (extended Eq. 3)."""

import numpy as np
import pytest

from repro.core.assignment import Assignment, evaluate_assignment
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


@pytest.fixture
def setting():
    rngs = RngRegistry(seed=8)
    network = MECNetwork.synthetic(5, 2, rngs)
    requests = [
        Request(index=0, service_index=0, basic_demand_mb=2.0),
        Request(index=1, service_index=1, basic_demand_mb=1.0),
        Request(index=2, service_index=0, basic_demand_mb=1.5),
    ]
    return network, requests


class TestAssignment:
    def test_cache_derived_from_constraint_six(self, setting):
        _, requests = setting
        assignment = Assignment.from_stations([0, 0, 1], requests)
        assert assignment.cached == frozenset({(0, 0), (1, 0), (0, 1)})

    def test_stations_used(self, setting):
        _, requests = setting
        assignment = Assignment.from_stations([2, 0, 2], requests)
        np.testing.assert_array_equal(assignment.stations_used(), [0, 2])

    def test_loads(self, setting):
        _, requests = setting
        assignment = Assignment.from_stations([0, 0, 1], requests)
        loads = assignment.loads_mhz(np.array([2.0, 1.0, 1.5]), 10.0, 5)
        np.testing.assert_allclose(loads, [30.0, 15.0, 0.0, 0.0, 0.0])

    def test_cache_churn(self, setting):
        _, requests = setting
        first = Assignment.from_stations([0, 0, 1], requests)
        second = Assignment.from_stations([0, 1, 1], requests)
        # second caches {(0,0), (1,1), (0,1)}; new vs first: (1,1).
        assert second.cache_churn(first) == 1
        assert first.cache_churn(first) == 0

    def test_validation(self, setting):
        _, requests = setting
        with pytest.raises(ValueError, match="one station per request"):
            Assignment.from_stations([0, 1], requests)
        with pytest.raises(ValueError, match="non-negative"):
            Assignment.from_stations([0, -1, 2], requests)

    def test_loads_shape_checked(self, setting):
        _, requests = setting
        assignment = Assignment.from_stations([0, 0, 1], requests)
        with pytest.raises(ValueError):
            assignment.loads_mhz(np.array([1.0]), 10.0, 5)


class TestEvaluateAssignment:
    def test_matches_hand_computation(self, setting):
        network, requests = setting
        demands = np.array([2.0, 1.0, 1.5])
        assignment = Assignment.from_stations([0, 1, 0], requests)
        d_t = network.delays.sample(0)

        processing = (
            demands[0] * d_t[0] + demands[1] * d_t[1] + demands[2] * d_t[0]
        )
        instantiation = (
            network.services.instantiation_delay(0, 0)
            + network.services.instantiation_delay(1, 1)
        )
        expected = (processing + instantiation) / 3.0

        got = evaluate_assignment(assignment, network, requests, demands, d_t)
        assert got == pytest.approx(expected)

    def test_overload_penalty_applied(self, setting):
        network, requests = setting
        # Huge demand concentrated on one station: load exceeds capacity.
        demands = np.array([500.0, 1.0, 1.0])
        assignment = Assignment.from_stations([0, 0, 0], requests)
        d_t = network.delays.sample(0)
        loaded_cost = evaluate_assignment(assignment, network, requests, demands, d_t)

        # The same assignment priced without the overload would be cheaper.
        load = demands.sum() * network.c_unit_mhz
        overload = load / network.stations[0].capacity_mhz
        assert overload > 1.0
        base_processing = (demands * d_t[0]).sum()
        instantiation = sum(
            network.services.instantiation_delay(i, k) for k, i in assignment.cached
        )
        unpenalised = (base_processing + instantiation) / 3.0
        assert loaded_cost > unpenalised
        expected = (base_processing * overload + instantiation) / 3.0
        assert loaded_cost == pytest.approx(expected)

    def test_no_penalty_when_feasible(self, setting):
        network, requests = setting
        demands = np.array([0.1, 0.1, 0.1])
        assignment = Assignment.from_stations([0, 1, 2], requests)
        d_t = network.delays.sample(0)
        cost = evaluate_assignment(assignment, network, requests, demands, d_t)
        expected = (
            (demands * d_t[[0, 1, 2]]).sum()
            + network.services.instantiation_delay(0, 0)
            + network.services.instantiation_delay(1, 1)
            + network.services.instantiation_delay(2, 0)
        ) / 3.0
        assert cost == pytest.approx(expected)

    def test_validation(self, setting):
        network, requests = setting
        demands = np.array([1.0, 1.0, 1.0])
        d_t = network.delays.sample(0)
        bad = Assignment.from_stations([0, 1], requests[:2])
        with pytest.raises(ValueError, match="covers"):
            evaluate_assignment(bad, network, requests, demands, d_t)
        out_of_range = Assignment.from_stations([0, 1, 99], requests)
        with pytest.raises(ValueError, match="outside"):
            evaluate_assignment(out_of_range, network, requests, demands, d_t)
        with pytest.raises(ValueError, match="unit delay"):
            evaluate_assignment(
                Assignment.from_stations([0, 1, 2], requests),
                network,
                requests,
                demands,
                d_t[:-1],
            )
