"""Tests for the CLI and figure export."""

import dataclasses
import json

import numpy as np
import pytest

from repro.cli import FIGURES, build_parser, main
from repro.experiments.export import (
    figure_to_csv,
    figure_to_dict,
    figure_to_json,
    load_figure_json,
)
from repro.experiments.figures import FigureResult
from repro.workload import WifiTrace


def sample_figure():
    figure = FigureResult("figX", "demo", "slot", [0.0, 1.0, 2.0])
    for t in range(3):
        figure.add_point("delay_ms", "A", 10.0 + t)
        figure.add_point("delay_ms", "B", 20.0 + t)
        figure.add_point("runtime_s", "A", 0.1)
        figure.add_point("runtime_s", "B", 0.2)
    figure.panels["as1755_delay_ms"] = {"A": [5.0], "B": [6.0]}
    return figure


class TestExport:
    def test_dict_round_trip_fields(self):
        data = figure_to_dict(sample_figure())
        assert data["figure_id"] == "figX"
        assert data["panels"]["delay_ms"]["A"] == [10.0, 11.0, 12.0]

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "fig.json"
        figure_to_json(sample_figure(), path)
        loaded = load_figure_json(path)
        np.testing.assert_array_equal(
            loaded.series("delay_ms", "B"), [20.0, 21.0, 22.0]
        )
        assert loaded.panels["as1755_delay_ms"]["A"] == [5.0]

    def test_json_string_without_path(self):
        text = figure_to_json(sample_figure())
        assert json.loads(text)["x_label"] == "slot"

    def test_csv_files_written(self, tmp_path):
        written = figure_to_csv(sample_figure(), tmp_path)
        names = {p.name for p in written}
        assert names == {
            "figX_delay_ms.csv",
            "figX_runtime_s.csv",
            "figX_as1755_delay_ms.csv",
        }
        content = (tmp_path / "figX_delay_ms.csv").read_text().splitlines()
        assert content[0] == "slot,A,B"
        assert content[1] == "0.0,10.0,20.0"

    def test_scalar_panel_csv(self, tmp_path):
        figure_to_csv(sample_figure(), tmp_path)
        content = (tmp_path / "figX_as1755_delay_ms.csv").read_text().splitlines()
        assert content == ["A,B", "5.0,6.0"]


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for figure_id in FIGURES:
            assert figure_id in out

    def test_trace_command(self, tmp_path, capsys):
        code = main(
            ["trace", "--hotspots", "4", "--users", "8", "--out", str(tmp_path)]
        )
        assert code == 0
        trace = WifiTrace.from_csv(tmp_path / "hotspots.csv", tmp_path / "users.csv")
        assert trace.n_hotspots == 4
        assert trace.n_users == 8

    def test_trace_reproducible_by_seed(self, tmp_path):
        main(["trace", "--users", "5", "--seed", "9", "--out", str(tmp_path / "a")])
        main(["trace", "--users", "5", "--seed", "9", "--out", str(tmp_path / "b")])
        assert (tmp_path / "a" / "users.csv").read_text() == (
            tmp_path / "b" / "users.csv"
        ).read_text()

    def test_figure_json_requires_out(self, capsys):
        assert main(["figure", "fig3", "--json"]) == 2

    def test_parser_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_parser_accepts_jobs_flag(self):
        args = build_parser().parse_args(["figure", "fig3", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["report", "--jobs", "0"])
        assert args.jobs == 0
        # Default: no override, the profile's n_jobs is used as-is.
        assert build_parser().parse_args(["figure", "fig3"]).jobs is None

    @pytest.mark.slow
    def test_figure_command_with_jobs(self, tmp_path, capsys, monkeypatch):
        """--jobs flows into the profile and the figure still renders."""
        import repro.cli as cli
        from repro.experiments import QUICK_PROFILE

        tiny = dataclasses.replace(
            QUICK_PROFILE,
            horizon=4,
            n_requests=8,
            n_services=2,
            n_hotspots=2,
            base_stations=10,
            repetitions=2,
        )
        monkeypatch.setitem(cli._PROFILES, "quick", tiny)
        assert main(["figure", "fig3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out

    @pytest.mark.slow
    def test_figure_command_with_export(self, tmp_path, capsys, monkeypatch):
        # Shrink the quick profile so the CLI path runs in seconds.
        import repro.cli as cli
        from repro.experiments import QUICK_PROFILE

        tiny = dataclasses.replace(
            QUICK_PROFILE,
            horizon=4,
            n_requests=8,
            n_services=2,
            n_hotspots=2,
            base_stations=10,
            repetitions=1,
        )
        monkeypatch.setitem(cli._PROFILES, "quick", tiny)
        code = main(
            ["figure", "fig3", "--out", str(tmp_path), "--json"]
        )
        assert code == 0
        assert (tmp_path / "fig3.json").exists()
        assert (tmp_path / "fig3_delay_ms.csv").exists()
        loaded = load_figure_json(tmp_path / "fig3.json")
        assert loaded.figure_id == "fig3"
