"""Tests for the radio-layer model (power, path loss, rate, delay)."""

import pytest
from hypothesis import given, strategies as st

from repro.mec.basestation import TIER_PROFILES, BaseStationTier
from repro.mec.radio import (
    RadioConfig,
    link_rate_mbps,
    path_loss_db,
    receive_power_w,
    snr_db,
    transmission_delay_ms,
)

MACRO = RadioConfig(transmit_power_w=40.0)
FEMTO = RadioConfig(transmit_power_w=0.1)


class TestPathLoss:
    def test_monotone_in_distance(self):
        assert path_loss_db(10) < path_loss_db(100) < path_loss_db(1000)

    def test_near_field_clamped_to_1m(self):
        assert path_loss_db(0.0) == path_loss_db(1.0)
        assert path_loss_db(0.5) == path_loss_db(1.0)

    def test_exponent_steepens_loss(self):
        assert path_loss_db(100, exponent=4.0) > path_loss_db(100, exponent=3.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            path_loss_db(-1.0)

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_ten_x_distance_adds_10n_db(self, d):
        n = 3.5
        delta = path_loss_db(10 * d, exponent=n) - path_loss_db(d, exponent=n)
        assert delta == pytest.approx(10 * n, rel=1e-9)


class TestReceivePowerAndSnr:
    def test_power_decreases_with_distance(self):
        assert receive_power_w(MACRO, 10) > receive_power_w(MACRO, 50)

    def test_macro_stronger_than_femto_at_same_distance(self):
        assert receive_power_w(MACRO, 20) > receive_power_w(FEMTO, 20)

    def test_snr_positive_within_tier_radius(self):
        """Every tier must deliver usable SNR at its own coverage edge."""
        for tier, profile in TIER_PROFILES.items():
            config = RadioConfig(transmit_power_w=profile.transmit_power_w)
            assert snr_db(config, profile.radius_m) > 0.0, tier


class TestLinkRate:
    def test_rate_capped_by_64qam(self):
        # At point-blank range the Shannon rate exceeds the 64QAM cap,
        # so the returned rate equals bandwidth * capped efficiency.
        rate = link_rate_mbps(MACRO, 1.0)
        assert rate == pytest.approx(20.0 * 5.0)

    def test_rate_monotone_nonincreasing_with_distance(self):
        distances = [1, 10, 50, 100, 500, 2000]
        rates = [link_rate_mbps(MACRO, d) for d in distances]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_rate_zero_far_away(self):
        assert link_rate_mbps(FEMTO, 100_000.0) == 0.0

    def test_each_tier_usable_at_radius(self):
        for profile in TIER_PROFILES.values():
            config = RadioConfig(transmit_power_w=profile.transmit_power_w)
            assert link_rate_mbps(config, profile.radius_m) > 0.0


class TestTransmissionDelay:
    def test_delay_scales_linearly_with_data(self):
        d1 = transmission_delay_ms(MACRO, 50.0, 1.0)
        d2 = transmission_delay_ms(MACRO, 50.0, 2.0)
        assert d2 == pytest.approx(2 * d1)

    def test_zero_data_zero_delay(self):
        assert transmission_delay_ms(MACRO, 50.0, 0.0) == 0.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="no usable link"):
            transmission_delay_ms(FEMTO, 100_000.0, 1.0)

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError):
            transmission_delay_ms(MACRO, 10.0, -1.0)


class TestRadioConfig:
    def test_rejects_non_positive_power(self):
        with pytest.raises(ValueError):
            RadioConfig(transmit_power_w=0.0)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            RadioConfig(transmit_power_w=1.0, bandwidth_mhz=0.0)
