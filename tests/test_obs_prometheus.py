"""Prometheus text-format rendering of ``repro.obs`` registries."""

import pytest

from repro import obs
from repro.obs import prometheus_name, render_prometheus, unknown_series
from repro.obs.names import all_series


class TestPrometheusName:
    def test_dotted_to_underscored(self):
        assert prometheus_name("sim.slots") == "repro_sim_slots"
        assert prometheus_name("serve.buffer_fill") == "repro_serve_buffer_fill"

    def test_namespace_is_optional(self):
        assert prometheus_name("sim.slots", namespace="") == "sim_slots"

    def test_invalid_characters_collapse(self):
        assert prometheus_name("a.b-c d") == "repro_a_b_c_d"


class TestRenderPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = obs.MetricsRegistry()
        registry.inc("serve.offers", 3)
        registry.gauge("serve.buffer_fill", 2)
        text = render_prometheus(registry)
        assert text.endswith("\n")
        assert "# TYPE repro_serve_offers_total counter" in text
        assert "repro_serve_offers_total 3" in text
        assert "# TYPE repro_serve_buffer_fill gauge" in text
        assert "repro_serve_buffer_fill 2" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            with obs.span("serve.decide"):
                pass
        text = render_prometheus(registry)
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_serve_decide_seconds_bucket")
        ]
        # one bucket per edge plus +Inf, monotonically non-decreasing
        assert len(lines) == len(obs.DEFAULT_TIME_EDGES) + 1
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 1
        assert 'le="+Inf"' in lines[-1]
        assert "repro_serve_decide_seconds_count 1" in text
        assert "repro_serve_decide_seconds_sum" in text
        # the span's call counter renders too
        assert "repro_serve_decide_calls_total 1" in text

    def test_integer_values_render_without_decimal(self):
        registry = obs.MetricsRegistry()
        registry.inc("sim.slots", 5.0)
        registry.gauge("serve.buffer_fill", 0.5)
        text = render_prometheus(registry)
        assert "repro_sim_slots_total 5\n" in text
        assert "repro_serve_buffer_fill 0.5" in text

    def test_strict_mode_rejects_uncatalogued_series(self):
        registry = obs.MetricsRegistry()
        registry.inc("not.a.real.series")
        assert unknown_series(registry) == ("not.a.real.series",)
        with pytest.raises(ValueError, match="not.a.real.series"):
            render_prometheus(registry, strict=True)
        # permissive default still renders it
        assert "repro_not_a_real_series_total" in render_prometheus(registry)

    def test_catalogued_series_are_not_unknown(self):
        registry = obs.MetricsRegistry()
        for series in ("serve.offers", "serve.rejected", "serve.slots"):
            registry.inc(series)
        registry.gauge("serve.buffer_fill", 1)
        with obs.activate(registry):
            with obs.span("state.save"):
                pass
        assert unknown_series(registry) == ()
        render_prometheus(registry, strict=True)

    def test_all_series_expands_span_derivatives(self):
        series = all_series()
        assert "serve.decide.seconds" in series
        assert "serve.decide.calls" in series
        assert "serve.offers" in series
