"""Cross-cutting property-based tests on randomly generated instances.

These assert the *relationships* that must hold for any instance of the
caching problem: LP lower-bounds every integral solution, the exact ILP
sits between the LP bound and every heuristic, rounding respects the
candidate structure, and the evaluator agrees with the ILP objective on
feasible assignments.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Assignment,
    build_caching_model,
    clairvoyant_cost,
    clairvoyant_cost_exact,
    evaluate_assignment,
)
from repro.core.candidates import build_candidate_sets, repair_capacity
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


def make_instance(seed, n_stations, n_requests, n_services=2):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, n_services, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(n_services)),
            basic_demand_mb=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(n_requests)
    ]
    demands = np.array([r.basic_demand_mb for r in requests])
    return network, requests, demands


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=2, max_value=6),       # stations
    st.integers(min_value=1, max_value=5),       # requests
)


class TestOptimalityChain:
    @given(instance_params)
    @settings(max_examples=20, deadline=None)
    def test_lp_below_ilp_below_heuristics(self, params):
        seed, n_stations, n_requests = params
        network, requests, demands = make_instance(seed, n_stations, n_requests)
        d_t = network.delays.sample(0)
        lp = clairvoyant_cost(network, requests, demands, d_t)
        ilp = clairvoyant_cost_exact(network, requests, demands, d_t)
        assert lp <= ilp + 1e-6
        # Every feasible single-station colocation is an upper bound.
        for station in range(n_stations):
            plan = Assignment.from_stations([station] * n_requests, requests)
            loads = plan.loads_mhz(demands, network.c_unit_mhz, n_stations)
            if np.any(loads > network.capacities_mhz):
                continue
            cost = evaluate_assignment(plan, network, requests, demands, d_t)
            assert ilp <= cost + 1e-6

    @given(instance_params)
    @settings(max_examples=15, deadline=None)
    def test_evaluator_matches_ilp_objective(self, params):
        """The engine's cost of the ILP's own assignment equals its objective."""
        seed, n_stations, n_requests = params
        network, requests, demands = make_instance(seed, n_stations, n_requests)
        d_t = network.delays.sample(0)
        from repro.lp.branch_and_bound import solve_ilp

        model, variables = build_caching_model(
            network, requests, demands, d_t, integer=True
        )
        result = solve_ilp(model)
        assert result.proven_optimal
        x = variables.x_matrix(result.values)
        stations = [int(np.argmax(x[l])) for l in range(n_requests)]
        plan = Assignment.from_stations(stations, requests)
        cost = evaluate_assignment(plan, network, requests, demands, d_t)
        # The ILP may cache extra (cost-free only if d_ins were 0), so the
        # constraint-6-minimal cache of `plan` can only be cheaper.
        assert cost <= result.objective + 1e-6


class TestRoundingProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.01, max_value=0.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_candidates_cover_lp_mass(self, seed, n_stations, n_requests, gamma):
        """Each candidate set holds every station at/above the threshold."""
        rng = np.random.default_rng(seed)
        x = rng.dirichlet(np.ones(n_stations), size=n_requests)
        candidates = build_candidate_sets(x, gamma)
        for l in range(n_requests):
            above = set(np.nonzero(x[l] >= gamma)[0].tolist())
            if above:
                assert above == set(candidates[l].tolist())
            else:
                assert candidates[l].tolist() == [int(np.argmax(x[l]))]

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_repair_is_idempotent(self, seed, n_stations, n_requests):
        rng = np.random.default_rng(seed)
        x = rng.dirichlet(np.ones(n_stations), size=n_requests)
        demands = rng.uniform(0.5, 2.0, size=n_requests)
        capacities = rng.uniform(1.0, 5.0, size=n_stations)
        stations = rng.integers(0, n_stations, size=n_requests)
        once = repair_capacity(stations, x, demands, capacities, 1.0)
        twice = repair_capacity(once, x, demands, capacities, 1.0)
        np.testing.assert_array_equal(once, twice)


class TestDelayScaling:
    @given(instance_params, st.floats(min_value=1.1, max_value=5.0))
    @settings(max_examples=15, deadline=None)
    def test_cost_monotone_in_demand(self, params, scale):
        """Scaling every demand up never lowers the clairvoyant cost."""
        seed, n_stations, n_requests = params
        network, requests, demands = make_instance(seed, n_stations, n_requests)
        d_t = network.delays.sample(0)
        base = clairvoyant_cost(network, requests, demands, d_t)
        total_need = float((demands * scale).sum()) * network.c_unit_mhz
        if total_need > network.total_capacity_mhz():
            return  # scaled instance infeasible; nothing to compare
        scaled = clairvoyant_cost(network, requests, demands * scale, d_t)
        assert scaled >= base - 1e-9
