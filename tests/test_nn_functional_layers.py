"""Tests for differentiable functions, layers and optimisers."""

import numpy as np
import pytest

from repro.nn.functional import (
    binary_cross_entropy,
    categorical_cross_entropy,
    log_softmax,
    mse,
    softmax,
    softplus,
)
from repro.nn.gradcheck import gradcheck
from repro.nn.layers import BiLSTM, Dense, LSTM, LSTMCell, Sequential
from repro.nn.optim import Adam, Sgd
from repro.nn.tensor import Tensor


def param(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = param((4, 5), 1)
        out = softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))
        assert np.all(out > 0)

    def test_softmax_stability_with_large_logits(self):
        x = Tensor([[1000.0, 1000.0]])
        np.testing.assert_allclose(softmax(x).data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = param((3, 4), 2)
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-12
        )

    def test_softplus_positive_and_correct(self):
        x = Tensor([[-30.0, -1.0, 0.0, 1.0, 30.0]])
        expected = np.log1p(np.exp(np.clip(x.data, None, 30))) + np.maximum(
            x.data - 30.0, 0.0
        )
        np.testing.assert_allclose(softplus(x).data, expected, atol=1e-9)
        assert np.all(softplus(x).data >= 0)

    def test_bce_known_value(self):
        probs = Tensor([[0.9, 0.1]])
        loss = binary_cross_entropy(probs, np.array([[1.0, 0.0]]))
        assert loss.item() == pytest.approx(-np.log(0.9), rel=1e-6)

    def test_bce_rejects_bad_targets(self):
        probs = Tensor([[0.5]])
        with pytest.raises(ValueError):
            binary_cross_entropy(probs, np.array([[0.3]]))
        with pytest.raises(ValueError):
            binary_cross_entropy(probs, np.array([0.0, 1.0]))

    def test_cce_known_value(self):
        logits = Tensor([[0.0, 0.0, 0.0]])
        loss = categorical_cross_entropy(logits, np.array([[1.0, 0.0, 0.0]]))
        assert loss.item() == pytest.approx(np.log(3.0), rel=1e-6)

    def test_cce_rejects_non_one_hot(self):
        logits = Tensor([[0.0, 0.0]])
        with pytest.raises(ValueError):
            categorical_cross_entropy(logits, np.array([[0.5, 0.4]]))

    def test_mse_known_value(self):
        pred = Tensor([[1.0, 2.0]])
        assert mse(pred, np.array([[0.0, 0.0]])).item() == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(Tensor([[1.0]]), np.array([1.0, 2.0]))


class TestFunctionalGradients:
    def test_softmax_grad(self):
        x = param((2, 4), 3)
        gradcheck(lambda: (softmax(x) ** 2).sum(), [x])

    def test_log_softmax_grad(self):
        x = param((2, 4), 4)
        gradcheck(lambda: (log_softmax(x) * 0.5).sum(), [x])

    def test_softplus_grad(self):
        x = param((3, 3), 5)
        gradcheck(lambda: softplus(x).sum(), [x])

    def test_bce_grad(self):
        x = param((2, 3), 6)
        targets = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        gradcheck(lambda: binary_cross_entropy(x.sigmoid(), targets), [x])

    def test_cce_grad(self):
        x = param((2, 3), 7)
        targets = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0]])
        gradcheck(lambda: categorical_cross_entropy(x, targets), [x])

    def test_mse_grad(self):
        x = param((2, 3), 8)
        targets = np.zeros((2, 3))
        gradcheck(lambda: mse(x, targets), [x])


class TestDense:
    def test_output_shape(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_activations(self):
        rng = np.random.default_rng(0)
        for activation, bound in [("sigmoid", (0, 1)), ("tanh", (-1, 1))]:
            layer = Dense(4, 3, rng, activation=activation)
            out = layer(Tensor(np.random.default_rng(1).normal(size=(5, 4)))).data
            assert np.all(out >= bound[0]) and np.all(out <= bound[1])

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            Dense(2, 2, np.random.default_rng(0), activation="gelu")

    def test_input_shape_checked(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((5, 2))))

    def test_parameters_discovered(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        assert len(layer.parameters()) == 2
        assert layer.n_parameters == 4 * 3 + 3

    def test_gradcheck(self):
        layer = Dense(3, 2, np.random.default_rng(1), activation="tanh")
        x = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        gradcheck(lambda: (layer(x) ** 2).sum(), layer.parameters())


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(3, 5, np.random.default_rng(0))
        h, c = cell.initial_state(batch=2)
        h2, c2 = cell(Tensor(np.ones((2, 3))), (h, c))
        assert h2.shape == (2, 5) and c2.shape == (2, 5)

    def test_cell_forget_bias_initialised(self):
        cell = LSTMCell(3, 4, np.random.default_rng(0))
        bias = cell.bias.data[0]
        np.testing.assert_array_equal(bias[4:8], np.ones(4))
        np.testing.assert_array_equal(bias[:4], np.zeros(4))

    def test_cell_input_shape_checked(self):
        cell = LSTMCell(3, 4, np.random.default_rng(0))
        state = cell.initial_state(2)
        with pytest.raises(ValueError):
            cell(Tensor(np.ones((2, 5))), state)

    def test_lstm_output_shape(self):
        lstm = LSTM(3, 6, np.random.default_rng(0), num_layers=2)
        out = lstm(Tensor(np.random.default_rng(1).normal(size=(7, 2, 3))))
        assert out.shape == (7, 2, 6)

    def test_lstm_sequence_shape_checked(self):
        lstm = LSTM(3, 6, np.random.default_rng(0))
        with pytest.raises(ValueError):
            lstm(Tensor(np.ones((7, 2, 5))))

    def test_lstm_is_causal(self):
        """Changing a later input must not affect earlier outputs."""
        lstm = LSTM(2, 4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        base = rng.normal(size=(5, 1, 2))
        changed = base.copy()
        changed[4] += 10.0
        out_base = lstm(Tensor(base)).data
        out_changed = lstm(Tensor(changed)).data
        np.testing.assert_allclose(out_base[:4], out_changed[:4])
        assert not np.allclose(out_base[4], out_changed[4])

    def test_lstm_gradcheck(self):
        lstm = LSTM(2, 3, np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(4, 2, 2)))
        gradcheck(lambda: (lstm(x) ** 2).sum(), lstm.parameters(), rtol=1e-3)

    def test_cell_gradcheck(self):
        cell = LSTMCell(2, 3, np.random.default_rng(4))
        x = Tensor(np.random.default_rng(5).normal(size=(2, 2)))

        def f():
            h, c = cell(x, cell.initial_state(2))
            return (h * h).sum() + c.sum()

        gradcheck(f, cell.parameters(), rtol=1e-3)


class TestBiLSTM:
    def test_output_shape(self):
        bilstm = BiLSTM(3, 4, np.random.default_rng(0), num_layers=2)
        out = bilstm(Tensor(np.random.default_rng(1).normal(size=(6, 2, 3))))
        assert out.shape == (6, 2, 8)
        assert bilstm.output_size == 8

    def test_sees_both_directions(self):
        """Changing the last input must affect the *first* output (backward
        direction) — the property the paper needs from the Bi-LSTM."""
        bilstm = BiLSTM(2, 4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        base = rng.normal(size=(5, 1, 2))
        changed = base.copy()
        changed[4] += 10.0
        out_base = bilstm(Tensor(base)).data
        out_changed = bilstm(Tensor(changed)).data
        assert not np.allclose(out_base[0], out_changed[0])

    def test_gradcheck(self):
        bilstm = BiLSTM(2, 2, np.random.default_rng(2))
        x = Tensor(np.random.default_rng(3).normal(size=(3, 1, 2)))
        gradcheck(lambda: (bilstm(x) ** 2).sum(), bilstm.parameters(), rtol=1e-3)


class TestSequential:
    def test_chains_modules(self):
        rng = np.random.default_rng(0)
        net = Sequential(Dense(3, 5, rng, activation="tanh"), Dense(5, 1, rng))
        out = net(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)

    def test_parameters_from_all_modules(self):
        rng = np.random.default_rng(0)
        net = Sequential(Dense(3, 5, rng), Dense(5, 1, rng))
        assert len(net.parameters()) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential()


class TestOptimizers:
    def test_sgd_minimises_quadratic(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = Sgd([x], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert abs(x.data[0]) < 1e-3

    def test_sgd_momentum_faster_on_ravine(self):
        def run(momentum):
            x = Tensor(np.array([5.0, 5.0]), requires_grad=True)
            optimizer = Sgd([x], lr=0.02, momentum=momentum)
            for _ in range(60):
                optimizer.zero_grad()
                ((x * x) * Tensor(np.array([1.0, 10.0]))).sum().backward()
                optimizer.step()
            return float(np.abs(x.data).sum())

        assert run(0.9) < run(0.0)

    def test_adam_minimises_quadratic(self):
        x = Tensor(np.array([3.0, -4.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            (x * x).sum().backward()
            optimizer.step()
        assert np.all(np.abs(x.data) < 1e-2)

    def test_optimizer_skips_untouched_params(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Sgd([x, y], lr=0.1)
        optimizer.zero_grad()
        (x * 2).sum().backward()
        optimizer.step()
        assert y.data[0] == 1.0  # untouched
        assert x.data[0] != 1.0

    def test_optimizer_rejects_non_grad_tensors(self):
        with pytest.raises(ValueError):
            Sgd([Tensor([1.0])], lr=0.1)

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_xor_training_end_to_end(self):
        """A two-layer net must learn XOR — full framework integration."""
        rng = np.random.default_rng(42)
        net = Sequential(
            Dense(2, 8, rng, activation="tanh"), Dense(8, 1, rng, activation="sigmoid")
        )
        inputs = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        targets = np.array([[0.0], [1.0], [1.0], [0.0]])
        optimizer = Adam(net.parameters(), lr=0.05)
        from repro.nn.functional import binary_cross_entropy

        for _ in range(400):
            optimizer.zero_grad()
            loss = binary_cross_entropy(net(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        predictions = net(Tensor(inputs)).data
        assert np.all((predictions > 0.5) == (targets > 0.5))
