"""Tests for the process-parallel repetition engine (repro.sim.parallel)."""

import os

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController, PriorityController
from repro.mec import DriftingDelay, MECNetwork
from repro.mec.requests import Request
from repro.sim import ParallelRunner, resolve_n_jobs, run_repetitions
from repro.sim.parallel import WorkItem, _execute_work_item, repetition_registry
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel

# Metrics that are functions of the seed alone.  mean_decision_s is a
# wall-clock measurement and differs between *any* two runs, serial or not.
DETERMINISTIC_METRICS = ("mean_delay_ms", "total_churn")


def _world(rngs: RngRegistry, n_requests: int = 8):
    network = MECNetwork.synthetic(12, 2, rngs)
    network.delays = DriftingDelay(
        network.stations, rngs.get("drift"), drift_ms=1.0
    )
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(n_requests)
    ]
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    return network, requests


def scenario(rngs: RngRegistry):
    """Two-controller scenario; module-level so it pickles to workers."""
    network, requests = _world(rngs)
    controllers = [
        OlGdController(network, requests, rngs.get("ol")),
        GreedyController(network, requests, rngs.get("gr")),
    ]
    return network, ConstantDemandModel(requests), controllers


class CrashingController(GreedyController):
    """Deliberately explodes mid-run (failure-reporting tests)."""

    def decide(self, slot, demands):
        if slot == 1:
            raise RuntimeError("injected crash")
        return super().decide(slot, demands)


CRASH_STUDY_SEED = 71
CRASH_REPETITION = 2


def crashing_scenario(rngs: RngRegistry):
    """One repetition's Greedy controller crashes; everything else runs."""
    network, requests = _world(rngs, n_requests=5)
    greedy_cls = GreedyController
    if rngs.seed == repetition_registry(CRASH_STUDY_SEED, CRASH_REPETITION).seed:
        greedy_cls = CrashingController
    controllers = [
        greedy_cls(network, requests, rngs.get("gr")),
        PriorityController(network, requests, rngs.get("pri")),
    ]
    return network, ConstantDemandModel(requests), controllers


def always_crashing_scenario(rngs: RngRegistry):
    raise ValueError("nothing to build")


class TestResolveNJobs:
    def test_literal_positive(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_n_jobs(None) == cores
        assert resolve_n_jobs(0) == cores

    def test_negative_counts_back_from_cores(self):
        cores = os.cpu_count() or 1
        assert resolve_n_jobs(-1) == cores
        assert resolve_n_jobs(-cores) == max(1, 1)
        assert resolve_n_jobs(-10 * cores) == 1  # floored at one worker


class TestBitIdentity:
    """Serial and parallel paths must agree bit-for-bit on seed-determined
    metrics — the engine's core guarantee (2 controllers × 4 repetitions)."""

    def test_parallel_matches_serial_summaries(self):
        serial = run_repetitions(scenario, seed=101, repetitions=4, horizon=6)
        parallel = run_repetitions(
            scenario, seed=101, repetitions=4, horizon=6, n_jobs=2
        )
        assert set(serial.summaries) == set(parallel.summaries) == {
            "OL_GD",
            "Greedy_GD",
        }
        for controller in serial.summaries:
            for metric in DETERMINISTIC_METRICS:
                assert (
                    serial.summary(controller, metric).values
                    == parallel.summary(controller, metric).values
                ), (controller, metric)

    def test_parallel_matches_serial_raw_series(self):
        serial = run_repetitions(scenario, seed=103, repetitions=2, horizon=5)
        parallel = run_repetitions(
            scenario, seed=103, repetitions=2, horizon=5, n_jobs=2
        )
        for controller in serial.raw:
            for rep_serial, rep_parallel in zip(
                serial.raw[controller], parallel.raw[controller]
            ):
                np.testing.assert_array_equal(
                    rep_serial.delays_ms, rep_parallel.delays_ms
                )
                np.testing.assert_array_equal(
                    rep_serial.cache_churn, rep_parallel.cache_churn
                )

    def test_worker_count_does_not_change_results(self):
        two = run_repetitions(scenario, seed=107, repetitions=3, horizon=4, n_jobs=2)
        three = run_repetitions(scenario, seed=107, repetitions=3, horizon=4, n_jobs=3)
        for controller in two.summaries:
            for metric in DETERMINISTIC_METRICS:
                assert (
                    two.summary(controller, metric).values
                    == three.summary(controller, metric).values
                )


class TestFailureReporting:
    """A crashed repetition is recorded and excluded, never fatal."""

    def test_serial_crash_reported_not_fatal(self):
        study = run_repetitions(
            crashing_scenario, seed=CRASH_STUDY_SEED, repetitions=4, horizon=4
        )
        assert study.n_failed == 1
        failure = study.failures[0]
        assert failure.repetition == CRASH_REPETITION
        assert "injected crash" in failure.error
        assert "RuntimeError" in failure.traceback
        # The crashed run is excluded; the partner controller keeps all 4.
        assert study.summary("Greedy_GD", "mean_delay_ms").n == 3
        assert study.summary("Pri_GD", "mean_delay_ms").n == 4
        assert study.completed_runs == 7

    def test_parallel_crash_reported_not_fatal(self):
        study = run_repetitions(
            crashing_scenario,
            seed=CRASH_STUDY_SEED,
            repetitions=4,
            horizon=4,
            n_jobs=2,
        )
        assert study.n_failed == 1
        assert study.failures[0].repetition == CRASH_REPETITION
        assert "injected crash" in study.failures[0].error
        assert study.summary("Greedy_GD", "mean_delay_ms").n == 3
        assert study.summary("Pri_GD", "mean_delay_ms").n == 4

    def test_all_failures_raise(self):
        with pytest.raises(RuntimeError, match="all .* runs failed"):
            run_repetitions(
                always_crashing_scenario, seed=1, repetitions=2, horizon=3
            )

    def test_str_names_the_work_item(self):
        study = run_repetitions(
            crashing_scenario, seed=CRASH_STUDY_SEED, repetitions=4, horizon=4
        )
        text = str(study.failures[0])
        assert f"rep{CRASH_REPETITION}" in text


class TestTimingAccounting:
    def test_study_records_execution_accounting(self):
        study = run_repetitions(
            scenario, seed=109, repetitions=2, horizon=4, n_jobs=2
        )
        assert study.n_jobs == 2
        assert study.wall_clock_seconds > 0
        assert study.cpu_seconds > 0
        assert study.completed_runs == 4  # 2 reps x 2 controllers
        assert study.runs_per_second > 0
        assert 0 < study.parallel_efficiency
        table = study.timing_table()
        assert "workers" in table and "runs / second" in table

    def test_serial_accounting_defaults(self):
        study = run_repetitions(scenario, seed=109, repetitions=2, horizon=4)
        assert study.n_jobs == 1
        assert study.completed_runs == 4
        assert study.n_failed == 0


class TestTelemetryMerge:
    """Worker registries merge into a study aggregate that matches serial."""

    def test_metrics_off_by_default(self):
        study = run_repetitions(scenario, seed=127, repetitions=2, horizon=3)
        assert study.metrics is None
        assert study.worker_metrics == {}
        with pytest.raises(ValueError, match="collect_metrics"):
            study.metrics_table()

    def test_serial_study_collects_metrics(self):
        study = run_repetitions(
            scenario, seed=127, repetitions=2, horizon=3, collect_metrics=True
        )
        assert study.metrics is not None
        # 2 reps x 2 controllers x 3 slots, every slot counted exactly once.
        assert study.metrics.counter("sim.slots") == 12
        # Only OL_GD solves LPs: 2 reps x 3 slots.
        assert study.metrics.counter("lp.solve.calls") == 6
        assert list(study.worker_metrics) == [os.getpid()]
        table = study.metrics_table()
        assert "aggregate" in table and "lp.solve" in table

    def test_parallel_aggregate_identical_to_serial(self):
        serial = run_repetitions(
            scenario, seed=131, repetitions=3, horizon=4, collect_metrics=True
        )
        parallel = run_repetitions(
            scenario,
            seed=131,
            repetitions=3,
            horizon=4,
            n_jobs=2,
            collect_metrics=True,
        )
        # Deterministic telemetry (counters, histogram observation counts)
        # is identical in aggregate regardless of worker count; only the
        # timing values inside the histograms are wall-clock.
        assert serial.metrics.counters == parallel.metrics.counters
        serial_snapshot = serial.metrics.snapshot()["histograms"]
        parallel_snapshot = parallel.metrics.snapshot()["histograms"]
        assert set(serial_snapshot) == set(parallel_snapshot)
        for name in serial_snapshot:
            assert (
                serial_snapshot[name]["count"] == parallel_snapshot[name]["count"]
            ), name
        # Per-worker registries partition the aggregate.
        total = sum(
            registry.counter("sim.slots")
            for registry in parallel.worker_metrics.values()
        )
        assert total == parallel.metrics.counter("sim.slots")

    def test_work_items_carry_snapshots(self):
        runner = ParallelRunner(n_jobs=1)
        work = runner.run(
            scenario,
            seed=127,
            repetitions=1,
            horizon=3,
            collect_metrics=True,
        )
        assert all(w.metrics is not None for w in work)
        assert all(w.pid == os.getpid() for w in work)

    def test_serial_run_inherits_parent_trace_writer(self, tmp_path):
        """Regression: per-item registries must reuse the parent's trace
        writer in-process, else `--trace` with --jobs 1 writes 0 events."""
        from repro import obs

        path = tmp_path / "study.jsonl"
        writer = obs.TraceWriter(path)
        registry = obs.MetricsRegistry(trace=writer)
        with obs.activate(registry):
            run_repetitions(scenario, seed=127, repetitions=1, horizon=3)
        writer.close()
        events = obs.read_trace(path)
        assert len(events) > 0
        assert {e["name"] for e in events} >= {"sim.decide", "lp.solve"}

    def test_active_parent_registry_receives_pool_results(self):
        from repro import obs

        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            run_repetitions(
                scenario, seed=127, repetitions=2, horizon=3, n_jobs=2
            )
        assert registry.counter("sim.slots") == 12


class TestParallelRunner:
    def test_results_sorted_by_grid_position(self):
        runner = ParallelRunner(n_jobs=2)
        work = runner.run(scenario, seed=113, repetitions=3, horizon=3)
        coords = [(w.repetition, w.controller_index) for w in work]
        assert coords == [(r, c) for r in range(3) for c in range(2)]

    def test_probe_counts_controllers(self):
        assert ParallelRunner._probe_controller_count(scenario, seed=113) == 2

    def test_execute_work_item_in_process(self):
        result = _execute_work_item(
            scenario,
            seed=113,
            item=WorkItem(repetition=0, controller_index=1),
            horizon=3,
            demands_known=True,
        )
        assert result.ok
        assert result.controller_name == "Greedy_GD"
        assert result.result.horizon == 3
        assert result.wall_seconds > 0

    def test_failed_item_failure_conversion(self):
        result = _execute_work_item(
            always_crashing_scenario,
            seed=1,
            item=WorkItem(repetition=0, controller_index=0),
            horizon=3,
            demands_known=True,
        )
        assert not result.ok
        failure = result.failure()
        assert "nothing to build" in failure.error

    def test_ok_item_has_no_failure(self):
        result = _execute_work_item(
            scenario,
            seed=113,
            item=WorkItem(repetition=0, controller_index=0),
            horizon=3,
            demands_known=True,
        )
        with pytest.raises(ValueError):
            result.failure()
