"""Tests for candidate sets (Eq. 9), sampling and capacity repair."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.candidates import (
    build_candidate_sets,
    repair_capacity,
    sample_assignment,
)


class TestBuildCandidateSets:
    def test_threshold_applied(self):
        x = np.array([[0.5, 0.3, 0.2], [0.05, 0.9, 0.05]])
        candidates = build_candidate_sets(x, gamma=0.25)
        np.testing.assert_array_equal(candidates[0], [0, 1])
        np.testing.assert_array_equal(candidates[1], [1])

    def test_empty_set_falls_back_to_argmax(self):
        x = np.array([[0.4, 0.35, 0.25]])
        candidates = build_candidate_sets(x, gamma=0.9)
        np.testing.assert_array_equal(candidates[0], [0])

    def test_gamma_zero_includes_all(self):
        x = np.array([[0.2, 0.0, 0.8]])
        candidates = build_candidate_sets(x, gamma=0.0)
        np.testing.assert_array_equal(candidates[0], [0, 1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            build_candidate_sets(np.zeros((2, 3)), gamma=1.5)
        with pytest.raises(ValueError):
            build_candidate_sets(np.zeros(3), gamma=0.1)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_never_empty(self, n_requests, n_stations, gamma):
        rng = np.random.default_rng(0)
        x = rng.dirichlet(np.ones(n_stations), size=n_requests)
        for c in build_candidate_sets(x, gamma):
            assert c.size >= 1


class TestSampleAssignment:
    def test_exploit_stays_in_candidates(self):
        x = np.array([[0.6, 0.4, 0.0], [0.0, 0.1, 0.9]])
        candidates = build_candidate_sets(x, gamma=0.05)
        rng = np.random.default_rng(0)
        for _ in range(100):
            stations = sample_assignment(x, candidates, rng)
            assert stations[0] in (0, 1)
            assert stations[1] in (1, 2)

    def test_exploit_respects_probabilities(self):
        x = np.array([[0.9, 0.1]])
        candidates = build_candidate_sets(x, gamma=0.05)
        rng = np.random.default_rng(1)
        draws = [sample_assignment(x, candidates, rng)[0] for _ in range(2000)]
        frequency = np.mean(np.array(draws) == 0)
        assert 0.85 <= frequency <= 0.95

    def test_explore_leaves_candidates(self):
        x = np.array([[0.9, 0.1, 0.0, 0.0]])
        candidates = build_candidate_sets(x, gamma=0.5)  # candidate = {0}
        rng = np.random.default_rng(2)
        mask = np.array([True])
        for _ in range(50):
            station = sample_assignment(x, candidates, rng, explore_mask=mask)[0]
            assert station != 0  # outside the candidate set (line 9)

    def test_explore_with_full_candidate_set_falls_back(self):
        x = np.array([[0.5, 0.5]])
        candidates = [np.array([0, 1])]  # covers every station
        rng = np.random.default_rng(3)
        station = sample_assignment(x, candidates, rng, explore_mask=np.array([True]))[0]
        assert station in (0, 1)

    def test_zero_mass_candidates_sampled_uniformly(self):
        x = np.zeros((1, 3))
        candidates = [np.array([1, 2])]
        rng = np.random.default_rng(4)
        draws = {sample_assignment(x, candidates, rng)[0] for _ in range(50)}
        assert draws <= {1, 2}

    def test_validation(self):
        x = np.zeros((2, 3))
        with pytest.raises(ValueError, match="candidate"):
            sample_assignment(x, [np.array([0])], np.random.default_rng(0))
        with pytest.raises(ValueError, match="explore_mask"):
            sample_assignment(
                x,
                [np.array([0]), np.array([0])],
                np.random.default_rng(0),
                explore_mask=np.array([True]),
            )


class TestRepairCapacity:
    def test_feasible_assignment_untouched(self):
        x = np.array([[1.0, 0.0], [0.0, 1.0]])
        stations = np.array([0, 1])
        repaired = repair_capacity(
            stations, x, np.array([1.0, 1.0]), np.array([10.0, 10.0]), 1.0
        )
        np.testing.assert_array_equal(repaired, stations)

    def test_overload_moved_to_next_best(self):
        # Both requests on station 0 (capacity 1.5) with demand 1.0 each.
        x = np.array([[0.9, 0.1], [0.6, 0.4]])
        stations = np.array([0, 0])
        repaired = repair_capacity(
            stations, x, np.array([1.0, 1.0]), np.array([1.5, 10.0]), 1.0
        )
        # Request 1 (smaller x* on station 0) moves to station 1.
        np.testing.assert_array_equal(repaired, [0, 1])

    def test_repair_restores_feasibility(self):
        rng = np.random.default_rng(5)
        n_requests, n_stations = 20, 5
        x = rng.dirichlet(np.ones(n_stations), size=n_requests)
        demands = rng.uniform(0.5, 2.0, size=n_requests)
        capacities = np.full(n_stations, demands.sum() / n_stations * 1.5)
        stations = np.full(n_requests, 0)  # everything piled on station 0
        repaired = repair_capacity(stations, x, demands, capacities, 1.0)
        loads = np.zeros(n_stations)
        np.add.at(loads, repaired, demands)
        assert np.all(loads <= capacities + 1e-9)

    def test_impossible_overload_left_in_place(self):
        """When nothing fits anywhere, the request stays (penalty prices it)."""
        x = np.array([[1.0, 0.0]])
        stations = np.array([0])
        repaired = repair_capacity(
            stations, x, np.array([5.0]), np.array([1.0, 1.0]), 1.0
        )
        np.testing.assert_array_equal(repaired, [0])

    def test_input_not_mutated(self):
        stations = np.array([0, 0])
        x = np.array([[0.9, 0.1], [0.6, 0.4]])
        repair_capacity(stations, x, np.array([1.0, 1.0]), np.array([1.5, 10.0]), 1.0)
        np.testing.assert_array_equal(stations, [0, 0])

    @given(st.integers(min_value=1, max_value=15), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30)
    def test_repair_never_worsens_total_overload(self, n_requests, n_stations):
        rng = np.random.default_rng(n_requests * 100 + n_stations)
        x = rng.dirichlet(np.ones(n_stations), size=n_requests)
        demands = rng.uniform(0.5, 2.0, size=n_requests)
        capacities = rng.uniform(1.0, 4.0, size=n_stations)
        stations = rng.integers(0, n_stations, size=n_requests)

        def total_overload(assignment):
            loads = np.zeros(n_stations)
            np.add.at(loads, assignment, demands)
            return np.maximum(loads - capacities, 0.0).sum()

        repaired = repair_capacity(stations, x, demands, capacities, 1.0)
        assert total_overload(repaired) <= total_overload(stations) + 1e-9


class TestNonFiniteGuard:
    def test_nan_fractional_rejected(self):
        x = np.array([[np.nan, 1.0]])
        candidates = [np.array([0, 1])]
        with pytest.raises(ValueError, match="non-finite"):
            sample_assignment(x, candidates, np.random.default_rng(0))

    def test_inf_fractional_rejected(self):
        x = np.array([[np.inf, 0.0]])
        candidates = [np.array([0, 1])]
        with pytest.raises(ValueError, match="non-finite"):
            sample_assignment(x, candidates, np.random.default_rng(0))
