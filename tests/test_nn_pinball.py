"""Tests for the pinball (quantile) loss and its use in the GAN anchor."""

import numpy as np
import pytest

from repro.gan import InfoRnnGan
from repro.nn.functional import pinball
from repro.nn.gradcheck import gradcheck
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


class TestPinball:
    def test_symmetric_at_half(self):
        """tau=0.5 gives half the mean absolute error."""
        pred = Tensor([[1.0, 4.0]])
        targets = np.array([[3.0, 2.0]])
        loss = pinball(pred, targets, quantile=0.5)
        assert loss.item() == pytest.approx(0.5 * np.mean([2.0, 2.0]))

    def test_asymmetry(self):
        """tau=0.8 punishes under-prediction 4x harder than over."""
        under = pinball(Tensor([[0.0]]), np.array([[1.0]]), quantile=0.8)
        over = pinball(Tensor([[2.0]]), np.array([[1.0]]), quantile=0.8)
        assert under.item() == pytest.approx(0.8)
        assert over.item() == pytest.approx(0.2)

    def test_zero_at_perfect_prediction(self):
        loss = pinball(Tensor([[1.0, 2.0]]), np.array([[1.0, 2.0]]), quantile=0.7)
        assert loss.item() == 0.0

    def test_quantile_validation(self):
        pred = Tensor([[1.0]])
        with pytest.raises(ValueError):
            pinball(pred, np.array([[1.0]]), quantile=0.0)
        with pytest.raises(ValueError):
            pinball(pred, np.array([[1.0]]), quantile=1.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pinball(Tensor([[1.0]]), np.array([1.0, 2.0]), quantile=0.5)

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        # Targets away from predictions so the relu kinks are not hit.
        targets = x.data + np.where(rng.uniform(size=(3, 4)) > 0.5, 1.0, -1.0)
        gradcheck(lambda: pinball(x, targets, quantile=0.7), [x])

    def test_minimiser_converges_to_quantile(self):
        """Minimising pinball over data recovers the empirical quantile."""
        rng = np.random.default_rng(1)
        samples = rng.exponential(2.0, size=(400, 1))
        theta = Tensor(np.array([[0.1]]), requires_grad=True)
        optimizer = Adam([theta], lr=0.05)
        for _ in range(600):
            optimizer.zero_grad()
            broadcast = theta * Tensor(np.ones_like(samples))
            pinball(broadcast, samples, quantile=0.8).backward()
            optimizer.step()
        target = np.quantile(samples, 0.8)
        assert theta.data[0, 0] == pytest.approx(target, rel=0.15)


class TestGanQuantileAnchor:
    def _batch(self, seed=0):
        rng = np.random.default_rng(seed)
        real = np.abs(rng.normal(2.0, 1.0, size=(5, 6, 1)))
        cond = np.abs(rng.normal(2.0, 1.0, size=(5, 6, 1)))
        codes = np.eye(3)[rng.integers(0, 3, size=6)]
        return real, cond, codes

    def test_quantile_validated(self):
        with pytest.raises(ValueError):
            InfoRnnGan(code_dim=3, rng=np.random.default_rng(0),
                       supervised_quantile=0.0)
        with pytest.raises(ValueError):
            InfoRnnGan(code_dim=3, rng=np.random.default_rng(0),
                       supervised_quantile=1.0)

    def test_high_quantile_biases_predictions_up(self):
        """Training at tau=0.9 should leave a higher mean forecast than
        tau=0.5 on the same data."""
        real, cond, codes = self._batch()

        def train(quantile, seed=3):
            gan = InfoRnnGan(
                code_dim=3,
                rng=np.random.default_rng(seed),
                hidden_size=8,
                supervised_quantile=quantile,
                supervised_weight=10.0,
            )
            for _ in range(60):
                gan.train_step(real, cond, codes)
            return gan.generate(codes, cond, n_samples=4).mean()

        assert train(0.9) > train(0.5)
