"""Tests for argument-validation helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_open_probability,
    require_positive,
    require_probability,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive("x", 3.5) == 3.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            require_positive("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            require_positive("x", math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            require_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            require_positive("x", "3")  # type: ignore[arg-type]

    @given(st.floats(min_value=1e-12, max_value=1e12, allow_nan=False))
    def test_returns_value_unchanged(self, value):
        assert require_positive("x", value) == value


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            require_non_negative("x", -0.001)


class TestRequireProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, p):
        assert require_probability("p", p) == p

    @pytest.mark.parametrize("p", [-0.01, 1.01, 5])
    def test_rejects_out_of_range(self, p):
        with pytest.raises(ValueError):
            require_probability("p", p)


class TestRequireOpenProbability:
    @pytest.mark.parametrize("p", [0.001, 0.5, 0.999])
    def test_accepts_interior(self, p):
        assert require_open_probability("p", p) == p

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.01, 1.01])
    def test_rejects_endpoints_and_outside(self, p):
        with pytest.raises(ValueError, match="strictly between"):
            require_open_probability("p", p)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            require_open_probability("p", math.nan)


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range("x", 2, 2, 4) == 2
        assert require_in_range("x", 4, 2, 4) == 4

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match=r"\[2, 4\]"):
            require_in_range("x", 5, 2, 4)

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="capacity"):
            require_in_range("capacity", -1, 0, 10)
