"""Tests for the hotspot-hopping mobility model and the mobile Pri_GD."""

import numpy as np
import pytest

from repro.mec.geometry import Point
from repro.mec.network import MECNetwork
from repro.utils.seeding import RngRegistry
from repro.workload import requests_from_trace, synthesize_nyc_wifi_trace
from repro.workload.mobility import HotspotHoppingMobility, MobilePriorityController


HOTSPOTS = [Point(0.0, 0.0), Point(100.0, 0.0), Point(0.0, 100.0)]


def make_mobility(seed=0, n_users=5, **kwargs):
    return HotspotHoppingMobility(
        HOTSPOTS, n_users, np.random.default_rng(seed), **kwargs
    )


class TestHotspotHoppingMobility:
    def test_deterministic_and_order_independent(self):
        a, b = make_mobility(seed=1), make_mobility(seed=1)
        forward = [a.hotspot_of(0, t) for t in range(40)]
        backward = [b.hotspot_of(0, t) for t in reversed(range(40))]
        assert forward == list(reversed(backward))

    def test_dwell_respected(self):
        mobility = make_mobility(seed=2, dwell_range=(5, 5))
        series = [mobility.hotspot_of(0, t) for t in range(25)]
        # Exactly 5-slot blocks of constant hotspot.
        for block_start in range(0, 25, 5):
            block = series[block_start : block_start + 5]
            assert len(set(block)) == 1

    def test_hops_change_hotspot(self):
        mobility = make_mobility(seed=3, dwell_range=(3, 3))
        series = [mobility.hotspot_of(0, t) for t in range(30)]
        transitions = [
            (series[t], series[t + 1])
            for t in range(29)
            if series[t] != series[t + 1]
        ]
        assert transitions, "the user must move at least once in 30 slots"
        # A hop never 'hops' to the same hotspot.
        for before, after in transitions:
            assert before != after

    def test_positions_near_current_hotspot(self):
        mobility = make_mobility(seed=4, jitter_m=10.0)
        for t in range(20):
            for user in range(5):
                hotspot = HOTSPOTS[mobility.hotspot_of(user, t)]
                assert hotspot.distance_to(mobility.position_of(user, t)) <= 10.0 + 1e-9

    def test_position_fixed_within_a_dwell(self):
        mobility = make_mobility(seed=5, dwell_range=(6, 6))
        p0 = mobility.position_of(0, 0)
        p1 = mobility.position_of(0, 5)
        assert p0.distance_to(p1) == pytest.approx(0.0)

    def test_positions_at_covers_all_users(self):
        mobility = make_mobility(seed=6, n_users=7)
        assert len(mobility.positions_at(3)) == 7

    def test_initial_hotspots_honoured(self):
        mobility = make_mobility(seed=7, n_users=3, initial_hotspots=[2, 0, 1])
        assert [mobility.hotspot_of(u, 0) for u in range(3)] == [2, 0, 1]

    def test_single_hotspot_never_moves(self):
        mobility = HotspotHoppingMobility(
            [Point(0, 0)], 2, np.random.default_rng(8), dwell_range=(2, 2)
        )
        assert all(mobility.hotspot_of(0, t) == 0 for t in range(10))

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotHoppingMobility([], 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            make_mobility(dwell_range=(0, 3))
        with pytest.raises(ValueError):
            make_mobility(n_users=2, initial_hotspots=[0])
        with pytest.raises(ValueError):
            make_mobility(n_users=1, initial_hotspots=[9])
        mobility = make_mobility()
        with pytest.raises(IndexError):
            mobility.hotspot_of(99, 0)
        with pytest.raises(ValueError):
            mobility.hotspot_of(0, -1)


class TestMobilePriorityController:
    def _setting(self):
        rngs = RngRegistry(seed=9)
        trace = synthesize_nyc_wifi_trace(4, 10, rngs.get("trace"), horizon_slots=20)
        anchors = [h.location for h in trace.hotspots]
        network = MECNetwork.synthetic(20, 2, rngs, anchor_points=anchors)
        requests = requests_from_trace(trace, network.services, rngs.get("trace"))
        mobility = HotspotHoppingMobility(
            anchors, len(requests), rngs.get("mobility"), dwell_range=(2, 4)
        )
        return rngs, network, requests, mobility

    def test_priorities_follow_movement(self):
        rngs, network, requests, mobility = self._setting()
        controller = MobilePriorityController(
            network, requests, rngs.get("ctrl"), mobility
        )
        demands = np.array([r.basic_demand_mb for r in requests])
        seen = set()
        for t in range(12):
            assignment = controller.decide(t, demands)
            seen.add(tuple(controller.priorities.tolist()))
            controller.observe(t, demands, network.delays.sample(t), assignment)
        assert len(seen) > 1, "moving users must change the priority vector"

    def test_user_count_mismatch_rejected(self):
        rngs, network, requests, mobility = self._setting()
        with pytest.raises(ValueError, match="users"):
            MobilePriorityController(
                network, requests[:-1], rngs.get("ctrl"), mobility
            )

    def test_assignments_valid(self):
        rngs, network, requests, mobility = self._setting()
        controller = MobilePriorityController(
            network, requests, rngs.get("ctrl"), mobility
        )
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        assert np.all(assignment.station_of < network.n_stations)
