"""Tests for topology generators and base-station placement."""

import networkx as nx
import numpy as np
import pytest

from repro.mec.basestation import BaseStationTier
from repro.mec.topology import (
    AS1755_EDGE_COUNT,
    AS1755_NODE_COUNT,
    as1755_topology,
    gtitm_topology,
    place_base_stations,
    transit_stub_topology,
)


class TestGtitmTopology:
    def test_node_count(self):
        g = gtitm_topology(40, np.random.default_rng(0))
        assert g.number_of_nodes() == 40

    def test_connected(self):
        for seed in range(5):
            g = gtitm_topology(30, np.random.default_rng(seed))
            assert nx.is_connected(g)

    def test_link_probability_controls_density(self):
        rng = np.random.default_rng(1)
        sparse = gtitm_topology(60, rng, link_probability=0.05)
        rng = np.random.default_rng(1)
        dense = gtitm_topology(60, rng, link_probability=0.5)
        assert dense.number_of_edges() > sparse.number_of_edges()

    def test_density_close_to_probability(self):
        n, p = 100, 0.1
        g = gtitm_topology(n, np.random.default_rng(2), link_probability=p)
        possible = n * (n - 1) / 2
        assert abs(g.number_of_edges() / possible - p) < 0.03

    def test_edges_have_attributes(self):
        g = gtitm_topology(20, np.random.default_rng(3))
        for _, _, data in g.edges(data=True):
            assert data["delay_ms"] > 0
            assert data["bandwidth_mbps"] > 0

    def test_deterministic_given_rng(self):
        g1 = gtitm_topology(25, np.random.default_rng(9))
        g2 = gtitm_topology(25, np.random.default_rng(9))
        assert sorted(g1.edges) == sorted(g2.edges)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            gtitm_topology(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gtitm_topology(10, np.random.default_rng(0), link_probability=1.5)


class TestTransitStub:
    def test_connected_and_sized(self):
        g = transit_stub_topology(2, 3, 2, 4, np.random.default_rng(0))
        # 2 transit domains of 3 + each of the 6 transit nodes hangs 2 stubs of 4
        assert g.number_of_nodes() == 2 * 3 + 6 * 2 * 4
        assert nx.is_connected(g)

    def test_stub_gateways_create_cut_edges(self):
        """Stub domains attach by one gateway edge, so bridges must exist."""
        g = transit_stub_topology(2, 2, 2, 3, np.random.default_rng(1))
        assert any(True for _ in nx.bridges(g))

    def test_edge_attributes_assigned(self):
        g = transit_stub_topology(1, 2, 1, 3, np.random.default_rng(2))
        assert all("delay_ms" in d for _, _, d in g.edges(data=True))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            transit_stub_topology(0, 1, 1, 1, np.random.default_rng(0))


class TestAs1755:
    def test_published_scale(self):
        g = as1755_topology()
        assert g.number_of_nodes() == AS1755_NODE_COUNT == 87
        assert g.number_of_edges() == AS1755_EDGE_COUNT == 161

    def test_deterministic_by_default(self):
        g1, g2 = as1755_topology(), as1755_topology()
        assert sorted(g1.edges) == sorted(g2.edges)
        d1 = [g1.edges[e]["delay_ms"] for e in sorted(g1.edges)]
        d2 = [g2.edges[e]["delay_ms"] for e in sorted(g2.edges)]
        assert d1 == d2

    def test_connected(self):
        assert nx.is_connected(as1755_topology())

    def test_heavy_tailed_degrees(self):
        """The synthesis must produce hub nodes (max degree >> mean degree)."""
        g = as1755_topology()
        degrees = [d for _, d in g.degree()]
        assert max(degrees) >= 4 * (sum(degrees) / len(degrees))

    def test_hub_links_slower(self):
        """Links adjacent to hubs should carry larger delays (bottlenecks)."""
        g = as1755_topology()
        degrees = dict(g.degree())
        max_deg = max(degrees.values())
        hub_delays = [
            d["delay_ms"]
            for u, v, d in g.edges(data=True)
            if max(degrees[u], degrees[v]) >= 0.8 * max_deg
        ]
        leaf_delays = [
            d["delay_ms"]
            for u, v, d in g.edges(data=True)
            if max(degrees[u], degrees[v]) <= 0.2 * max_deg
        ]
        assert hub_delays and leaf_delays
        assert np.mean(hub_delays) > np.mean(leaf_delays)


class TestPlacement:
    def test_one_station_per_node(self):
        g = gtitm_topology(50, np.random.default_rng(0))
        stations = place_base_stations(g, np.random.default_rng(1))
        assert len(stations) == 50
        assert [bs.index for bs in stations] == list(range(50))

    def test_tier_mix(self):
        g = gtitm_topology(100, np.random.default_rng(0))
        stations = place_base_stations(
            g, np.random.default_rng(1), macro_fraction=0.1, micro_fraction=0.3
        )
        tiers = [bs.tier for bs in stations]
        assert tiers.count(BaseStationTier.MACRO) == 10
        assert tiers.count(BaseStationTier.MICRO) == 30
        assert tiers.count(BaseStationTier.FEMTO) == 60

    def test_at_least_one_macro(self):
        g = gtitm_topology(5, np.random.default_rng(0))
        stations = place_base_stations(g, np.random.default_rng(1), macro_fraction=0.01)
        assert any(bs.tier is BaseStationTier.MACRO for bs in stations)

    def test_capacities_within_tier_bands(self):
        g = gtitm_topology(60, np.random.default_rng(0))
        for bs in place_base_stations(g, np.random.default_rng(1)):
            lo, hi = bs.profile.capacity_mhz
            assert lo <= bs.capacity_mhz <= hi

    def test_small_cells_near_a_macro(self):
        """Micro/femto stations must sit inside some macro's coverage disk."""
        g = gtitm_topology(80, np.random.default_rng(0))
        stations = place_base_stations(g, np.random.default_rng(1))
        macros = [bs for bs in stations if bs.tier is BaseStationTier.MACRO]
        for bs in stations:
            if bs.tier is BaseStationTier.MACRO:
                continue
            assert any(
                m.position.distance_to(bs.position) <= m.radius_m + 1e-9 for m in macros
            )

    def test_fraction_validation(self):
        g = gtitm_topology(10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            place_base_stations(
                g, np.random.default_rng(1), macro_fraction=0.7, micro_fraction=0.7
            )


class TestAs3967:
    def test_published_scale(self):
        from repro.mec.topology import (
            AS3967_EDGE_COUNT,
            AS3967_NODE_COUNT,
            as3967_topology,
        )

        g = as3967_topology()
        assert g.number_of_nodes() == AS3967_NODE_COUNT == 79
        assert g.number_of_edges() == AS3967_EDGE_COUNT == 147

    def test_deterministic_and_connected(self):
        from repro.mec.topology import as3967_topology

        g1, g2 = as3967_topology(), as3967_topology()
        assert sorted(g1.edges) == sorted(g2.edges)
        assert nx.is_connected(g1)

    def test_distinct_from_as1755(self):
        from repro.mec.topology import as1755_topology, as3967_topology

        a, b = as1755_topology(), as3967_topology()
        assert a.number_of_nodes() != b.number_of_nodes()

    def test_heavy_tailed(self):
        from repro.mec.topology import as3967_topology

        g = as3967_topology()
        degrees = [d for _, d in g.degree()]
        assert max(degrees) >= 4 * (sum(degrees) / len(degrees))
