"""Tests for the burstiness statistics and workload validation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mec.requests import Request
from repro.workload import BurstyDemandModel, ConstantDemandModel
from repro.workload.stats import (
    BurstinessReport,
    autocorrelation,
    burstiness_score,
    describe_burstiness,
    index_of_dispersion,
    peak_to_mean,
)


class TestEstimators:
    def test_constant_series(self):
        series = np.full(50, 3.0)
        assert peak_to_mean(series) == pytest.approx(1.0)
        assert index_of_dispersion(series) == pytest.approx(0.0)
        assert autocorrelation(series) == 0.0  # zero-variance guard
        assert burstiness_score(series) == pytest.approx(-1.0)

    def test_single_spike(self):
        series = np.ones(100)
        series[50] = 101.0
        assert peak_to_mean(series) == pytest.approx(101.0 / 2.0)
        assert index_of_dispersion(series) > 1.0

    def test_poisson_dispersion_near_one(self):
        rng = np.random.default_rng(0)
        series = rng.poisson(5.0, size=20000).astype(float)
        assert index_of_dispersion(series) == pytest.approx(1.0, abs=0.1)

    def test_autocorrelation_of_episodes(self):
        # Long on/off blocks: strong lag-1 correlation.
        series = np.array(([0.0] * 10 + [5.0] * 10) * 10)
        assert autocorrelation(series, lag=1) > 0.7

    def test_autocorrelation_of_alternation_negative(self):
        series = np.array([0.0, 5.0] * 50)
        assert autocorrelation(series, lag=1) < -0.9

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), lag=0)
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), lag=10)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            peak_to_mean([1.0])
        with pytest.raises(ValueError):
            index_of_dispersion([-1.0, 2.0])
        with pytest.raises(ValueError):
            peak_to_mean(np.zeros(5))

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=50))
    def test_peak_to_mean_at_least_one(self, values):
        assert peak_to_mean(values) >= 1.0 - 1e-12

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=3, max_size=50))
    def test_burstiness_score_bounded(self, values):
        series = np.asarray(values)
        if series.std() + series.mean() == 0.0:  # all-(sub)zero: undefined
            with pytest.raises(ValueError):
                burstiness_score(values)
            return
        assert -1.0 <= burstiness_score(values) <= 1.0


class TestWorkloadIsActuallyBursty:
    def _series(self, **kwargs):
        requests = [
            Request(index=0, service_index=0, basic_demand_mb=1.0, hotspot_index=0)
        ]
        model = BurstyDemandModel(requests, np.random.default_rng(7), **kwargs)
        return model.matrix(1500)[:, 0]

    def test_default_workload_is_bursty(self):
        report = describe_burstiness(self._series())
        assert report.is_bursty(), report

    def test_bursts_are_episodic(self):
        """MMPP episodes + ramps leave positive lag-1 autocorrelation."""
        report = describe_burstiness(self._series())
        assert report.autocorrelation_lag1 > 0.2

    def test_constant_demand_is_not_bursty(self):
        requests = [Request(index=0, service_index=0, basic_demand_mb=1.0)]
        series = ConstantDemandModel(requests).matrix(100)[:, 0]
        report = describe_burstiness(series)
        assert not report.is_bursty()

    def test_higher_p_enter_means_more_dispersion(self):
        rare = describe_burstiness(self._series(p_enter=0.02))
        frequent = describe_burstiness(self._series(p_enter=0.3))
        # More bursting raises the mean faster than the variance at the
        # top end; the comparison that is monotone is peak-to-mean for
        # the *rare* case: rare bursts → sharper peaks relative to mean.
        assert rare.peak_to_mean > frequent.peak_to_mean

    def test_report_fields_finite(self):
        report = describe_burstiness(self._series())
        for value in (
            report.peak_to_mean,
            report.index_of_dispersion,
            report.autocorrelation_lag1,
            report.burstiness_score,
        ):
            assert np.isfinite(value)
