"""Tests for the claims scorecard (synthetic figures, no simulations)."""

import dataclasses

import numpy as np
import pytest

from repro.experiments import QUICK_PROFILE
from repro.experiments.claims import (
    CLAIMS,
    assert_hard_claims,
    check_figure,
    render_scorecard,
)
from repro.experiments.figures import FigureResult

TINY = dataclasses.replace(QUICK_PROFILE, horizon=8)


def fig3_like(ol=10.0, pri=13.0, greedy=16.0, ol_runtime=0.05):
    figure = FigureResult("fig3", "t", "slot", list(range(8)))
    for t in range(8):
        figure.add_point("delay_ms", "OL_GD", ol)
        figure.add_point("delay_ms", "Pri_GD", pri)
        figure.add_point("delay_ms", "Greedy_GD", greedy)
        figure.add_point("runtime_s", "OL_GD", ol_runtime)
        figure.add_point("runtime_s", "Pri_GD", 0.001)
        figure.add_point("runtime_s", "Greedy_GD", 0.001)
    return figure


def fig6_like(gan_mae=0.5, reg_mae=0.6, gan_delay=25.0, reg_delay=26.0):
    figure = FigureResult("fig6", "t", "slot", list(range(8)))
    for t in range(8):
        figure.add_point("delay_ms", "OL_GAN", gan_delay)
        figure.add_point("delay_ms", "OL_Reg", reg_delay)
        figure.add_point("runtime_s", "OL_GAN", 0.2)
        figure.add_point("runtime_s", "OL_Reg", 0.1)
        figure.add_point("prediction_mae_mb", "OL_GAN", gan_mae)
        figure.add_point("prediction_mae_mb", "OL_Reg", reg_mae)
    return figure


class TestRegistry:
    def test_every_figure_has_claims(self):
        covered = {claim.figure_id for claim in CLAIMS}
        assert covered == {"fig3", "fig4", "fig5", "fig6", "fig7"}

    def test_claim_ids_unique(self):
        ids = [claim.claim_id for claim in CLAIMS]
        assert len(ids) == len(set(ids))

    def test_unknown_figure_rejected(self):
        figure = FigureResult("fig99", "t", "x", [0.0])
        with pytest.raises(ValueError, match="no claims"):
            check_figure(figure, TINY)


class TestFig3Claims:
    def test_good_figure_passes_all(self):
        results = check_figure(fig3_like(), TINY)
        assert all(r.passed for r in results)
        assert_hard_claims(results)  # no raise

    def test_wrong_ordering_fails_hard(self):
        results = check_figure(fig3_like(ol=20.0), TINY)
        with pytest.raises(AssertionError, match="fig3-ordering"):
            assert_hard_claims(results)

    def test_small_gap_is_soft_miss_only(self):
        # OL_GD wins but by < 10%: the 15% claim soft-misses, ordering holds.
        results = check_figure(fig3_like(ol=12.5, pri=13.0, greedy=14.0), TINY)
        by_id = {r.claim_id: r for r in results}
        assert not by_id["fig3-15pct"].passed
        assert not by_id["fig3-15pct"].hard
        assert_hard_claims(results)  # soft misses never raise

    def test_slow_controller_fails_runtime_claim(self):
        results = check_figure(fig3_like(ol_runtime=2.0), TINY)
        with pytest.raises(AssertionError, match="fig3-runtime"):
            assert_hard_claims(results)


class TestFig6Claims:
    def test_good_figure_passes(self):
        assert_hard_claims(check_figure(fig6_like(), TINY))

    def test_worse_prediction_fails(self):
        results = check_figure(fig6_like(gan_mae=0.7, reg_mae=0.6), TINY)
        with pytest.raises(AssertionError, match="fig6-prediction"):
            assert_hard_claims(results)

    def test_much_worse_delay_fails(self):
        results = check_figure(fig6_like(gan_delay=30.0, reg_delay=26.0), TINY)
        with pytest.raises(AssertionError, match="fig6-delay"):
            assert_hard_claims(results)


class TestScorecard:
    def test_rendering_marks_verdicts(self):
        results = check_figure(fig3_like(ol=12.5, pri=13.0, greedy=14.0), TINY)
        text = render_scorecard(results)
        assert "PASS" in text
        assert "soft-miss" in text

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            render_scorecard([])
