"""Always-on tier-1 gate: zero unsuppressed static-analysis findings.

Unlike the ruff/mypy gates (``tests/test_lint.py`` / ``test_typecheck.py``)
this one has **no skip path**: the analyzer is pure stdlib and runs
in-process, so a clean tier-1 run always implies the repository satisfies
the invariants in ``docs/STATIC_ANALYSIS.md`` — seeded-randomness
threading, autograd ``.data`` safety, obs key hygiene, API hygiene.

New findings are fixed at the call site, suppressed inline with
``# repro: allow[RULE] -- <why>``, or (for a rule-rollout flag day)
grandfathered via ``python -m repro.analysis --update-baseline``.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SCANNED = ("src", "tests", "benchmarks")
BASELINE = REPO_ROOT / "analysis-baseline.json"


def test_repository_is_analysis_clean():
    # cache=True exercises the same incremental path the CLI uses; the
    # cache is content-hash keyed, so a stale hit would be a cache bug,
    # not a way to miss findings.
    findings = analyze_paths(
        [REPO_ROOT / target for target in SCANNED], root=REPO_ROOT, cache=True
    )
    fresh = Baseline.load(BASELINE).filter(findings)
    assert not fresh, (
        "unsuppressed static-analysis findings (fix, or suppress with "
        "'# repro: allow[RULE] -- why'; see docs/STATIC_ANALYSIS.md):\n"
        + "\n".join(finding.render() for finding in fresh)
    )


def test_baseline_is_empty():
    # The initial rollout fixed or justified-suppressed every finding;
    # keep it that way unless a rule rollout genuinely needs grandfathering
    # (in which case drop this test and document why in the baseline's
    # commit).
    assert len(Baseline.load(BASELINE)) == 0


def test_gate_scans_the_real_tree():
    # Belt and braces: the gate above is vacuous if the directories moved.
    for target in SCANNED:
        assert (REPO_ROOT / target).is_dir(), f"missing scan target {target}"
