"""Tests for module parameter serialization."""

import numpy as np
import pytest

from repro.gan import InfoRnnGan
from repro.nn.layers import BiLSTM, Dense, Sequential
from repro.nn.serialize import load_parameters, parameters_equal, save_parameters
from repro.nn.tensor import Tensor


def make_net(seed):
    rng = np.random.default_rng(seed)
    return Sequential(Dense(3, 8, rng, activation="tanh"), Dense(8, 2, rng))


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        source = make_net(0)
        target = make_net(1)  # different init
        assert not parameters_equal(source, target)
        count = save_parameters(source, tmp_path / "net.npz")
        assert count == 4
        loaded = load_parameters(target, tmp_path / "net.npz")
        assert loaded == 4
        assert parameters_equal(source, target)

    def test_round_trip_preserves_outputs(self, tmp_path):
        source, target = make_net(0), make_net(1)
        save_parameters(source, tmp_path / "net.npz")
        load_parameters(target, tmp_path / "net.npz")
        x = Tensor(np.random.default_rng(2).normal(size=(4, 3)))
        np.testing.assert_array_equal(source(x).data, target(x).data)

    def test_architecture_mismatch_count(self, tmp_path):
        save_parameters(make_net(0), tmp_path / "net.npz")
        rng = np.random.default_rng(3)
        other = Dense(3, 8, rng)
        with pytest.raises(ValueError, match="architecture mismatch"):
            load_parameters(other, tmp_path / "net.npz")

    def test_shape_mismatch(self, tmp_path):
        rng = np.random.default_rng(4)
        save_parameters(Sequential(Dense(3, 8, rng), Dense(8, 2, rng)),
                        tmp_path / "net.npz")
        other = Sequential(Dense(3, 9, rng), Dense(9, 2, rng))
        with pytest.raises(ValueError, match="shape mismatch"):
            load_parameters(other, tmp_path / "net.npz")

    def test_empty_module_rejected(self, tmp_path):
        class Empty(Sequential.__mro__[1]):  # Module
            pass

        with pytest.raises(ValueError):
            save_parameters(Empty(), tmp_path / "x.npz")

    def test_recurrent_round_trip(self, tmp_path):
        a = BiLSTM(2, 4, np.random.default_rng(5), num_layers=2)
        b = BiLSTM(2, 4, np.random.default_rng(6), num_layers=2)
        save_parameters(a, tmp_path / "bilstm.npz")
        load_parameters(b, tmp_path / "bilstm.npz")
        x = Tensor(np.random.default_rng(7).normal(size=(3, 2, 2)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_gan_components_round_trip(self, tmp_path):
        """A trained GAN's G/D/Q all persist and restore bit-exactly."""
        rng = np.random.default_rng(8)
        gan = InfoRnnGan(code_dim=3, rng=rng, hidden_size=6)
        real = np.abs(rng.normal(2, 1, size=(4, 4, 1)))
        cond = np.abs(rng.normal(2, 1, size=(4, 4, 1)))
        codes = np.eye(3)[rng.integers(0, 3, size=4)]
        for _ in range(3):
            gan.train_step(real, cond, codes)

        fresh = InfoRnnGan(code_dim=3, rng=np.random.default_rng(9), hidden_size=6)
        for name, module in [("g", "generator"), ("d", "discriminator"), ("q", "q_head")]:
            save_parameters(getattr(gan, module), tmp_path / f"{name}.npz")
            load_parameters(getattr(fresh, module), tmp_path / f"{name}.npz")
        assert parameters_equal(gan.generator, fresh.generator)
        assert parameters_equal(gan.discriminator, fresh.discriminator)
        assert parameters_equal(gan.q_head, fresh.q_head)
