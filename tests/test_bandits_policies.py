"""Tests for bandit policies and the regret tracker."""

import numpy as np
import pytest

from repro.bandits.arms import ArmStats
from repro.bandits.policies import (
    ConstantEpsilonGreedy,
    DecayingEpsilonGreedy,
    ThompsonSampling,
    Ucb1,
)
from repro.bandits.regret import RegretTracker


def run_bandit(policy, true_means, horizon, seed=0):
    """Simulate a cost bandit; returns (arm_pulls, cumulative_regret)."""
    rng = np.random.default_rng(seed)
    stats = ArmStats(len(true_means))
    tracker = RegretTracker()
    best = min(true_means)
    pulls = np.zeros(len(true_means), dtype=int)
    for t in range(1, horizon + 1):
        arm = policy.select(stats, t, rng)
        cost = max(rng.normal(true_means[arm], 0.5), 0.0)
        stats.observe(arm, cost)
        pulls[arm] += 1
        tracker.record(true_means[arm], best)
    return pulls, tracker


class TestPolicyBasics:
    @pytest.mark.parametrize(
        "policy",
        [
            ConstantEpsilonGreedy(0.25),
            DecayingEpsilonGreedy(0.5),
            Ucb1(scale=1.0),
            ThompsonSampling(),
        ],
        ids=["const-eps", "decay-eps", "ucb1", "thompson"],
    )
    def test_plays_every_arm_at_least_once(self, policy):
        pulls, _ = run_bandit(policy, [1.0, 2.0, 3.0, 4.0], horizon=40)
        assert np.all(pulls > 0)

    @pytest.mark.parametrize(
        "policy",
        [
            ConstantEpsilonGreedy(0.1),
            DecayingEpsilonGreedy(0.5),
            Ucb1(scale=1.0),
            ThompsonSampling(exploration_std=0.5),
        ],
        ids=["const-eps", "decay-eps", "ucb1", "thompson"],
    )
    def test_converges_to_best_arm(self, policy):
        true_means = [5.0, 1.0, 5.0, 5.0]
        pulls, _ = run_bandit(policy, true_means, horizon=600)
        assert pulls[1] == pulls.max()
        assert pulls[1] > 0.5 * pulls.sum()

    def test_allowed_restricts_selection(self):
        stats = ArmStats(5)
        rng = np.random.default_rng(0)
        policy = ConstantEpsilonGreedy(1.0)  # always explore
        for _ in range(50):
            arm = policy.select(stats, 1, rng, allowed=[1, 3])
            assert arm in (1, 3)
            stats.observe(arm, 1.0)

    def test_empty_allowed_rejected(self):
        stats = ArmStats(3)
        with pytest.raises(ValueError):
            ConstantEpsilonGreedy().select(stats, 1, np.random.default_rng(0), allowed=[])

    def test_out_of_range_allowed_rejected(self):
        stats = ArmStats(3)
        with pytest.raises(ValueError):
            Ucb1().select(stats, 1, np.random.default_rng(0), allowed=[7])

    def test_round_must_be_positive(self):
        stats = ArmStats(2)
        with pytest.raises(ValueError):
            Ucb1().select(stats, 0, np.random.default_rng(0))


class TestEpsilonSchedules:
    def test_constant_epsilon_validates(self):
        with pytest.raises(ValueError):
            ConstantEpsilonGreedy(1.5)

    def test_decaying_epsilon_validates(self):
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(0.0)
        with pytest.raises(ValueError):
            DecayingEpsilonGreedy(1.5)

    def test_decaying_explores_less_over_time(self):
        """Late rounds should exploit almost always."""
        policy = DecayingEpsilonGreedy(0.5)
        assert policy._epsilon(1) == 0.5
        assert policy._epsilon(1000) == 0.0005

    def test_decaying_regret_lower_than_constant_high_eps(self):
        means = [1.0, 3.0, 3.0, 3.0]
        _, constant = run_bandit(ConstantEpsilonGreedy(0.5), means, 800, seed=1)
        _, decaying = run_bandit(DecayingEpsilonGreedy(0.5), means, 800, seed=1)
        assert decaying.total_regret < constant.total_regret


class TestRegretTracker:
    def test_series_shapes(self):
        tracker = RegretTracker()
        tracker.record(5.0, 3.0)
        tracker.record(4.0, 3.0)
        np.testing.assert_array_equal(tracker.per_slot_regret, [2.0, 1.0])
        np.testing.assert_array_equal(tracker.cumulative_regret, [2.0, 3.0])
        assert tracker.total_regret == 3.0
        assert tracker.average_regret() == 1.5
        assert tracker.n_slots == 2

    def test_empty_tracker(self):
        tracker = RegretTracker()
        assert tracker.total_regret == 0.0
        assert tracker.average_regret() == 0.0
        assert tracker.cumulative_regret.size == 0

    def test_negative_costs_rejected(self):
        tracker = RegretTracker()
        with pytest.raises(ValueError):
            tracker.record(-1.0, 0.0)

    def test_is_sublinear_for_learning_curve(self):
        tracker = RegretTracker()
        # Per-slot regret decaying like 1/t: clearly sublinear growth.
        for t in range(1, 101):
            tracker.record(3.0 + 1.0 / t, 3.0)
        assert tracker.is_sublinear(window=10)

    def test_is_sublinear_false_for_worsening_curve(self):
        tracker = RegretTracker()
        for t in range(1, 101):
            tracker.record(3.0 + t * 0.01, 3.0)
        assert not tracker.is_sublinear(window=10)

    def test_is_sublinear_needs_enough_slots(self):
        tracker = RegretTracker()
        tracker.record(1.0, 1.0)
        with pytest.raises(ValueError):
            tracker.is_sublinear(window=10)

    def test_policies_achieve_sublinear_regret(self):
        """End-to-end: every learning policy beats linear regret growth."""
        means = [1.0, 2.5, 2.5, 4.0]
        for policy in [DecayingEpsilonGreedy(0.5), Ucb1(), ThompsonSampling()]:
            _, tracker = run_bandit(policy, means, horizon=1000, seed=3)
            assert tracker.is_sublinear(window=50), type(policy).__name__
