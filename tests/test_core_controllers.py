"""Tests for OL_GD, Greedy_GD, Pri_GD, OL_Reg, OL_GAN and theory bounds."""

import math

import numpy as np
import pytest

from repro.core import (
    ExplorationConfig,
    GreedyController,
    OlGanController,
    OlGdController,
    OlRegController,
    PriorityController,
    lemma1_gap,
    theorem1_regret_bound,
)
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, ConstantDemandModel


def build_setting(n_stations=12, n_services=3, n_requests=8, seed=7, hotspots=None):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, n_services, rngs)
    rng = rngs.get("requests")
    requests = []
    for i in range(n_requests):
        anchor = network.stations[int(rng.integers(n_stations))]
        requests.append(
            Request(
                index=i,
                service_index=int(rng.integers(n_services)),
                basic_demand_mb=float(rng.uniform(1.0, 2.5)),
                location=anchor.position,
                hotspot_index=None if hotspots is None else i % hotspots,
            )
        )
    return rngs, network, requests


class TestExplorationConfig:
    def test_decaying_schedule(self):
        config = ExplorationConfig(schedule="decaying", c=0.5)
        assert config.epsilon(0) == 0.5
        assert config.epsilon(9) == pytest.approx(0.05)

    def test_constant_schedule(self):
        config = ExplorationConfig(schedule="constant", c=0.25)
        assert config.epsilon(0) == config.epsilon(99) == 0.25

    def test_paper_literal(self):
        config = ExplorationConfig.paper_literal()
        assert config.schedule == "constant"
        assert config.c == 0.25
        assert config.scope == "slot"

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplorationConfig(schedule="bogus")
        with pytest.raises(ValueError):
            ExplorationConfig(scope="bogus")
        with pytest.raises(ValueError):
            ExplorationConfig(c=1.5)
        with pytest.raises(ValueError):
            ExplorationConfig(schedule="decaying", c=0.0)


class TestOlGd:
    def test_decide_returns_feasible_assignment(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        assert assignment.n_requests == len(requests)
        loads = assignment.loads_mhz(demands, network.c_unit_mhz, network.n_stations)
        assert np.all(loads <= network.capacities_mhz + 1e-6)

    def test_requires_demands(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        with pytest.raises(ValueError, match="given-demands"):
            controller.decide(0, None)

    def test_observe_updates_only_played_arms(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        d_t = network.delays.sample(0)
        controller.observe(0, demands, d_t, assignment)
        played = set(assignment.stations_used().tolist())
        for i in range(network.n_stations):
            if i in played:
                assert controller.arms.counts[i] >= 1
            else:
                assert controller.arms.counts[i] == 0

    def test_learning_improves_station_choice(self):
        """After many slots, OL_GD's mean estimates of played stations
        should be close to the true means (the learning actually works)."""
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        model = ConstantDemandModel(requests)
        run_simulation(network, model, controller, horizon=60)
        true = network.delays.true_means
        played = controller.arms.counts >= 5
        assert played.sum() >= 2  # the learner may converge onto few stations
        estimated = controller.arms.means[played]
        np.testing.assert_allclose(estimated, true[played], rtol=0.25)

    def test_fractional_solution_cached_for_inspection(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        controller.decide(0, demands)
        assert controller.last_fractional.shape == (len(requests), network.n_stations)

    def test_gamma_validated(self):
        rngs, network, requests = build_setting()
        with pytest.raises(ValueError):
            OlGdController(network, requests, rngs.get("ctrl"), gamma=1.5)


class TestBaselines:
    def test_greedy_respects_capacity_when_possible(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        loads = assignment.loads_mhz(demands, network.c_unit_mhz, network.n_stations)
        assert np.all(loads <= network.capacities_mhz + 1e-6)

    def test_greedy_requires_demands(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        with pytest.raises(ValueError):
            controller.decide(0, None)

    def test_greedy_reuses_cached_instances(self):
        """Requests of one service should co-locate to amortise d_ins."""
        rngs, network, requests = build_setting(n_requests=6)
        same_service = [
            Request(index=i, service_index=0, basic_demand_mb=0.5)
            for i in range(6)
        ]
        controller = GreedyController(network, same_service, rngs.get("ctrl"))
        assignment = controller.decide(0, np.full(6, 0.5))
        # All six fit easily in one station; instantiation pushes them together.
        assert len(set(assignment.station_of.tolist())) == 1

    def test_priority_orders_by_coverage(self):
        rngs, network, requests = build_setting()
        controller = PriorityController(network, requests, rngs.get("ctrl"))
        priorities = controller.priorities
        assert priorities.shape == (len(requests),)
        # Users placed at station positions must be covered at least once.
        assert np.all(priorities >= 1)

    def test_priority_prefers_covering_station(self):
        rngs, network, requests = build_setting()
        controller = PriorityController(network, requests, rngs.get("ctrl"))
        demands = np.full(len(requests), 0.01)  # capacity never binds
        assignment = controller.decide(0, demands)
        for l, request in enumerate(requests):
            covering = network.covering_stations(request.location)
            assert assignment.station_of[l] in covering

    def test_priority_requires_demands(self):
        rngs, network, requests = build_setting()
        controller = PriorityController(network, requests, rngs.get("ctrl"))
        with pytest.raises(ValueError):
            controller.decide(0, None)


class TestPredictiveControllers:
    def test_ol_reg_rejects_given_demands(self):
        rngs, network, requests = build_setting(hotspots=2)
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        with pytest.raises(ValueError, match="unknown-demands"):
            controller.decide(0, np.ones(len(requests)))

    def test_ol_reg_first_prediction_is_basic_demand(self):
        rngs, network, requests = build_setting(hotspots=2)
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        controller.decide(0, None)
        np.testing.assert_array_equal(
            controller.last_prediction,
            np.array([r.basic_demand_mb for r in requests]),
        )

    def test_ol_reg_prediction_floors_at_basic(self):
        rngs, network, requests = build_setting(hotspots=2)
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        model = BurstyDemandModel(requests, rngs.get("demand"))
        run_simulation(network, model, controller, horizon=5, demands_known=False)
        basic = np.array([r.basic_demand_mb for r in requests])
        assert np.all(controller.last_prediction >= basic - 1e-12)

    def test_ol_gan_runs_end_to_end(self):
        rngs, network, requests = build_setting(hotspots=2)
        controller = OlGanController(
            network,
            requests,
            rngs.get("ctrl"),
            n_hotspots=2,
            online_steps=0,  # keep the test fast
            window=4,
            hidden_size=6,
        )
        model = BurstyDemandModel(requests, rngs.get("demand"))
        result = run_simulation(
            network, model, controller, horizon=4, demands_known=False
        )
        assert result.horizon == 4
        assert controller.predictor.n_observed == 4

    def test_ol_gan_rejects_given_demands(self):
        rngs, network, requests = build_setting(hotspots=2)
        controller = OlGanController(
            network, requests, rngs.get("ctrl"), n_hotspots=2,
            online_steps=0, hidden_size=6,
        )
        with pytest.raises(ValueError, match="unknown-demands"):
            controller.decide(0, np.ones(len(requests)))


class TestTheory:
    def test_lemma1_gap_positive(self):
        sigma = lemma1_gap(
            n_requests=10, d_max_ms=50.0, d_min_ms=5.0, delta_ins_ms=8.0, gamma=0.1
        )
        assert sigma > 0

    def test_lemma1_case1_dominates_for_small_gamma(self):
        # gamma -> 0: case1 ~ |R| * (d_max + delta), case2 ~ delta.
        sigma = lemma1_gap(10, 50.0, 5.0, 8.0, gamma=0.001)
        assert sigma == pytest.approx(10 * (50.0 - 0.001 * 5.0 + 8.0))

    def test_lemma1_validation(self):
        with pytest.raises(ValueError):
            lemma1_gap(10, 5.0, 50.0, 8.0, 0.1)  # d_min > d_max
        with pytest.raises(ValueError):
            lemma1_gap(10, 50.0, 5.0, -1.0, 0.1)

    def test_theorem1_bound_grows_logarithmically(self):
        sigma = 100.0
        b1 = theorem1_regret_bound(sigma, horizon=100, c=0.5)
        b2 = theorem1_regret_bound(sigma, horizon=10_000, c=0.5)
        assert b2 > b1 > 0
        # Log growth: squaring the horizon roughly doubles the bound.
        assert b2 < 3.0 * b1

    def test_theorem1_zero_inside_transient(self):
        # e^(1/0.2) + 1 ~ 149.4: horizon 100 is inside the transient.
        assert theorem1_regret_bound(100.0, horizon=100, c=0.2) == 0.0

    def test_theorem1_validation(self):
        with pytest.raises(ValueError):
            theorem1_regret_bound(100.0, horizon=100, c=0.0)
        with pytest.raises(ValueError):
            theorem1_regret_bound(-1.0, horizon=100, c=0.5)
