"""Tests for hidden-feature encodings and the synthetic NYC Wi-Fi trace."""

import numpy as np
import pytest

from repro.mec.requests import Request
from repro.mec.services import ServiceCatalog
from repro.workload.features import HiddenFeatures, encode_request_locations, one_hot
from repro.workload.trace import (
    BOROUGHS,
    GROUP_TAGS,
    WifiTrace,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)


class TestOneHot:
    def test_basic(self):
        np.testing.assert_array_equal(one_hot(1, 3), [0.0, 1.0, 0.0])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(3, 3)

    def test_negative_index(self):
        with pytest.raises(ValueError):
            one_hot(-1, 3)


class TestEncodeRequestLocations:
    def _requests(self):
        return [
            Request(index=0, service_index=0, basic_demand_mb=1.0, hotspot_index=0),
            Request(index=1, service_index=0, basic_demand_mb=1.0, hotspot_index=2),
            Request(index=2, service_index=0, basic_demand_mb=1.0, hotspot_index=None),
        ]

    def test_shape_and_rows(self):
        codes = encode_request_locations(self._requests(), n_hotspots=3)
        assert codes.shape == (3, 4)
        np.testing.assert_array_equal(codes[0], [1, 0, 0, 0])
        np.testing.assert_array_equal(codes[1], [0, 0, 1, 0])
        np.testing.assert_array_equal(codes[2], [0, 0, 0, 1])  # "no hotspot"

    def test_each_row_sums_to_one(self):
        codes = encode_request_locations(self._requests(), n_hotspots=5)
        np.testing.assert_array_equal(codes.sum(axis=1), np.ones(3))

    def test_out_of_range_hotspot_raises(self):
        requests = [
            Request(index=0, service_index=0, basic_demand_mb=1.0, hotspot_index=7)
        ]
        with pytest.raises(ValueError):
            encode_request_locations(requests, n_hotspots=3)

    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            encode_request_locations([], n_hotspots=3)


class TestHiddenFeatures:
    def test_as_code_concatenates(self):
        feature = HiddenFeatures(user_id=0, hotspot_index=1, group_tag="tourist")
        code = feature.as_code(n_hotspots=2, group_tags=["tourist", "commuter"])
        np.testing.assert_array_equal(code, [0, 1, 0, 1, 0])

    def test_no_hotspot_coding(self):
        feature = HiddenFeatures(user_id=0, hotspot_index=None, group_tag="a")
        code = feature.as_code(n_hotspots=2, group_tags=["a"])
        np.testing.assert_array_equal(code, [0, 0, 1, 1])

    def test_unknown_tag_raises(self):
        feature = HiddenFeatures(user_id=0, hotspot_index=0, group_tag="alien")
        with pytest.raises(ValueError, match="vocabulary"):
            feature.as_code(n_hotspots=2, group_tags=["tourist"])

    def test_out_of_range_hotspot_raises(self):
        feature = HiddenFeatures(user_id=0, hotspot_index=9, group_tag="a")
        with pytest.raises(ValueError):
            feature.as_code(n_hotspots=2, group_tags=["a"])


class TestSynthesizeTrace:
    def test_sizes(self):
        trace = synthesize_nyc_wifi_trace(20, 100, np.random.default_rng(0))
        assert trace.n_hotspots == 20
        assert trace.n_users == 100

    def test_boroughs_valid(self):
        trace = synthesize_nyc_wifi_trace(50, 10, np.random.default_rng(1))
        assert all(h.borough in BOROUGHS for h in trace.hotspots)

    def test_group_tags_valid(self):
        trace = synthesize_nyc_wifi_trace(10, 80, np.random.default_rng(2))
        assert all(u.group_tag in GROUP_TAGS for u in trace.users)

    def test_users_reference_valid_hotspots(self):
        trace = synthesize_nyc_wifi_trace(15, 60, np.random.default_rng(3))
        assert all(0 <= u.hotspot_index < 15 for u in trace.users)

    def test_popularity_skew(self):
        """A few hotspots should attract a disproportionate share of users."""
        trace = synthesize_nyc_wifi_trace(30, 600, np.random.default_rng(4))
        counts = sorted(
            (len(trace.users_at(i)) for i in range(30)), reverse=True
        )
        top3 = sum(counts[:3])
        assert top3 > 0.25 * 600

    def test_manhattan_densest(self):
        trace = synthesize_nyc_wifi_trace(300, 10, np.random.default_rng(5))
        histogram = trace.borough_histogram()
        assert histogram.get("manhattan", 0) == max(histogram.values())

    def test_reproducible(self):
        a = synthesize_nyc_wifi_trace(10, 20, np.random.default_rng(6))
        b = synthesize_nyc_wifi_trace(10, 20, np.random.default_rng(6))
        assert a.hotspots == b.hotspots
        assert a.users == b.users

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            synthesize_nyc_wifi_trace(0, 10, np.random.default_rng(0))
        with pytest.raises(ValueError):
            synthesize_nyc_wifi_trace(10, 10, np.random.default_rng(0),
                                      base_demand_range_mb=(5.0, 1.0))


class TestCsvRoundTrip:
    def test_round_trip(self, tmp_path):
        trace = synthesize_nyc_wifi_trace(8, 25, np.random.default_rng(7))
        hpath, upath = tmp_path / "hotspots.csv", tmp_path / "users.csv"
        trace.to_csv(hpath, upath)
        loaded = WifiTrace.from_csv(hpath, upath)
        assert loaded.hotspots == trace.hotspots
        assert loaded.users == trace.users


class TestWifiTraceValidation:
    def test_empty_hotspots_rejected(self):
        with pytest.raises(ValueError):
            WifiTrace([], [])

    def test_out_of_order_hotspot_indices_rejected(self):
        trace = synthesize_nyc_wifi_trace(3, 2, np.random.default_rng(0))
        shuffled = [trace.hotspots[1], trace.hotspots[0], trace.hotspots[2]]
        with pytest.raises(ValueError, match="order"):
            WifiTrace(shuffled, trace.users)

    def test_dangling_user_rejected(self):
        trace = synthesize_nyc_wifi_trace(3, 2, np.random.default_rng(0))
        bad_user = trace.users[0].__class__(
            user_id=99,
            hotspot_index=50,
            group_tag="tourist",
            session_start_slot=0,
            session_length_slots=1,
            base_demand_mb=1.0,
        )
        with pytest.raises(ValueError, match="hotspot"):
            WifiTrace(trace.hotspots, [bad_user])


class TestRequestsFromTrace:
    def test_one_request_per_user(self):
        rng = np.random.default_rng(8)
        trace = synthesize_nyc_wifi_trace(10, 40, rng)
        services = ServiceCatalog.generate(4, 5, rng)
        requests = requests_from_trace(trace, services, rng)
        assert len(requests) == 40
        assert [r.index for r in requests] == list(range(40))

    def test_services_within_catalog(self):
        rng = np.random.default_rng(9)
        trace = synthesize_nyc_wifi_trace(10, 40, rng)
        services = ServiceCatalog.generate(3, 5, rng)
        requests = requests_from_trace(trace, services, rng)
        assert all(0 <= r.service_index < 3 for r in requests)

    def test_users_near_their_hotspot(self):
        rng = np.random.default_rng(10)
        trace = synthesize_nyc_wifi_trace(5, 30, rng)
        services = ServiceCatalog.generate(2, 5, rng)
        requests = requests_from_trace(trace, services, rng, user_spread_m=20.0)
        for r in requests:
            hotspot = trace.hotspots[r.hotspot_index]
            assert hotspot.location.distance_to(r.location) <= 20.0 + 1e-9

    def test_group_tags_carried_over(self):
        rng = np.random.default_rng(11)
        trace = synthesize_nyc_wifi_trace(5, 30, rng)
        services = ServiceCatalog.generate(2, 5, rng)
        requests = requests_from_trace(trace, services, rng)
        for r, u in zip(requests, trace.users):
            assert r.group_tag == u.group_tag
            assert r.basic_demand_mb == u.base_demand_mb

    def test_negative_spread_rejected(self):
        rng = np.random.default_rng(12)
        trace = synthesize_nyc_wifi_trace(5, 5, rng)
        services = ServiceCatalog.generate(2, 5, rng)
        with pytest.raises(ValueError):
            requests_from_trace(trace, services, rng, user_spread_m=-1.0)
