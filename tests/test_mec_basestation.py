"""Tests for base stations and tier profiles."""

import numpy as np
import pytest

from repro.mec.basestation import TIER_PROFILES, BaseStation, BaseStationTier
from repro.mec.geometry import Point


def make_station(tier=BaseStationTier.MICRO, index=0, capacity=6000.0):
    return BaseStation(
        index=index,
        tier=tier,
        position=Point(0.0, 0.0),
        capacity_mhz=capacity,
        bandwidth_mbps=300.0,
    )


class TestTierProfiles:
    def test_all_tiers_present(self):
        assert set(TIER_PROFILES) == set(BaseStationTier)

    def test_paper_capacity_bands(self):
        assert TIER_PROFILES[BaseStationTier.MACRO].capacity_mhz == (8000.0, 16000.0)
        assert TIER_PROFILES[BaseStationTier.MICRO].capacity_mhz == (5000.0, 10000.0)
        assert TIER_PROFILES[BaseStationTier.FEMTO].capacity_mhz == (1000.0, 2000.0)

    def test_paper_radii(self):
        assert TIER_PROFILES[BaseStationTier.MACRO].radius_m == 100.0
        assert TIER_PROFILES[BaseStationTier.MICRO].radius_m == 30.0
        assert TIER_PROFILES[BaseStationTier.FEMTO].radius_m == 15.0

    def test_paper_transmit_powers(self):
        assert TIER_PROFILES[BaseStationTier.MACRO].transmit_power_w == 40.0
        assert TIER_PROFILES[BaseStationTier.MICRO].transmit_power_w == 5.0
        assert TIER_PROFILES[BaseStationTier.FEMTO].transmit_power_w == 0.1

    def test_paper_delay_bands(self):
        assert TIER_PROFILES[BaseStationTier.MACRO].unit_delay_ms == (30.0, 50.0)
        assert TIER_PROFILES[BaseStationTier.MICRO].unit_delay_ms == (10.0, 20.0)
        assert TIER_PROFILES[BaseStationTier.FEMTO].unit_delay_ms == (5.0, 10.0)

    def test_sample_capacity_within_band(self):
        rng = np.random.default_rng(0)
        profile = TIER_PROFILES[BaseStationTier.MACRO]
        for _ in range(100):
            c = profile.sample_capacity(rng)
            assert 8000.0 <= c <= 16000.0

    def test_sample_bandwidth_within_band(self):
        rng = np.random.default_rng(0)
        profile = TIER_PROFILES[BaseStationTier.MICRO]
        for _ in range(100):
            b = profile.sample_bandwidth(rng)
            assert 200.0 <= b <= 500.0


class TestBaseStation:
    def test_covers_inside_radius(self):
        bs = make_station(tier=BaseStationTier.FEMTO)
        assert bs.covers(Point(10.0, 0.0))
        assert not bs.covers(Point(16.0, 0.0))

    def test_covers_at_exact_radius(self):
        bs = make_station(tier=BaseStationTier.MICRO)
        assert bs.covers(Point(30.0, 0.0))

    def test_cache_service_idempotent(self):
        bs = make_station()
        assert bs.cache_service(2) is True  # newly instantiated
        assert bs.cache_service(2) is False  # already there
        assert bs.has_service(2)

    def test_evict_service(self):
        bs = make_station()
        bs.cache_service(1)
        assert bs.evict_service(1) is True
        assert bs.evict_service(1) is False
        assert not bs.has_service(1)

    def test_radio_matches_tier_power(self):
        bs = make_station(tier=BaseStationTier.MACRO)
        assert bs.radio.transmit_power_w == 40.0

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            make_station(index=-1)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            make_station(capacity=0.0)
