"""Checkpoint/resume bit-identity across the whole controller registry.

The acceptance bar of the subsystem: interrupt any registered controller
mid-horizon, resume from the snapshot over a same-seeded world, and the
full metric series must equal the uninterrupted run's — delays, churn,
cache sizes, load fractions and regret inputs exactly, timing columns in
length (wall-clock is re-measured).  Plus: resumable sweeps and bounded
crash retries in :class:`repro.sim.ParallelRunner`.
"""

import os

import numpy as np
import pytest

from repro import obs
from repro.core import controller_names, make_controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import CheckpointConfig, CheckpointError, run_repetitions, run_simulation
from repro.state import SweepManifest, result_path
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, ConstantDemandModel

HORIZON = 8
CUT = 4  # interrupt after this many slots (= snapshot cadence)

#: Tiny configurations so the full registry — including the GAN — runs in
#: test time.  Keys missing here construct with library defaults.
CONTROLLER_OPTIONS = {
    "OL_GAN": {"n_hotspots": 2, "window": 3, "hidden_size": 4},
}

#: The §V predictive algorithms forecast internally; the engine must pass
#: demands=None to them (they raise otherwise).
PREDICTIVE = {"OL_GAN", "OL_Reg"}


def build_world(seed, name):
    """Fresh same-seeded world + controller (slot-keyed, so rebuildable)."""
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
            hotspot_index=i % 2,
        )
        for i in range(6)
    ]
    model = BurstyDemandModel(requests, rngs.get("demand"))
    controller = make_controller(
        name, network, requests, rngs.get("ctrl"),
        **CONTROLLER_OPTIONS.get(name, {})
    )
    return network, model, controller


class TestResumeBitIdentity:
    @pytest.mark.parametrize("name", controller_names())
    def test_resume_equals_uninterrupted_run(self, name, tmp_path):
        known = name not in PREDICTIVE
        network, model, controller = build_world(11, name)
        full = run_simulation(
            network, model, controller, horizon=HORIZON, demands_known=known
        )

        config = CheckpointConfig(
            directory=tmp_path, every_n_slots=CUT, resume=True
        )
        network, model, controller = build_world(11, name)
        partial = run_simulation(
            network, model, controller, horizon=CUT,
            demands_known=known, checkpoint=config,
        )
        assert config.path_for(controller.name).exists()
        np.testing.assert_array_equal(partial.delays_ms, full.delays_ms[:CUT])

        network, model, controller = build_world(11, name)
        resumed = run_simulation(
            network, model, controller, horizon=HORIZON,
            demands_known=known, checkpoint=config,
        )

        assert resumed.horizon == full.horizon == HORIZON
        np.testing.assert_array_equal(resumed.delays_ms, full.delays_ms)
        np.testing.assert_array_equal(resumed.cache_churn, full.cache_churn)
        np.testing.assert_array_equal(
            resumed.max_load_fractions, full.max_load_fractions
        )
        np.testing.assert_array_equal(
            resumed.prediction_maes, full.prediction_maes
        )
        assert [r.n_cached_instances for r in resumed.records] == [
            r.n_cached_instances for r in full.records
        ]
        assert resumed.initial_instantiations == full.initial_instantiations
        # Wall-clock columns are re-measured on resume: length only.
        assert resumed.decision_seconds.shape == full.decision_seconds.shape

    def test_wrong_controller_snapshot_rejected(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_n_slots=CUT, resume=True)
        network, model, controller = build_world(11, "OL_GD")
        run_simulation(network, model, controller, horizon=CUT, checkpoint=config)
        snapshot = config.path_for("OL_GD")
        snapshot.rename(config.path_for("Greedy_GD"))
        network, model, controller = build_world(11, "Greedy_GD")
        with pytest.raises(CheckpointError, match="OL_GD"):
            run_simulation(
                network, model, controller, horizon=HORIZON, checkpoint=config
            )

    def test_foreign_world_rejected(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_n_slots=CUT, resume=True)
        network, model, controller = build_world(11, "OL_GD")
        run_simulation(network, model, controller, horizon=CUT, checkpoint=config)
        network, model, controller = build_world(12, "OL_GD")  # different seed
        with pytest.raises(ValueError):
            run_simulation(
                network, model, controller, horizon=HORIZON, checkpoint=config
            )

    def test_resume_needs_longer_horizon(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_n_slots=CUT, resume=True)
        network, model, controller = build_world(11, "Greedy_GD")
        run_simulation(network, model, controller, horizon=CUT, checkpoint=config)
        network, model, controller = build_world(11, "Greedy_GD")
        with pytest.raises(CheckpointError, match="already covers"):
            run_simulation(
                network, model, controller, horizon=CUT, checkpoint=config
            )

    def test_without_resume_existing_snapshot_ignored(self, tmp_path):
        write = CheckpointConfig(directory=tmp_path, every_n_slots=CUT)
        network, model, controller = build_world(11, "Greedy_GD")
        run_simulation(network, model, controller, horizon=CUT, checkpoint=write)
        network, model, controller = build_world(11, "Greedy_GD")
        fresh = run_simulation(
            network, model, controller, horizon=HORIZON, checkpoint=write
        )
        assert fresh.records[0].slot == 0 and fresh.horizon == HORIZON

    def test_save_and_load_are_counted(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_n_slots=2, resume=True)
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            network, model, controller = build_world(11, "Greedy_GD")
            run_simulation(
                network, model, controller, horizon=CUT, checkpoint=config
            )
            network, model, controller = build_world(11, "Greedy_GD")
            run_simulation(
                network, model, controller, horizon=HORIZON, checkpoint=config
            )
        assert registry.counter("state.load") == 1
        assert registry.counter("state.save") == 4  # slots 2,4 then 6,8


# --------------------------------------------------------------------- #
# Sweep resume + crash retries (module-level builders: picklable)
# --------------------------------------------------------------------- #


def sweep_build(rngs):
    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(5)
    ]
    return network, ConstantDemandModel(requests), [
        make_controller("OL_GD", network, requests, rngs.get("ol")),
        make_controller("Greedy_GD", network, requests, rngs.get("gr")),
    ]


class CrashOnce:
    """A builder that raises exactly once (sentinel file marks the shot)."""

    def __init__(self, sentinel):
        self.sentinel = str(sentinel)

    def __call__(self, rngs):
        world = sweep_build(rngs)
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("tripped")
            raise RuntimeError("injected one-shot crash")
        return world


class DieOnce:
    """A builder that kills its worker process exactly once (hard crash)."""

    def __init__(self, sentinel):
        self.sentinel = str(sentinel)

    def __call__(self, rngs):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("tripped")
            os._exit(1)  # no traceback: the pool sees a dead worker
        return sweep_build(rngs)


DETERMINISTIC = ("mean_delay_ms", "total_churn")


def assert_same_summaries(a, b):
    assert set(a.summaries) == set(b.summaries)
    for name in a.summaries:
        for metric in DETERMINISTIC:
            assert a.summary(name, metric).values == b.summary(name, metric).values


class TestSweepResume:
    def test_interrupted_sweep_completes_missing_items_only(self, tmp_path):
        base = run_repetitions(sweep_build, seed=7, repetitions=3, horizon=6)
        sweep_dir = tmp_path / "sweep"
        run_repetitions(
            sweep_build, seed=7, repetitions=3, horizon=6,
            checkpoint_dir=sweep_dir,
        )
        # Simulate the interruption: two items never completed.
        result_path(sweep_dir, 1, 0).unlink()
        result_path(sweep_dir, 2, 1).unlink()
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            resumed = run_repetitions(
                sweep_build, seed=7, repetitions=3, horizon=6,
                checkpoint_dir=sweep_dir, resume=True, collect_metrics=False,
            )
        assert_same_summaries(base, resumed)
        # Only the 2 missing items were executed: 2 items x 6 slots.
        assert registry.counter("sim.slots") == 12
        assert registry.counter("state.load") == 4
        manifest = SweepManifest.read(sweep_dir)
        assert manifest.controllers == ("OL_GD", "Greedy_GD")

    def test_resume_refuses_foreign_sweep(self, tmp_path):
        run_repetitions(
            sweep_build, seed=7, repetitions=2, horizon=6,
            checkpoint_dir=tmp_path,
        )
        with pytest.raises(CheckpointError, match="different sweep"):
            run_repetitions(
                sweep_build, seed=8, repetitions=2, horizon=6,
                checkpoint_dir=tmp_path, resume=True,
            )

    def test_serial_one_shot_crash_retried(self, tmp_path):
        base = run_repetitions(sweep_build, seed=7, repetitions=3, horizon=6)
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            retried = run_repetitions(
                CrashOnce(tmp_path / "shot"), seed=7, repetitions=3, horizon=6,
                max_retries=1, collect_metrics=False,
            )
        assert retried.n_failed == 0
        assert_same_summaries(base, retried)
        assert registry.counter("sim.retries") == 1

    def test_without_retries_crash_stays_a_failure(self, tmp_path):
        study = run_repetitions(
            CrashOnce(tmp_path / "shot"), seed=7, repetitions=3, horizon=6
        )
        assert study.n_failed == 1
        assert "injected one-shot crash" in study.failures[0].error

    def test_pool_hard_worker_death_retried_matches_serial(self, tmp_path):
        base = run_repetitions(sweep_build, seed=7, repetitions=2, horizon=4)
        retried = run_repetitions(
            DieOnce(tmp_path / "shot"), seed=7, repetitions=2, horizon=4,
            n_jobs=2, n_controllers=2, max_retries=2,
        )
        assert retried.n_failed == 0
        assert_same_summaries(base, retried)

    def test_slot_checkpoints_cleaned_after_completion(self, tmp_path):
        run_repetitions(
            sweep_build, seed=7, repetitions=1, horizon=6,
            checkpoint_dir=tmp_path, checkpoint_every=2,
        )
        assert list((tmp_path / "slots").rglob("*.npz")) == []

    def test_checkpoint_every_requires_directory(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_repetitions(
                sweep_build, seed=7, repetitions=1, horizon=6,
                checkpoint_every=2,
            )
