"""Tests for the generic registry and its domain instances.

The controller registry's behaviour (names, identity enforcement) is
covered in test_core_controllers; here the focus is the generalised
machinery — :class:`repro.utils.registry.Registry` — and the new
topology / workload / predictor registries built on it.
"""

import numpy as np
import pytest

from repro.core import CONTROLLERS, make_controller
from repro.mec import TOPOLOGIES, make_topology, topology_names
from repro.prediction import PREDICTORS, make_predictor, predictor_names
from repro.utils.registry import Registry
from repro.utils.seeding import RngRegistry
from repro.workload import (
    WORKLOADS,
    BurstyDemandModel,
    ConstantDemandModel,
    make_workload,
    workload_names,
)
from repro.mec.requests import Request


def _requests(n=6, seed=3):
    rng = np.random.default_rng(seed)
    return [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(n)
    ]


class _Thing:
    def __init__(self, name):
        self.thing_name = name


class TestGenericRegistry:
    def _registry(self):
        return Registry("thing", identity=lambda t: t.thing_name)

    def test_register_and_make(self):
        registry = self._registry()
        registry.register("a", lambda: _Thing("a"))
        assert "a" in registry
        assert registry.names() == ("a",)
        assert registry.make("a").thing_name == "a"

    def test_names_sorted(self):
        registry = self._registry()
        for name in ("zeta", "alpha", "mid"):
            registry.register(name, lambda n=name: _Thing(n))
        assert registry.names() == ("alpha", "mid", "zeta")

    def test_duplicate_and_empty_names_rejected(self):
        registry = self._registry()
        registry.register("a", lambda: _Thing("a"))
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", lambda: _Thing("a"))
        with pytest.raises(ValueError, match="non-empty"):
            registry.register("", lambda: _Thing(""))

    def test_unknown_name_lists_registered(self):
        registry = self._registry()
        registry.register("a", lambda: _Thing("a"))
        with pytest.raises(KeyError, match="unknown thing 'b'; registered: a"):
            registry.make("b")

    def test_identity_enforced(self):
        registry = self._registry()
        registry.register("good", lambda: _Thing("evil"))
        with pytest.raises(ValueError, match="identities"):
            registry.make("good")

    def test_factory_lookup(self):
        registry = self._registry()
        factory = lambda: _Thing("a")  # noqa: E731
        registry.register("a", factory)
        assert registry.factory("a") is factory


class TestTopologyRegistry:
    def test_names(self):
        assert "gtitm" in topology_names()
        assert "as1755" in topology_names()
        assert "gtitm" in TOPOLOGIES

    def test_gtitm_default_and_explicit_size(self):
        network = make_topology("gtitm", RngRegistry(5), n_services=2)
        assert network.n_stations == 30
        assert network.topology_name == "gtitm"
        sized = make_topology(
            "gtitm", RngRegistry(5), n_stations=12, n_services=2
        )
        assert sized.n_stations == 12

    def test_as1755_rejects_mismatching_size(self):
        network = make_topology("as1755", RngRegistry(5), n_services=2)
        assert network.topology_name == "as1755"
        with pytest.raises(ValueError, match="exactly"):
            make_topology(
                "as1755",
                RngRegistry(5),
                n_stations=network.n_stations + 1,
                n_services=2,
            )

    def test_unknown_topology(self):
        with pytest.raises(KeyError, match="unknown topology"):
            make_topology("nope", RngRegistry(5), n_services=2)

    def test_reproducible(self):
        a = make_topology("gtitm", RngRegistry(9), n_stations=10, n_services=2)
        b = make_topology("gtitm", RngRegistry(9), n_stations=10, n_services=2)
        assert np.array_equal(a.capacities_mhz, b.capacities_mhz)


class TestWorkloadRegistry:
    def test_names(self):
        assert workload_names() == tuple(sorted(workload_names()))
        assert "constant" in WORKLOADS and "bursty" in WORKLOADS

    def test_constant(self):
        requests = _requests()
        rng = RngRegistry(5).get("demand")
        model = make_workload("constant", requests, rng)
        assert isinstance(model, ConstantDemandModel)
        assert model.workload_name == "constant"

    def test_bursty_with_options(self):
        requests = _requests()
        rng = RngRegistry(5).get("demand")
        model = make_workload("bursty", requests, rng)
        assert isinstance(model, BurstyDemandModel)
        assert model.workload_name == "bursty"

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            make_workload("nope", _requests(), RngRegistry(5).get("demand"))


class TestPredictorRegistry:
    @pytest.mark.parametrize("name", ["last", "mean", "ewma", "ar"])
    def test_closed_form_predictors(self, name):
        predictor = make_predictor(name, 4, RngRegistry(5).get("predict"))
        assert predictor.predictor_name == name
        predictor.observe(np.ones(4))
        assert predictor.predict_next().shape == (4,)

    def test_names(self):
        assert set(predictor_names()) >= {"last", "mean", "ewma", "ar", "gan"}
        assert "gan" in PREDICTORS

    def test_gan_requires_codes(self):
        with pytest.raises(ValueError, match="codes"):
            make_predictor("gan", 4, RngRegistry(5).get("predict"))

    def test_gan_rejects_bad_code_shape(self):
        with pytest.raises(ValueError, match="codes must be"):
            make_predictor(
                "gan", 4, RngRegistry(5).get("predict"), codes=np.ones(3)
            )


class TestControllerRegistryStillWorks:
    def test_controllers_is_generic_registry(self):
        assert isinstance(CONTROLLERS, Registry)
        assert "OL_GD" in CONTROLLERS

    def test_make_controller_roundtrip(self):
        rngs = RngRegistry(5)
        network = make_topology(
            "gtitm", rngs, n_stations=10, n_services=2
        )
        requests = _requests()
        controller = make_controller(
            "Greedy_GD", network, requests, rngs.get("greedy")
        )
        assert controller.name == "Greedy_GD"
