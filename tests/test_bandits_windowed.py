"""Tests for the sliding-window arm statistics (non-stationarity extension)."""

import numpy as np
import pytest

from repro.bandits.windowed import WindowedArmStats


class TestWindowedArmStats:
    def test_mean_over_recent_only(self):
        stats = WindowedArmStats(1, window=3)
        for v in [10.0, 10.0, 1.0, 2.0, 3.0]:
            stats.observe(0, v)
        assert stats.mean(0) == pytest.approx(2.0)  # last three: 1, 2, 3

    def test_counts_track_all_plays(self):
        stats = WindowedArmStats(1, window=2)
        for v in [1.0, 2.0, 3.0, 4.0]:
            stats.observe(0, v)
        assert stats.counts[0] == 4  # plays never forgotten
        assert stats.mean(0) == pytest.approx(3.5)  # estimate forgets

    def test_prior_before_any_play(self):
        stats = WindowedArmStats(2, window=5, prior_mean=7.0)
        assert stats.mean(0) == 7.0
        np.testing.assert_array_equal(stats.means, [7.0, 7.0])

    def test_means_vector(self):
        stats = WindowedArmStats(3, window=2, prior_mean=1.0)
        stats.observe(1, 4.0)
        stats.observe(1, 6.0)
        stats.observe(1, 8.0)
        np.testing.assert_array_equal(stats.means, [1.0, 7.0, 1.0])

    def test_variance_windowed(self):
        stats = WindowedArmStats(1, window=3)
        for v in [100.0, 2.0, 4.0, 6.0]:
            stats.observe(0, v)
        assert stats.variance(0) == pytest.approx(np.var([2.0, 4.0, 6.0]))

    def test_variance_needs_two_recent(self):
        stats = WindowedArmStats(1, window=3)
        stats.observe(0, 5.0)
        assert stats.variance(0) == 0.0

    def test_tracks_drifting_mean_better_than_cumulative(self):
        from repro.bandits.arms import ArmStats

        cumulative = ArmStats(1)
        windowed = WindowedArmStats(1, window=10)
        rng = np.random.default_rng(0)
        level = 10.0
        for t in range(200):
            level += 0.2  # steady upward drift
            value = max(level + rng.normal(0, 0.5), 0.0)
            cumulative.observe(0, value)
            windowed.observe(0, value)
        true_now = level
        assert abs(windowed.mean(0) - true_now) < abs(cumulative.mean(0) - true_now)

    def test_running_sums_match_naive_recompute_after_wraparound(self):
        """Regression for the O(1) running-window sums: after many evictions
        the incremental mean/variance must match recomputing from the
        retained observations."""
        window = 7
        stats = WindowedArmStats(3, window=window, prior_mean=5.0)
        rng = np.random.default_rng(42)
        history = {0: [], 1: [], 2: []}
        for _ in range(20 * window):  # many wrap-arounds per arm
            arm = int(rng.integers(3))
            value = float(rng.uniform(0.0, 100.0))
            stats.observe(arm, value)
            history[arm].append(value)
        for arm in range(3):
            recent = history[arm][-window:]
            assert stats.mean(arm) == pytest.approx(np.mean(recent))
            assert stats.variance(arm) == pytest.approx(np.var(recent))
        np.testing.assert_allclose(
            stats.means, [np.mean(history[a][-window:]) for a in range(3)]
        )

    def test_variance_is_population_like_cumulative_stats(self):
        """Windowed and cumulative estimators share the ddof=0 convention."""
        from repro.bandits.arms import ArmStats

        values = [3.0, 9.0, 4.0, 8.0]
        cumulative = ArmStats(1)
        windowed = WindowedArmStats(1, window=len(values))
        for v in values:
            cumulative.observe(0, v)
            windowed.observe(0, v)
        expected = np.var(values)  # ddof=0 (population)
        assert cumulative.variance(0) == pytest.approx(expected)
        assert windowed.variance(0) == pytest.approx(expected)
        assert windowed.variance(0) != pytest.approx(np.var(values, ddof=1))

    def test_reset_clears_window(self):
        stats = WindowedArmStats(1, window=3, prior_mean=9.0)
        stats.observe(0, 1.0)
        stats.reset()
        assert stats.mean(0) == 9.0
        assert stats.total_plays == 0
        # Running sums restart cleanly after a reset.
        stats.observe(0, 4.0)
        assert stats.mean(0) == 4.0
        assert stats.variance(0) == 0.0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            WindowedArmStats(2, window=0)

    def test_index_validation(self):
        stats = WindowedArmStats(2, window=3)
        with pytest.raises(IndexError):
            stats.mean(5)
        with pytest.raises(IndexError):
            stats.variance(-1)

    def test_ol_gd_accepts_estimator_window(self):
        from repro.core import OlGdController
        from repro.mec.network import MECNetwork
        from repro.mec.requests import Request
        from repro.utils.seeding import RngRegistry

        rngs = RngRegistry(seed=1)
        network = MECNetwork.synthetic(8, 2, rngs)
        requests = [Request(index=0, service_index=0, basic_demand_mb=1.0)]
        controller = OlGdController(
            network, requests, rngs.get("ctrl"), estimator_window=5
        )
        assert isinstance(controller.arms, WindowedArmStats)
        demands = np.array([1.0])
        assignment = controller.decide(0, demands)
        controller.observe(0, demands, network.delays.sample(0), assignment)
        assert controller.arms.total_plays >= 1
