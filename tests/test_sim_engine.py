"""Tests for the simulation engine and metrics."""

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import SimulationResult, SlotRecord, run_simulation
from repro.sim.metrics import SlotRecord
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, ConstantDemandModel


def build_setting(n_requests=6, seed=11):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
            hotspot_index=i % 2,
        )
        for i in range(n_requests)
    ]
    return rngs, network, requests


class TestRunSimulation:
    def test_horizon_respected(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=7
        )
        assert result.horizon == 7
        assert [r.slot for r in result.records] == list(range(7))

    def test_delays_positive_and_finite(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=5
        )
        assert np.all(result.delays_ms > 0)
        assert np.all(np.isfinite(result.delays_ms))

    def test_decision_time_measured(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=3
        )
        assert np.all(result.decision_seconds > 0)

    def test_compute_optimal_fills_records(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            controller,
            horizon=4,
            compute_optimal=True,
        )
        tracker = result.regret_tracker()
        assert tracker.n_slots == 4
        # Achieved integer cost always >= the LP clairvoyant bound.
        assert np.all(tracker.per_slot_regret >= -1e-9)

    def test_first_slot_churn_counts_all_instances(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=2
        )
        assert result.records[0].cache_churn == result.records[0].n_cached_instances

    def test_mismatched_request_counts_rejected(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        other_model = ConstantDemandModel(requests[:-1])
        with pytest.raises(ValueError, match="requests"):
            run_simulation(network, other_model, controller, horizon=2)

    def test_unknown_demands_records_prediction_error(self):
        from repro.core import OlRegController

        rngs, network, requests = build_setting()
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        model = BurstyDemandModel(requests, rngs.get("demand"))
        result = run_simulation(
            network, model, controller, horizon=5, demands_known=False
        )
        maes = result.prediction_maes
        assert np.all(np.isfinite(maes))
        assert np.all(maes >= 0)

    def test_known_demands_have_no_prediction_error(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=3
        )
        assert np.all(np.isnan(result.prediction_maes))

    def test_reproducible_with_same_seed(self):
        def run(seed):
            rngs, network, requests = build_setting(seed=seed)
            controller = OlGdController(network, requests, rngs.get("ctrl"))
            return run_simulation(
                network, ConstantDemandModel(requests), controller, horizon=6
            ).delays_ms

        np.testing.assert_array_equal(run(3), run(3))
        assert not np.array_equal(run(3), run(4))


class TestSimulationResult:
    def _record(self, slot, delay=10.0):
        return SlotRecord(
            slot=slot,
            average_delay_ms=delay,
            decision_seconds=0.01,
            observe_seconds=0.002,
            cache_churn=1,
            n_cached_instances=2,
            max_load_fraction=0.5,
        )

    def test_append_enforces_order(self):
        result = SimulationResult("x")
        result.append(self._record(0))
        with pytest.raises(ValueError):
            result.append(self._record(2))

    def test_first_record_must_be_slot_zero(self):
        result = SimulationResult("x")
        with pytest.raises(ValueError):
            result.append(self._record(1))

    def test_mean_delay_with_warmup_skip(self):
        result = SimulationResult("x")
        for t, delay in enumerate([100.0, 10.0, 10.0, 10.0]):
            result.append(self._record(t, delay))
        assert result.mean_delay_ms() == pytest.approx(32.5)
        assert result.mean_delay_ms(skip_warmup=1) == pytest.approx(10.0)

    def test_mean_delay_empty_after_skip_raises(self):
        result = SimulationResult("x")
        result.append(self._record(0))
        with pytest.raises(ValueError):
            result.mean_delay_ms(skip_warmup=5)

    def test_summary_keys(self):
        result = SimulationResult("OL_GD")
        result.append(self._record(0))
        summary = result.summary()
        assert summary["controller"] == "OL_GD"
        assert summary["horizon"] == 1
        assert set(summary) >= {
            "mean_delay_ms",
            "mean_decision_s",
            "total_churn",
            "peak_load_fraction",
        }
