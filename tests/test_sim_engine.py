"""Tests for the simulation engine and metrics."""

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import SimulationResult, SlotRecord, run_simulation
from repro.sim.metrics import SlotRecord
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, ConstantDemandModel


def build_setting(n_requests=6, seed=11):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
            hotspot_index=i % 2,
        )
        for i in range(n_requests)
    ]
    return rngs, network, requests


class TestRunSimulation:
    def test_horizon_respected(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=7
        )
        assert result.horizon == 7
        assert [r.slot for r in result.records] == list(range(7))

    def test_delays_positive_and_finite(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=5
        )
        assert np.all(result.delays_ms > 0)
        assert np.all(np.isfinite(result.delays_ms))

    def test_decision_time_measured(self):
        rngs, network, requests = build_setting()
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=3
        )
        assert np.all(result.decision_seconds > 0)

    def test_compute_optimal_fills_records(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            controller,
            horizon=4,
            compute_optimal=True,
        )
        tracker = result.regret_tracker()
        assert tracker.n_slots == 4
        # Achieved integer cost always >= the LP clairvoyant bound.
        assert np.all(tracker.per_slot_regret >= -1e-9)

    def test_first_slot_cold_start_is_not_churn(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=2
        )
        first = result.records[0]
        # Standing up the initial cache is reported separately, not as churn.
        assert first.cache_churn == 0
        assert first.initial_instantiations == first.n_cached_instances
        assert result.initial_instantiations == first.n_cached_instances
        assert result.records[1].initial_instantiations == 0
        assert result.summary()["total_churn"] == int(result.cache_churn[1:].sum())
        assert (
            result.summary()["initial_instantiations"] == first.n_cached_instances
        )

    def test_telemetry_off_by_default_and_invariant(self):
        """Identical seed ==> bit-identical series with and without telemetry."""
        from repro import obs

        def run(metrics):
            rngs, network, requests = build_setting(seed=5)
            controller = OlGdController(network, requests, rngs.get("ctrl"))
            return run_simulation(
                network,
                ConstantDemandModel(requests),
                controller,
                horizon=6,
                metrics=metrics,
            )

        assert obs.active_registry() is None  # off by default
        plain = run(None)
        registry = obs.MetricsRegistry()
        traced = run(registry)
        assert obs.active_registry() is None  # deactivated on exit
        # Everything seed-determined is bit-identical; only wall-clock
        # timing fields may differ.
        np.testing.assert_array_equal(plain.delays_ms, traced.delays_ms)
        np.testing.assert_array_equal(plain.cache_churn, traced.cache_churn)
        np.testing.assert_array_equal(
            plain.max_load_fractions, traced.max_load_fractions
        )
        assert plain.initial_instantiations == traced.initial_instantiations
        # ...and the registry actually saw the run.
        assert registry.counter("sim.slots") == 6
        assert registry.counter("lp.solve.calls") == 6
        assert registry.histogram("sim.decide.seconds").count == 6

    def test_mismatched_request_counts_rejected(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        other_model = ConstantDemandModel(requests[:-1])
        with pytest.raises(ValueError, match="requests"):
            run_simulation(network, other_model, controller, horizon=2)

    def test_unknown_demands_records_prediction_error(self):
        from repro.core import OlRegController

        rngs, network, requests = build_setting()
        controller = OlRegController(network, requests, rngs.get("ctrl"))
        model = BurstyDemandModel(requests, rngs.get("demand"))
        result = run_simulation(
            network, model, controller, horizon=5, demands_known=False
        )
        maes = result.prediction_maes
        assert np.all(np.isfinite(maes))
        assert np.all(maes >= 0)

    def test_known_demands_have_no_prediction_error(self):
        rngs, network, requests = build_setting()
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network, ConstantDemandModel(requests), controller, horizon=3
        )
        assert np.all(np.isnan(result.prediction_maes))

    def test_reproducible_with_same_seed(self):
        def run(seed):
            rngs, network, requests = build_setting(seed=seed)
            controller = OlGdController(network, requests, rngs.get("ctrl"))
            return run_simulation(
                network, ConstantDemandModel(requests), controller, horizon=6
            ).delays_ms

        np.testing.assert_array_equal(run(3), run(3))
        assert not np.array_equal(run(3), run(4))


class TestSimulationResult:
    def _record(self, slot, delay=10.0):
        return SlotRecord(
            slot=slot,
            average_delay_ms=delay,
            decision_seconds=0.01,
            observe_seconds=0.002,
            cache_churn=1,
            n_cached_instances=2,
            max_load_fraction=0.5,
        )

    def test_append_enforces_order(self):
        result = SimulationResult("x")
        result.append(self._record(0))
        with pytest.raises(ValueError):
            result.append(self._record(2))

    def test_first_record_must_be_slot_zero(self):
        result = SimulationResult("x")
        with pytest.raises(ValueError):
            result.append(self._record(1))

    def test_mean_delay_with_warmup_skip(self):
        result = SimulationResult("x")
        for t, delay in enumerate([100.0, 10.0, 10.0, 10.0]):
            result.append(self._record(t, delay))
        assert result.mean_delay_ms() == pytest.approx(32.5)
        assert result.mean_delay_ms(skip_warmup=1) == pytest.approx(10.0)

    def test_mean_delay_empty_after_skip_raises(self):
        result = SimulationResult("x")
        result.append(self._record(0))
        with pytest.raises(ValueError):
            result.mean_delay_ms(skip_warmup=5)

    def test_summary_keys(self):
        result = SimulationResult("OL_GD")
        result.append(self._record(0))
        summary = result.summary()
        assert summary["controller"] == "OL_GD"
        assert summary["horizon"] == 1
        assert set(summary) >= {
            "mean_delay_ms",
            "mean_decision_s",
            "total_churn",
            "initial_instantiations",
            "peak_load_fraction",
        }

    def test_empty_result_aggregates_raise_consistently(self):
        """Every aggregate fails up front with the same clear error."""
        result = SimulationResult("empty-ctrl")
        for aggregate in (
            result.summary,
            result.mean_delay_ms,
            result.mean_decision_seconds,
        ):
            with pytest.raises(ValueError, match="empty SimulationResult"):
                aggregate()
        # The error names the controller so study-level failures identify
        # which run produced nothing.
        with pytest.raises(ValueError, match="empty-ctrl"):
            result.summary()
