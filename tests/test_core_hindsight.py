"""Tests for the best-fixed-assignment hindsight comparator."""

import numpy as np
import pytest

from repro.core import OlGdController, clairvoyant_cost
from repro.core.optimal import static_hindsight_cost
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, ConstantDemandModel


@pytest.fixture
def world():
    rngs = RngRegistry(seed=23)
    network = MECNetwork.synthetic(6, 2, rngs)
    requests = [
        Request(index=0, service_index=0, basic_demand_mb=1.0, hotspot_index=0),
        Request(index=1, service_index=1, basic_demand_mb=1.5, hotspot_index=0),
        Request(index=2, service_index=0, basic_demand_mb=2.0, hotspot_index=1),
    ]
    return rngs, network, requests


def matrices(network, demand_model, horizon):
    demands = demand_model.matrix(horizon)
    delays = np.stack([network.delays.sample(t) for t in range(horizon)])
    return demands, delays


class TestStaticHindsight:
    def test_at_least_mean_clairvoyant(self, world):
        """A fixed plan can never beat re-optimising every slot."""
        _, network, requests = world
        model = BurstyDemandModel(requests, np.random.default_rng(0))
        demands, delays = matrices(network, model, horizon=6)
        hindsight = static_hindsight_cost(network, requests, demands, delays)
        per_slot = np.mean(
            [
                clairvoyant_cost(network, requests, demands[t], delays[t])
                for t in range(6)
            ]
        )
        assert hindsight >= per_slot - 1e-9

    def test_constant_world_matches_clairvoyant(self, world):
        """With constant demands and delays, fixed == per-slot optimal."""
        _, network, requests = world
        demands = np.tile([1.0, 1.5, 2.0], (4, 1))
        delays = np.tile(network.delays.sample(0), (4, 1))
        hindsight = static_hindsight_cost(network, requests, demands, delays)
        per_slot = clairvoyant_cost(network, requests, demands[0], delays[0])
        assert hindsight == pytest.approx(per_slot, rel=1e-6)

    def test_exact_at_least_lp(self, world):
        _, network, requests = world
        model = BurstyDemandModel(requests, np.random.default_rng(1))
        demands, delays = matrices(network, model, horizon=4)
        lp = static_hindsight_cost(network, requests, demands, delays, exact=False)
        ilp = static_hindsight_cost(network, requests, demands, delays, exact=True)
        assert ilp >= lp - 1e-9

    def test_ol_gd_eventually_tracks_hindsight(self, world):
        """Sanity: the learner's realised mean cost lands in the right
        ball-park of the hindsight LP bound (within a small factor)."""
        rngs, network, requests = world
        model = ConstantDemandModel(requests)
        horizon = 30
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        result = run_simulation(network, model, controller, horizon=horizon)
        demands, delays = matrices(network, model, horizon)
        hindsight = static_hindsight_cost(network, requests, demands, delays)
        assert result.mean_delay_ms(skip_warmup=10) <= 3.0 * hindsight

    def test_shape_validation(self, world):
        _, network, requests = world
        with pytest.raises(ValueError, match="demand_matrix"):
            static_hindsight_cost(
                network, requests, np.ones((4, 2)), np.ones((4, 6))
            )
        with pytest.raises(ValueError, match="delay_matrix"):
            static_hindsight_cost(
                network, requests, np.ones((4, 3)), np.ones((3, 6))
            )
        with pytest.raises(ValueError, match="slot"):
            static_hindsight_cost(
                network, requests, np.ones((0, 3)), np.ones((0, 6))
            )

    def test_peak_capacity_enforced(self, world):
        """The fixed plan must fit the peak slot, not the average."""
        _, network, requests = world
        # One slot with demand far beyond the average.
        demands = np.array([[1.0, 1.0, 1.0], [50.0, 50.0, 50.0]])
        delays = np.tile(network.delays.sample(0), (2, 1))
        total_peak_need = 150.0 * network.c_unit_mhz
        if total_peak_need > network.total_capacity_mhz():
            with pytest.raises(RuntimeError):
                static_hindsight_cost(network, requests, demands, delays)
        else:
            cost = static_hindsight_cost(network, requests, demands, delays)
            assert np.isfinite(cost)
