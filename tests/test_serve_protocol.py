"""The serving wire protocol: line-JSON dispatch, TCP, stdio, /metrics.

One dispatcher (:func:`repro.serve.handle_request`) backs every
front-end, so most behaviour is pinned at the dispatch layer: stable
error codes, never-raise semantics, placement round-trips.  The TCP and
HTTP tests bind ephemeral ports (``port=0``) and run the real stdlib
servers on background threads.
"""

import io
import json
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    ERROR_CODES,
    PROMETHEUS_CONTENT_TYPE,
    DecisionServer,
    MetricsExporter,
    ProtocolServer,
    ServeConfig,
    handle_line,
    handle_request,
    request_over_socket,
    serve_stdio,
)

TINY = dict(
    controller="OL_GD",
    seed=11,
    horizon=8,
    n_stations=10,
    n_services=2,
    n_requests=6,
    n_hotspots=3,
)


@pytest.fixture
def server():
    decision_server = DecisionServer(ServeConfig(**TINY))
    decision_server.start()
    yield decision_server
    decision_server.stop()


class TestDispatch:
    def test_ping(self, server):
        response = handle_request(server, {"op": "ping"})
        assert response == {"ok": True, "state": "running", "slot": 0}

    def test_offer_then_decide_round_trip(self, server):
        response = handle_request(
            server, {"op": "offer", "request": 3, "volume_mb": 1.5}
        )
        assert response["ok"] and response["accepted"]
        assert (response["slot"], response["buffer_fill"]) == (0, 1)
        response = handle_request(server, {"op": "decide", "slot": 0})
        assert response["ok"]
        placement = response["placement"]
        assert placement == server.placement_history()[0].to_json()
        assert placement["n_offers"] == 1
        assert len(placement["station_of"]) == TINY["n_requests"]

    def test_error_codes_are_stable(self, server):
        cases = {
            "bad_request": {"op": "offer", "request": 3},  # no volume
            "unknown_op": {"op": "frobnicate"},
            "bad_slot": {"op": "decide", "slot": 7},
        }
        for expected, payload in cases.items():
            response = handle_request(server, payload)
            assert not response["ok"]
            assert response["error"] == expected
            assert response["error"] in ERROR_CODES
        # malformed offers are bad_request, not a crash
        response = handle_request(
            server, {"op": "offer", "request": 99, "volume_mb": 1.0}
        )
        assert response["error"] == "bad_request"
        assert not handle_request(server, [1, 2, 3])["ok"]

    def test_buffer_full_code(self):
        decision_server = DecisionServer(ServeConfig(**TINY, buffer_limit=1))
        decision_server.start()
        try:
            offer = {"op": "offer", "request": 0, "volume_mb": 1.0}
            assert handle_request(decision_server, offer)["ok"]
            response = handle_request(decision_server, offer)
            assert not response["ok"]
            assert response["error"] == "buffer_full"
            assert response["accepted"] is False
            # admission control, not an error: the slot still decides
            assert handle_request(decision_server, {"op": "decide"})["ok"]
        finally:
            decision_server.stop()

    def test_status_and_metrics(self, server):
        handle_request(server, {"op": "offer", "request": 0, "volume_mb": 1.0})
        status = handle_request(server, {"op": "status"})
        assert status["ok"]
        assert status["status"]["buffer_fill"] == 1
        metrics = handle_request(server, {"op": "metrics"})
        assert metrics["ok"]
        assert "repro_serve_offers_total 1" in metrics["metrics"]

    def test_checkpoint_without_dir_is_bad_request(self, server):
        response = handle_request(server, {"op": "checkpoint"})
        assert response["error"] == "bad_request"

    def test_checkpoint_with_dir(self, tmp_path):
        config = ServeConfig(**TINY, checkpoint_dir=tmp_path)
        decision_server = DecisionServer(config)
        decision_server.start()
        try:
            response = handle_request(decision_server, {"op": "checkpoint"})
            assert response["ok"]
            assert response["checkpoint"] == str(config.snapshot_path())
            assert config.snapshot_path().exists()
        finally:
            decision_server.stop()

    def test_shutdown_sets_the_flag(self, server):
        assert handle_request(server, {"op": "shutdown"})["ok"]
        assert server.shutdown_requested

    def test_handle_line_rejects_bad_json(self, server):
        response = json.loads(handle_line(server, "{not json"))
        assert response["error"] == "bad_request"
        response = json.loads(handle_line(server, '{"op": "ping"}'))
        assert response["ok"]


class TestTCP:
    def test_round_trip_over_socket(self, server):
        tcp = ProtocolServer(server, port=0)
        tcp.start_background()
        try:
            host, port = "127.0.0.1", tcp.port
            assert request_over_socket(host, port, {"op": "ping"})["ok"]
            offered = request_over_socket(
                host, port, {"op": "offer", "request": 1, "volume_mb": 2.0}
            )
            assert offered["accepted"]
            decided = request_over_socket(host, port, {"op": "decide"})
            assert decided["placement"]["slot"] == 0
            assert decided["placement"]["n_offers"] == 1
        finally:
            tcp.stop_background()

    def test_max_connections_must_be_positive(self, server):
        with pytest.raises(ValueError, match="max_connections"):
            ProtocolServer(server, port=0, max_connections=0)


class TestStdio:
    def test_pumps_lines_until_eof(self, server):
        stdin = io.StringIO(
            '{"op": "offer", "request": 0, "volume_mb": 1.0}\n'
            "\n"  # blank lines are skipped
            '{"op": "decide"}\n'
        )
        stdout = io.StringIO()
        serve_stdio(server, stdin, stdout)
        lines = stdout.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["accepted"]
        assert json.loads(lines[1])["placement"]["slot"] == 0

    def test_shutdown_op_ends_the_loop(self, server):
        stdin = io.StringIO(
            '{"op": "shutdown"}\n'
            '{"op": "ping"}\n'  # never reached: the loop exits first
        )
        stdout = io.StringIO()
        serve_stdio(server, stdin, stdout)
        lines = stdout.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["ok"]


class TestMetricsExporter:
    def test_scrape_and_health(self, server):
        handle_request(server, {"op": "offer", "request": 0, "volume_mb": 1.0})
        exporter = MetricsExporter(server, port=0)
        exporter.start()
        try:
            base = f"http://127.0.0.1:{exporter.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.status == 200
                assert (
                    response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
                )
                body = response.read().decode("utf-8")
            assert "repro_serve_offers_total 1" in body
            assert "repro_serve_buffer_fill 1" in body
            with urllib.request.urlopen(f"{base}/healthz") as response:
                assert response.status == 200
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope")
            assert excinfo.value.code == 404
        finally:
            exporter.stop()

    def test_health_degrades_after_stop(self):
        decision_server = DecisionServer(ServeConfig(**TINY))
        decision_server.start()
        exporter = MetricsExporter(decision_server, port=0)
        exporter.start()
        try:
            decision_server.stop()
            url = f"http://127.0.0.1:{exporter.port}/healthz"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 503
        finally:
            exporter.stop()
