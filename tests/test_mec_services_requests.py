"""Tests for the service catalog, instantiation delays and requests."""

import numpy as np
import pytest

from repro.mec.geometry import Point
from repro.mec.requests import Request
from repro.mec.services import Service, ServiceCatalog


class TestService:
    def test_valid_service(self):
        s = Service(index=0, name="vr", image_size_mb=100.0)
        assert s.name == "vr"

    def test_rejects_bad_image_size(self):
        with pytest.raises(ValueError):
            Service(index=0, name="vr", image_size_mb=0.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Service(index=-1, name="vr")


class TestServiceCatalog:
    def test_generate_shape(self):
        catalog = ServiceCatalog.generate(5, 20, np.random.default_rng(0))
        assert len(catalog) == 5
        assert catalog.n_stations == 20
        assert catalog.instantiation_matrix.shape == (20, 5)

    def test_delays_non_negative(self):
        catalog = ServiceCatalog.generate(4, 10, np.random.default_rng(1))
        assert np.all(catalog.instantiation_matrix >= 0)

    def test_instantiation_delay_lookup(self):
        catalog = ServiceCatalog.generate(3, 6, np.random.default_rng(2))
        matrix = catalog.instantiation_matrix
        assert catalog.instantiation_delay(4, 2) == matrix[4, 2]

    def test_indices_in_order(self):
        catalog = ServiceCatalog.generate(6, 5, np.random.default_rng(3))
        assert [s.index for s in catalog] == list(range(6))

    def test_by_name(self):
        catalog = ServiceCatalog.generate(2, 4, np.random.default_rng(4))
        first = catalog[0]
        assert catalog.by_name(first.name) is first

    def test_by_name_missing_raises(self):
        catalog = ServiceCatalog.generate(2, 4, np.random.default_rng(5))
        with pytest.raises(KeyError):
            catalog.by_name("no-such-service")

    def test_custom_names(self):
        catalog = ServiceCatalog.generate(
            2, 3, np.random.default_rng(6), names=["alpha", "beta"]
        )
        assert [s.name for s in catalog] == ["alpha", "beta"]

    def test_names_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ServiceCatalog.generate(3, 3, np.random.default_rng(7), names=["only-one"])

    def test_many_services_get_unique_names(self):
        catalog = ServiceCatalog.generate(20, 3, np.random.default_rng(8))
        names = [s.name for s in catalog]
        assert len(set(names)) == 20

    def test_constructor_validates_shape(self):
        services = [Service(index=0, name="a")]
        with pytest.raises(ValueError, match="shape"):
            ServiceCatalog(services, np.zeros((4, 2)))

    def test_constructor_validates_order(self):
        services = [Service(index=1, name="a")]
        with pytest.raises(ValueError, match="indices"):
            ServiceCatalog(services, np.zeros((4, 1)))

    def test_constructor_rejects_negative_delays(self):
        services = [Service(index=0, name="a")]
        with pytest.raises(ValueError, match="non-negative"):
            ServiceCatalog(services, -np.ones((4, 1)))

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ServiceCatalog([], np.zeros((0, 0)))

    def test_bigger_images_cost_more_on_average(self):
        rng = np.random.default_rng(9)
        catalog = ServiceCatalog.generate(8, 200, rng)
        sizes = np.array([s.image_size_mb for s in catalog])
        mean_delays = catalog.instantiation_matrix.mean(axis=0)
        # Correlation between image size and mean instantiation delay.
        corr = np.corrcoef(sizes, mean_delays)[0, 1]
        assert corr > 0.5


class TestRequest:
    def test_demand_at_adds_burst(self):
        r = Request(index=0, service_index=1, basic_demand_mb=2.0)
        assert r.demand_at(3.0) == 5.0

    def test_demand_at_zero_burst_is_basic(self):
        r = Request(index=0, service_index=1, basic_demand_mb=2.0)
        assert r.demand_at(0.0) == 2.0

    def test_negative_burst_rejected(self):
        r = Request(index=0, service_index=1, basic_demand_mb=2.0)
        with pytest.raises(ValueError):
            r.demand_at(-1.0)

    def test_zero_basic_demand_rejected(self):
        with pytest.raises(ValueError, match="basic_demand_mb"):
            Request(index=0, service_index=0, basic_demand_mb=0.0)

    def test_default_location(self):
        r = Request(index=0, service_index=0, basic_demand_mb=1.0)
        assert r.location == Point(0.0, 0.0)

    def test_hotspot_and_group_tag(self):
        r = Request(
            index=3,
            service_index=2,
            basic_demand_mb=1.0,
            hotspot_index=5,
            group_tag="tourist",
        )
        assert r.hotspot_index == 5
        assert r.group_tag == "tourist"
