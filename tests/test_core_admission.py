"""Tests for burst admission control."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionDecision, select_admissible


class TestSelectAdmissible:
    def test_everything_fits(self):
        decision = select_admissible(
            np.array([1.0, 2.0, 3.0]), capacity_budget_mhz=100.0, c_unit_mhz=10.0
        )
        assert decision.admitted == (0, 1, 2)
        assert decision.deferred == ()

    def test_smallest_first_maximises_count(self):
        # Budget 40 MHz at 10 MHz/MB: demands 1+2 fit (30), 5 does not.
        decision = select_admissible(
            np.array([5.0, 1.0, 2.0]), capacity_budget_mhz=40.0, c_unit_mhz=10.0
        )
        assert decision.admitted == (1, 2)
        assert decision.deferred == (0,)

    def test_greedy_value_prefers_density(self):
        demands = np.array([4.0, 1.0])
        values = np.array([4.0, 3.0])  # densities 1.0 vs 3.0
        decision = select_admissible(
            demands,
            capacity_budget_mhz=45.0,
            c_unit_mhz=10.0,
            policy="greedy-value",
            values=values,
        )
        # Request 1 (density 3) first (10 MHz), then request 0 fits (40)?
        # 10 + 40 = 50 > 45 -> only request 1 admitted.
        assert decision.admitted == (1,)
        assert decision.deferred == (0,)

    def test_zero_budget_defers_everything(self):
        decision = select_admissible(
            np.array([1.0, 1.0]), capacity_budget_mhz=0.0, c_unit_mhz=1.0
        )
        assert decision.admitted == ()
        assert decision.n_deferred == 2

    def test_zero_demand_always_admitted(self):
        decision = select_admissible(
            np.array([0.0, 50.0]), capacity_budget_mhz=1.0, c_unit_mhz=1.0
        )
        assert 0 in decision.admitted

    def test_validation(self):
        with pytest.raises(ValueError, match="policy"):
            select_admissible(np.ones(2), 1.0, 1.0, policy="magic")
        with pytest.raises(ValueError, match="c_unit"):
            select_admissible(np.ones(2), 1.0, 0.0)
        with pytest.raises(ValueError, match="non-negative"):
            select_admissible(np.array([-1.0]), 1.0, 1.0)
        with pytest.raises(ValueError, match="values"):
            select_admissible(
                np.ones(2), 1.0, 1.0, policy="greedy-value", values=np.ones(3)
            )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=50)
    def test_admitted_set_always_feasible(self, demands, budget):
        demands = np.asarray(demands)
        decision = select_admissible(demands, budget, c_unit_mhz=1.0)
        admitted_need = demands[list(decision.admitted)].sum()
        assert admitted_need <= budget + 1e-6
        # Partition property.
        assert sorted(decision.admitted + decision.deferred) == list(
            range(len(demands))
        )

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=12),
        st.floats(min_value=1.0, max_value=40.0),
    )
    @settings(max_examples=40)
    def test_smallest_first_count_optimal(self, demands, budget):
        """No other feasible subset admits more requests."""
        demands = np.asarray(demands)
        decision = select_admissible(demands, budget, c_unit_mhz=1.0)
        # Greedy-by-size is optimal for maximising count: verify against
        # the sorted prefix bound.
        sorted_demands = np.sort(demands)
        best_count = int(np.searchsorted(np.cumsum(sorted_demands), budget + 1e-9, side="right"))
        assert decision.n_admitted == best_count
