"""Tests for the experiment harness: profiles, figure generators, tables."""

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    FULL_PROFILE,
    QUICK_PROFILE,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.experiments.config import ExperimentProfile, active_profile
from repro.experiments.figures import FigureResult, _build_setting
from repro.experiments.tables import render_figure, render_series_table
from repro.utils.seeding import RngRegistry

# A tiny profile so figure generators run in seconds inside the test suite.
TINY = dataclasses.replace(
    QUICK_PROFILE,
    name="tiny",
    horizon=6,
    n_requests=10,
    n_services=2,
    n_hotspots=3,
    base_stations=15,
    sweep_sizes=(12, 18),
    sweep_sizes_wide=(12, 18),
    repetitions=1,
    gan_pretrain_slots=6,
    gan_pretrain_epochs=1,
    gan_window=3,
    gan_hidden=4,
)


class TestProfiles:
    def test_builtin_profiles_valid(self):
        assert FULL_PROFILE.horizon == 100
        assert QUICK_PROFILE.horizon < FULL_PROFILE.horizon
        assert FULL_PROFILE.sweep_sizes == (50, 100, 150, 200)
        assert FULL_PROFILE.sweep_sizes_wide[-1] == 300

    def test_active_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "full")
        assert active_profile() is FULL_PROFILE
        monkeypatch.setenv("REPRO_PROFILE", "quick")
        assert active_profile() is QUICK_PROFILE
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.raises(ValueError):
            active_profile()

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            dataclasses.replace(QUICK_PROFILE, horizon=0)
        with pytest.raises(ValueError):
            dataclasses.replace(QUICK_PROFILE, femto_requests=0.0)
        with pytest.raises(ValueError):
            dataclasses.replace(QUICK_PROFILE, drift_ms=-1.0)
        with pytest.raises(ValueError):
            dataclasses.replace(QUICK_PROFILE, sweep_sizes=())
        with pytest.raises(TypeError):
            dataclasses.replace(QUICK_PROFILE, n_jobs=1.5)

    def test_profile_n_jobs_variants_accepted(self):
        # 0 = all cores, negative = joblib-style count-back.
        for n_jobs in (0, 1, 4, -1):
            assert dataclasses.replace(QUICK_PROFILE, n_jobs=n_jobs).n_jobs == n_jobs


class TestStudyConfidence:
    """Repetition summaries must reject the closed confidence endpoints:
    t.ppf(1.0) is infinite, which silently produced infinite CIs."""

    @pytest.mark.parametrize("confidence", [0.0, 1.0])
    def test_summarise_rejects_closed_endpoints(self, confidence):
        from repro.sim.multirun import _summarise

        with pytest.raises(ValueError, match="strictly between"):
            _summarise("mean_delay_ms", [1.0, 2.0, 3.0], confidence)

    def test_interior_confidence_is_finite(self):
        from repro.sim.multirun import _summarise

        summary = _summarise("mean_delay_ms", [1.0, 2.0, 3.0], 0.95)
        assert np.isfinite(summary.ci_low) and np.isfinite(summary.ci_high)


class TestBuildSetting:
    def test_gtitm_setting(self):
        rngs = RngRegistry(seed=1)
        network, requests, demand_model = _build_setting(TINY, rngs, 15)
        assert network.n_stations == 15
        assert len(requests) == 10
        assert demand_model.n_requests == 10

    def test_as1755_setting(self):
        rngs = RngRegistry(seed=1)
        network, _, _ = _build_setting(TINY, rngs, 0, topology="as1755")
        assert network.n_stations == 87

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="topology"):
            _build_setting(TINY, RngRegistry(seed=1), 15, topology="mesh")

    def test_c_unit_calibration_femto_usable(self):
        """A femtocell must host at least one average request."""
        rngs = RngRegistry(seed=2)
        network, requests, _ = _build_setting(TINY, rngs, 15)
        mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
        smallest = float(network.capacities_mhz.min())
        assert mean_demand * network.c_unit_mhz <= smallest

    def test_bursty_flag_changes_model(self):
        rngs = RngRegistry(seed=3)
        _, _, constant = _build_setting(TINY, rngs, 15, bursty=False)
        rngs = RngRegistry(seed=3)
        _, _, bursty = _build_setting(TINY, rngs, 15, bursty=True)
        assert np.array_equal(constant.matrix(5), np.tile(constant.basic_demands, (5, 1)))
        assert not np.array_equal(bursty.matrix(40), constant.matrix(40))


class TestFigureResult:
    def test_add_and_series(self):
        figure = FigureResult("f", "t", "x", [0, 1])
        figure.add_point("p", "a", 1.0)
        figure.add_point("p", "a", 2.0)
        np.testing.assert_array_equal(figure.series("p", "a"), [1.0, 2.0])
        figure.validate()

    def test_validate_catches_short_series(self):
        figure = FigureResult("f", "t", "x", [0, 1, 2])
        figure.add_point("p", "a", 1.0)
        with pytest.raises(ValueError, match="points"):
            figure.validate()

    def test_validate_skips_as1755_panels(self):
        figure = FigureResult("f", "t", "x", [0, 1, 2])
        figure.panels["as1755_runtime_s"] = {"a": [0.5]}
        figure.validate()


class TestFigureGenerators:
    def test_figure3_structure(self):
        figure = figure3(TINY)
        assert figure.figure_id == "fig3"
        assert set(figure.panels) == {"delay_ms", "runtime_s"}
        assert set(figure.panels["delay_ms"]) == {"OL_GD", "Greedy_GD", "Pri_GD"}
        assert len(figure.x_values) == TINY.horizon
        for series in figure.panels["delay_ms"].values():
            assert all(np.isfinite(v) and v > 0 for v in series)

    def test_figure4_structure(self):
        figure = figure4(TINY)
        assert figure.x_values == [12.0, 18.0]
        assert set(figure.panels["runtime_s"]) == {"OL_GD", "Greedy_GD", "Pri_GD"}
        for series in figure.panels["delay_ms"].values():
            assert len(series) == 2

    def test_figure5_structure(self):
        figure = figure5(TINY)
        assert figure.figure_id == "fig5"
        assert set(figure.panels["delay_ms"]) == {"OL_GD", "Greedy_GD", "Pri_GD"}

    @pytest.mark.slow
    def test_figure6_structure(self):
        figure = figure6(TINY)
        assert set(figure.panels) == {"delay_ms", "runtime_s", "prediction_mae_mb"}
        assert set(figure.panels["delay_ms"]) == {"OL_GAN", "OL_Reg"}
        maes = figure.panels["prediction_mae_mb"]
        # After the first decided slot, prediction errors are recorded.
        assert np.isfinite(maes["OL_Reg"][1:]).all()

    @pytest.mark.slow
    def test_figure7_structure(self):
        figure = figure7(TINY)
        assert set(figure.panels) >= {
            "delay_ms",
            "runtime_s",
            "as1755_runtime_s",
            "as1755_delay_ms",
        }
        assert len(figure.panels["delay_ms"]["OL_GAN"]) == 2
        assert len(figure.panels["as1755_delay_ms"]["OL_Reg"]) == 1

    def test_figures_reproducible(self):
        a = figure3(TINY)
        b = figure3(TINY)
        np.testing.assert_array_equal(
            a.series("delay_ms", "OL_GD"), b.series("delay_ms", "OL_GD")
        )

    def test_figures_identical_across_worker_counts(self):
        """profile.n_jobs changes only the wall clock, never the figure."""
        serial = figure3(TINY)
        parallel = figure3(dataclasses.replace(TINY, n_jobs=2))
        for algorithm in serial.panels["delay_ms"]:
            np.testing.assert_array_equal(
                serial.series("delay_ms", algorithm),
                parallel.series("delay_ms", algorithm),
            )


class TestTables:
    def test_render_series_table(self):
        text = render_series_table("x", [1.0, 2.0], {"a": [3.0, 4.0], "b": [5.0, 6.0]})
        assert "a" in text and "b" in text
        assert "3.000" in text and "6.000" in text

    def test_render_subsamples_long_series(self):
        text = render_series_table(
            "slot", list(range(100)), {"a": list(range(100))}, max_rows=5
        )
        # Header + separator + 5 rows.
        assert len(text.splitlines()) == 7

    def test_render_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_series_table("x", [1.0], {"a": [1.0, 2.0]})
        with pytest.raises(ValueError):
            render_series_table("x", [1.0], {})

    def test_render_figure_includes_panels(self):
        figure = figure3(TINY)
        text = render_figure(figure)
        assert "fig3" in text
        assert "delay_ms" in text and "runtime_s" in text

    def test_render_figure_scalar_panels(self):
        figure = FigureResult("f", "t", "x", [0.0])
        figure.add_point("delay_ms", "a", 1.0)
        figure.panels["as1755_runtime_s"] = {"a": [0.25]}
        text = render_figure(figure)
        assert "0.2500" in text
