"""Unit tests for the checkpoint wire format (repro.state)."""

import json

import numpy as np
import pytest

from repro.state import (
    CheckpointConfig,
    CheckpointError,
    SweepManifest,
    completed_items,
    flatten_state,
    load_checkpoint,
    result_path,
    rng_state,
    save_checkpoint,
    set_rng_state,
    unflatten_state,
)


class TestFlatten:
    def test_roundtrip_nested_tree(self):
        state = {
            "arms": {"sums": np.arange(3.0), "counts": np.arange(3)},
            "name": "OL_GD",
            "gamma": 0.1,
            "flags": [True, None, 2],
        }
        arrays, structure = flatten_state(state)
        assert set(arrays) == {"arms/sums", "arms/counts"}
        rebuilt = unflatten_state(structure, arrays)
        assert rebuilt["name"] == "OL_GD"
        assert rebuilt["flags"] == [True, None, 2]
        np.testing.assert_array_equal(rebuilt["arms"]["sums"], np.arange(3.0))

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="keys must be str"):
            flatten_state({1: np.zeros(2)})

    def test_rejects_reserved_keys(self):
        with pytest.raises(ValueError, match="reserved"):
            flatten_state({"a/b": 1})
        with pytest.raises(ValueError, match="reserved"):
            flatten_state({"__meta__": 1})

    def test_rejects_unsupported_values(self):
        with pytest.raises(TypeError, match="unsupported type"):
            flatten_state({"x": object()})

    def test_numpy_scalars_become_python_scalars(self):
        _, structure = flatten_state({"t": np.int64(7)})
        assert structure["t"] == 7 and isinstance(structure["t"], int)


class TestSaveLoad:
    def test_roundtrip_with_kind_and_meta(self, tmp_path):
        path = tmp_path / "snap.npz"
        state = {"weights": np.ones((2, 2)), "slot": 5}
        save_checkpoint(path, state, kind="simulation", meta={"horizon": 10})
        loaded, meta = load_checkpoint(path, kind="simulation")
        np.testing.assert_array_equal(loaded["weights"], np.ones((2, 2)))
        assert loaded["slot"] == 5
        assert meta == {"horizon": 10}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.npz")

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_checkpoint(path, {"x": 1}, kind="simulation")
        with pytest.raises(CheckpointError, match="expected 'work-result'"):
            load_checkpoint(path, kind="work-result")

    def test_foreign_npz_raises(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(CheckpointError, match="not a repro-state"):
            load_checkpoint(path)

    def test_schema_mismatch_raises(self, tmp_path):
        path = tmp_path / "stale.npz"
        header = {
            "format": "repro-state",
            "schema": 999,
            "kind": "simulation",
            "state": {},
            "meta": {},
        }
        np.savez(path, __meta__=np.array(json.dumps(header)))
        with pytest.raises(CheckpointError, match="schema 999"):
            load_checkpoint(path)

    def test_overwrite_is_atomic(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_checkpoint(path, {"v": 1}, kind="simulation")
        save_checkpoint(path, {"v": 2}, kind="simulation")
        loaded, _ = load_checkpoint(path)
        assert loaded["v"] == 2
        assert list(tmp_path.glob(".*tmp*")) == []


class TestRngState:
    def test_restore_continues_stream_in_place(self):
        rng = np.random.default_rng(5)
        rng.random(7)
        snapshot = rng_state(rng)
        expected = rng.random(4)
        rng.random(100)  # wander off
        set_rng_state(rng, snapshot)
        np.testing.assert_array_equal(rng.random(4), expected)

    def test_bit_generator_mismatch_raises(self):
        rng = np.random.default_rng(5)
        snapshot = rng_state(np.random.Generator(np.random.MT19937(5)))
        with pytest.raises(CheckpointError, match="MT19937"):
            set_rng_state(rng, snapshot)


class TestCheckpointConfig:
    def test_rejects_non_positive_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="every_n_slots"):
            CheckpointConfig(directory=tmp_path, every_n_slots=0)

    def test_due_at_cadence_multiples_only(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path, every_n_slots=4)
        assert [t for t in range(13) if config.due(t)] == [4, 8, 12]

    def test_path_slugs_controller_name(self, tmp_path):
        config = CheckpointConfig(directory=tmp_path)
        assert config.path_for("OL GD/v2").name == "sim-OL_GD_v2.npz"


class TestSweepManifest:
    def test_write_read_roundtrip(self, tmp_path):
        manifest = SweepManifest(
            seed=7, repetitions=3, horizon=10, demands_known=True,
            controllers=("OL_GD", "Greedy_GD"),
        )
        manifest.write(tmp_path)
        assert SweepManifest.exists(tmp_path)
        assert SweepManifest.read(tmp_path) == manifest

    def test_require_compatible_lists_mismatches(self, tmp_path):
        a = SweepManifest(seed=7, repetitions=3, horizon=10, demands_known=True)
        b = SweepManifest(seed=8, repetitions=3, horizon=12, demands_known=True)
        with pytest.raises(CheckpointError, match="seed.*horizon"):
            a.require_compatible(b)

    def test_unknown_controllers_are_compatible(self, tmp_path):
        a = SweepManifest(
            seed=7, repetitions=3, horizon=10, demands_known=True,
            controllers=("OL_GD",),
        )
        b = SweepManifest(seed=7, repetitions=3, horizon=10, demands_known=True)
        a.require_compatible(b)  # no raise: only one side knows the names

    def test_completed_items_discovery(self, tmp_path):
        for repetition, controller in [(0, 0), (0, 1), (2, 0)]:
            save_checkpoint(
                result_path(tmp_path, repetition, controller),
                {"x": 1},
                kind="work-result",
            )
        (tmp_path / "rep-bogus.npz").write_bytes(b"")
        assert set(completed_items(tmp_path)) == {(0, 0), (0, 1), (2, 0)}

    def test_completed_items_of_missing_directory_empty(self, tmp_path):
        assert completed_items(tmp_path / "absent") == {}
