"""Tests for MMPP burst processes and flash-crowd schedules."""

import numpy as np
import pytest

from repro.workload.bursty import BURST, NORMAL, FlashCrowdSchedule, MmppBurstProcess


class TestMmppBurstProcess:
    def test_starts_normal(self):
        process = MmppBurstProcess(np.random.default_rng(0))
        assert process.state_at(0) == NORMAL

    def test_states_deterministic_per_slot(self):
        process = MmppBurstProcess(np.random.default_rng(0))
        states1 = [process.state_at(t) for t in range(50)]
        states2 = [process.state_at(t) for t in range(50)]
        assert states1 == states2

    def test_order_independent(self):
        p1 = MmppBurstProcess(np.random.default_rng(1))
        p2 = MmppBurstProcess(np.random.default_rng(1))
        backward = [p1.state_at(t) for t in reversed(range(40))]
        forward = [p2.state_at(t) for t in range(40)]
        assert backward == list(reversed(forward))

    def test_burst_fraction_near_stationary(self):
        process = MmppBurstProcess(np.random.default_rng(2), p_enter=0.1, p_exit=0.3)
        states = [process.state_at(t) for t in range(5000)]
        fraction = sum(states) / len(states)
        assert abs(fraction - process.stationary_burst_fraction) < 0.05

    def test_no_bursts_when_p_enter_zero(self):
        process = MmppBurstProcess(np.random.default_rng(3), p_enter=0.0)
        assert all(process.state_at(t) == NORMAL for t in range(100))

    def test_amplitude_zero_outside_bursts(self):
        process = MmppBurstProcess(np.random.default_rng(4), p_enter=0.0)
        assert all(process.amplitude_at(t) == 0.0 for t in range(50))

    def test_amplitude_positive_during_bursts(self):
        process = MmppBurstProcess(np.random.default_rng(5), p_enter=1.0, p_exit=0.0)
        # From slot 1 on the chain is bursting forever.
        assert all(process.amplitude_at(t) > 0.0 for t in range(1, 30))

    def test_amplitude_stable_within_slot(self):
        process = MmppBurstProcess(np.random.default_rng(6), p_enter=1.0, p_exit=0.0)
        assert process.amplitude_at(5) == process.amplitude_at(5)

    def test_mean_burst_amplitude(self):
        process = MmppBurstProcess(
            np.random.default_rng(7), p_enter=1.0, p_exit=0.0,
            amplitude_shape=2.0, amplitude_scale=3.0,
        )
        assert process.mean_burst_amplitude == 6.0
        amplitudes = [process.amplitude_at(t) for t in range(1, 3000)]
        assert abs(np.mean(amplitudes) - 6.0) < 0.4

    def test_bursts_have_dwell_time(self):
        """With small p_exit, bursts should persist across multiple slots."""
        process = MmppBurstProcess(np.random.default_rng(8), p_enter=0.05, p_exit=0.1)
        states = [process.state_at(t) for t in range(3000)]
        runs = []
        current = 0
        for s in states:
            if s == BURST:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected at least one burst in 3000 slots"
        assert np.mean(runs) > 3.0  # mean dwell 1/p_exit = 10, allow slack

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            MmppBurstProcess(np.random.default_rng(0), p_enter=1.5)
        with pytest.raises(ValueError):
            MmppBurstProcess(np.random.default_rng(0), p_exit=-0.1)

    def test_negative_slot_rejected(self):
        process = MmppBurstProcess(np.random.default_rng(0))
        with pytest.raises(ValueError):
            process.state_at(-1)


class TestFlashCrowdSchedule:
    def test_amplitude_inside_window(self):
        schedule = FlashCrowdSchedule().add_event(2, start=10, duration=5, amplitude_mb=8.0)
        assert schedule.amplitude_at(2, 10) == 8.0
        assert schedule.amplitude_at(2, 14) == 8.0

    def test_amplitude_outside_window(self):
        schedule = FlashCrowdSchedule().add_event(2, start=10, duration=5, amplitude_mb=8.0)
        assert schedule.amplitude_at(2, 9) == 0.0
        assert schedule.amplitude_at(2, 15) == 0.0  # end is exclusive

    def test_other_hotspot_unaffected(self):
        schedule = FlashCrowdSchedule().add_event(2, start=0, duration=5, amplitude_mb=8.0)
        assert schedule.amplitude_at(3, 2) == 0.0

    def test_overlapping_events_stack(self):
        schedule = (
            FlashCrowdSchedule()
            .add_event(1, start=0, duration=10, amplitude_mb=3.0)
            .add_event(1, start=5, duration=10, amplitude_mb=4.0)
        )
        assert schedule.amplitude_at(1, 7) == 7.0
        assert schedule.amplitude_at(1, 2) == 3.0
        assert schedule.amplitude_at(1, 12) == 4.0

    def test_events_for_sorted_by_start(self):
        schedule = (
            FlashCrowdSchedule()
            .add_event(0, start=20, duration=2, amplitude_mb=1.0)
            .add_event(0, start=5, duration=2, amplitude_mb=2.0)
        )
        assert schedule.events_for(0) == [(5, 7, 2.0), (20, 22, 1.0)]

    def test_n_events(self):
        schedule = FlashCrowdSchedule()
        assert schedule.n_events == 0
        schedule.add_event(0, 0, 1, 1.0).add_event(1, 0, 1, 1.0)
        assert schedule.n_events == 2

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            FlashCrowdSchedule().add_event(0, start=0, duration=0, amplitude_mb=1.0)
        with pytest.raises(ValueError):
            FlashCrowdSchedule().add_event(0, start=0, duration=1, amplitude_mb=-1.0)
