"""Tests for the Eq. (3)-(7) model builder and the clairvoyant optimum."""

import numpy as np
import pytest

from repro.core.formulation import build_caching_model
from repro.core.optimal import clairvoyant_cost, clairvoyant_cost_exact
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


@pytest.fixture
def small():
    rngs = RngRegistry(seed=5)
    network = MECNetwork.synthetic(6, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(4)
    ]
    demands = np.array([r.basic_demand_mb for r in requests])
    return network, requests, demands


class TestBuildCachingModel:
    def test_variable_count(self, small):
        network, requests, demands = small
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        n_services_needed = len({r.service_index for r in requests})
        expected = len(requests) * 6 + n_services_needed * 6
        assert model.n_variables == expected

    def test_constraint_count(self, small):
        network, requests, demands = small
        model, _ = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        # Eq.4: |R|; Eq.5: |BS|; Eq.6: |R| * |BS|.
        assert model.n_constraints == 4 + 6 + 4 * 6

    def test_lp_solution_is_valid_distribution(self, small):
        network, requests, demands = small
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        solution = solve_lp(model)
        assert solution.is_optimal
        x = variables.x_matrix(solution.values)
        np.testing.assert_allclose(x.sum(axis=1), np.ones(len(requests)), atol=1e-6)
        assert np.all(x >= -1e-9)

    def test_lp_respects_capacity(self, small):
        network, requests, demands = small
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        solution = solve_lp(model)
        x = variables.x_matrix(solution.values)
        loads = (x * demands[:, np.newaxis]).sum(axis=0) * network.c_unit_mhz
        assert np.all(loads <= network.capacities_mhz + 1e-6)

    def test_y_covers_x(self, small):
        """Eq. 6: fractional caching mass dominates assignment mass."""
        network, requests, demands = small
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        solution = solve_lp(model)
        x = variables.x_matrix(solution.values)
        y = variables.y_values(solution.values)
        for l, request in enumerate(requests):
            for i in range(network.n_stations):
                assert y[(request.service_index, i)] >= x[l, i] - 1e-6

    def test_mass_concentrates_on_fast_stations(self, small):
        network, requests, demands = small
        theta = network.delays.true_means
        model, variables = build_caching_model(network, requests, demands, theta)
        solution = solve_lp(model)
        x = variables.x_matrix(solution.values)
        # The bulk of assignment mass should sit on below-median-delay stations.
        fast = theta <= np.median(theta)
        assert x[:, fast].sum() > 0.5 * x.sum()

    def test_shape_validation(self, small):
        network, requests, demands = small
        with pytest.raises(ValueError, match="demand"):
            build_caching_model(
                network, requests, demands[:-1], network.delays.true_means
            )
        with pytest.raises(ValueError, match="theta"):
            build_caching_model(
                network, requests, demands, network.delays.true_means[:-1]
            )
        with pytest.raises(ValueError, match="request"):
            build_caching_model(
                network, [], np.array([]), network.delays.true_means
            )

    def test_negative_demand_rejected(self, small):
        network, requests, demands = small
        demands = demands.copy()
        demands[0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            build_caching_model(network, requests, demands, network.delays.true_means)

    def test_variable_index_round_trip(self, small):
        network, requests, demands = small
        _, variables = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        assert variables.x_index(0, 0) == 0
        assert variables.x_index(1, 0) == network.n_stations
        with pytest.raises(IndexError):
            variables.x_index(99, 0)
        with pytest.raises(KeyError):
            variables.y_index(99, 0)


class TestClairvoyant:
    def test_lp_bound_below_exact(self, small):
        network, requests, demands = small
        d_t = network.delays.sample(0)
        lp = clairvoyant_cost(network, requests, demands, d_t)
        exact = clairvoyant_cost_exact(network, requests, demands, d_t)
        assert lp <= exact + 1e-9

    def test_exact_beats_any_heuristic(self, small):
        """The ILP optimum must be <= the cost of every single-station plan."""
        from repro.core.assignment import Assignment, evaluate_assignment

        network, requests, demands = small
        d_t = network.delays.sample(0)
        exact = clairvoyant_cost_exact(network, requests, demands, d_t)
        for station in range(network.n_stations):
            plan = Assignment.from_stations([station] * len(requests), requests)
            load = plan.loads_mhz(demands, network.c_unit_mhz, network.n_stations)
            if np.any(load > network.capacities_mhz):
                continue  # infeasible plan, not comparable
            cost = evaluate_assignment(plan, network, requests, demands, d_t)
            assert exact <= cost + 1e-6

    def test_costs_positive(self, small):
        network, requests, demands = small
        d_t = network.delays.sample(0)
        assert clairvoyant_cost(network, requests, demands, d_t) > 0


class TestBandwidthExtension:
    def test_constraint_count_grows_by_stations(self, small):
        network, requests, demands = small
        base, _ = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        extended, _ = build_caching_model(
            network, requests, demands, network.delays.true_means,
            slot_seconds=1.0,
        )
        assert extended.n_constraints == base.n_constraints + network.n_stations

    def test_lp_respects_bandwidth(self, small):
        network, requests, demands = small
        slot_seconds = 1.0
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means,
            slot_seconds=slot_seconds,
        )
        solution = solve_lp(model)
        assert solution.is_optimal
        x = variables.x_matrix(solution.values)
        volumes = (x * demands[:, np.newaxis]).sum(axis=0)
        budgets = np.array(
            [bs.bandwidth_mbps * slot_seconds / 8.0 for bs in network.stations]
        )
        assert np.all(volumes <= budgets + 1e-6)

    def test_tight_bandwidth_forces_spreading(self, small):
        network, requests, demands = small
        # A slot so short that even the best-connected station can carry
        # little more than one request's data.
        per_request = float(demands.max())
        widest = max(bs.bandwidth_mbps for bs in network.stations)
        slot_seconds = per_request * 8.0 / widest * 1.2
        model, variables = build_caching_model(
            network, requests, demands, network.delays.true_means,
            slot_seconds=slot_seconds,
        )
        solution = solve_lp(model)
        if not solution.is_optimal:
            pytest.skip("instance infeasible under the tight bandwidth")
        x = variables.x_matrix(solution.values)
        used = (x.sum(axis=0) > 1e-6).sum()
        assert used >= 2  # the load cannot pile onto a single station

    def test_invalid_slot_seconds(self, small):
        network, requests, demands = small
        with pytest.raises(ValueError, match="slot_seconds"):
            build_caching_model(
                network, requests, demands, network.delays.true_means,
                slot_seconds=0.0,
            )
