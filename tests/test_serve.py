"""The serving layer's acceptance bar: the slot-clocked decision server.

The headline property (from the PR issue): interrupt a serving session
mid-stream — SIGTERM-style drain-then-checkpoint, with offers already
buffered for the open slot — warm-restart over the snapshot, and the
completed decision trace must be **bit-identical** to an uninterrupted
server fed the same offers.  Around it: ingest-buffer semantics
(arrival-order aggregation, overflow rejection accounting), the
lifecycle state machine (idempotent start/stop, stopped-is-terminal),
and the telemetry contract (every emitted series is in the
``repro.obs.names`` catalogue).
"""

import numpy as np
import pytest

from repro.serve import (
    DRAINING,
    NEW,
    RUNNING,
    STOPPED,
    DecisionServer,
    Lifecycle,
    LifecycleError,
    ServeConfig,
    ServeError,
    SlotBuffer,
)
from repro.state import CheckpointError

HORIZON = 10
CUT = 6  # interrupt mid-stream after this many completed slots

# Deliberately tiny world (mirrors tests/test_campaigns.py TINY) so each
# server start is well under a second.
TINY = dict(
    controller="OL_GD",
    seed=11,
    horizon=8,
    n_stations=10,
    n_services=2,
    n_requests=6,
    n_hotspots=3,
)


def tiny_config(**overrides) -> ServeConfig:
    fields = dict(TINY)
    fields.update(overrides)
    return ServeConfig(**fields)


def offers_for(slot):
    """Deterministic per-slot offer stream (slot-keyed, so replayable)."""
    rng = np.random.default_rng(1000 + slot)
    return [
        (int(rng.integers(TINY["n_requests"])), float(rng.uniform(0.5, 2.0)))
        for _ in range(1 + slot % 3)
    ]


def drive(server, slots):
    """Offer the slot's demand, close the slot; returns the placements."""
    placements = []
    for slot in slots:
        for request, volume in offers_for(slot):
            assert server.offer(request, volume)
        placements.append(server.decide(slot))
    return placements


class TestSlotBuffer:
    def test_arrival_order_aggregation(self):
        buffer = SlotBuffer(n_requests=4, limit=8)
        for request, volume in [(0, 1.0), (2, 0.5), (0, 0.25)]:
            assert buffer.offer(request, volume)
        assert buffer.fill == 3
        demand, n_offers, rejected = buffer.roll()
        np.testing.assert_array_equal(demand, [1.25, 0.0, 0.5, 0.0])
        assert (n_offers, rejected) == (3, 0)
        # roll() opens a fresh slot
        assert buffer.fill == 0
        assert buffer.roll()[1] == 0

    def test_overflow_rejected_and_counted(self):
        buffer = SlotBuffer(n_requests=2, limit=2)
        assert buffer.offer(0, 1.0)
        assert buffer.offer(1, 1.0)
        assert not buffer.offer(0, 1.0)
        assert (buffer.offered_total, buffer.rejected_total) == (2, 1)
        _, n_offers, rejected = buffer.roll()
        assert (n_offers, rejected) == (2, 1)
        # the per-slot rejection count resets with the slot
        assert buffer.roll()[2] == 0
        assert buffer.rejected_total == 1

    @pytest.mark.parametrize(
        "request_index, volume",
        [(-1, 1.0), (2, 1.0), (0, 0.0), (0, -1.0), (0, float("nan")), (0, float("inf"))],
    )
    def test_malformed_offers_raise(self, request_index, volume):
        buffer = SlotBuffer(n_requests=2, limit=4)
        with pytest.raises(ValueError):
            buffer.offer(request_index, volume)

    def test_pending_state_round_trip(self):
        buffer = SlotBuffer(n_requests=3, limit=4)
        buffer.offer(2, 1.5)
        buffer.offer(0, 0.5)
        requests, volumes = buffer.pending_state()
        restored = SlotBuffer(n_requests=3, limit=4)
        restored.restore_pending(requests, volumes)
        np.testing.assert_array_equal(restored.roll()[0], buffer.roll()[0])

    def test_restore_over_limit_raises(self):
        buffer = SlotBuffer(n_requests=3, limit=2)
        with pytest.raises(ValueError, match="buffer limit"):
            buffer.restore_pending(
                np.array([0, 1, 2]), np.array([1.0, 1.0, 1.0])
            )


class TestLifecycle:
    def test_forward_transitions(self):
        lifecycle = Lifecycle()
        assert lifecycle.state == NEW
        assert lifecycle.to(RUNNING)
        assert not lifecycle.to(RUNNING)  # already there
        assert lifecycle.to(DRAINING)
        assert lifecycle.to(STOPPED)
        assert lifecycle.is_in(STOPPED)

    def test_stopped_is_terminal(self):
        lifecycle = Lifecycle()
        lifecycle.to(STOPPED)
        for state in (NEW, RUNNING, DRAINING):
            with pytest.raises(LifecycleError, match="cannot move"):
                lifecycle.to(state)

    def test_no_backwards_or_unknown_moves(self):
        lifecycle = Lifecycle()
        lifecycle.to(RUNNING)
        with pytest.raises(LifecycleError):
            lifecycle.to(NEW)
        with pytest.raises(LifecycleError, match="unknown"):
            lifecycle.to("paused")

    def test_wait_for(self):
        lifecycle = Lifecycle()
        lifecycle.to(RUNNING)
        assert lifecycle.wait_for(RUNNING, timeout=0.01)
        assert not lifecycle.wait_for(STOPPED, timeout=0.01)


class TestServerLifecycle:
    def test_start_is_idempotent(self):
        server = DecisionServer(tiny_config())
        server.start()
        controller = server.controller
        server.start()
        assert server.controller is controller
        assert server.state == RUNNING
        server.stop()

    def test_stop_is_idempotent_and_terminal(self):
        server = DecisionServer(tiny_config())
        server.start()
        server.stop()
        server.stop()
        assert server.state == STOPPED
        with pytest.raises(ServeError, match="cannot restart"):
            server.start()

    def test_stop_before_start(self):
        server = DecisionServer(tiny_config())
        server.stop()
        assert server.state == STOPPED

    def test_offer_and_decide_require_running(self):
        server = DecisionServer(tiny_config())
        with pytest.raises(ServeError, match="state 'new'"):
            server.offer(0, 1.0)
        with pytest.raises(ServeError, match="state 'new'"):
            server.decide()
        server.start()
        server.stop()
        with pytest.raises(ServeError, match="state 'stopped'"):
            server.offer(0, 1.0)
        with pytest.raises(ServeError, match="state 'stopped'"):
            server.decide()

    def test_slot_mismatch_guard(self):
        server = DecisionServer(tiny_config())
        server.start()
        with pytest.raises(ServeError, match="slot mismatch"):
            server.decide(slot=5)
        server.offer(0, 1.0)
        placement = server.decide(slot=0)
        assert placement.slot == 0
        assert server.slot == 1
        # a stale client retrying the decided slot gets the guard, not a
        # silently re-decided clock
        with pytest.raises(ServeError, match="slot mismatch"):
            server.decide(slot=0)
        server.stop()

    def test_request_shutdown_is_only_a_flag(self):
        server = DecisionServer(tiny_config())
        server.start()
        assert not server.shutdown_requested
        server.request_shutdown()
        assert server.shutdown_requested
        assert server.wait_shutdown(timeout=0.01)
        assert server.state == RUNNING  # the owning loop runs stop()
        server.stop()


class TestServing:
    def test_decide_matches_offers(self):
        server = DecisionServer(tiny_config())
        server.start()
        placements = drive(server, range(4))
        assert [p.slot for p in placements] == [0, 1, 2, 3]
        for slot, placement in enumerate(placements):
            assert placement.n_offers == len(offers_for(slot))
            assert placement.rejected == 0
            assert len(placement.station_of) == TINY["n_requests"]
            assert placement.delay_ms > 0
        # the metric series mirrors the trace, same schema as the engine
        assert server.result.horizon == 4
        np.testing.assert_array_equal(
            server.result.delays_ms, [p.delay_ms for p in placements]
        )
        server.stop()

    def test_overflow_accounting(self):
        server = DecisionServer(tiny_config(buffer_limit=2))
        server.start()
        assert server.offer(0, 1.0)
        assert server.offer(1, 1.0)
        assert not server.offer(2, 1.0)
        status = server.status()
        assert status["buffer_fill"] == 2
        assert status["offered_total"] == 2
        assert status["rejected_total"] == 1
        placement = server.decide()
        assert (placement.n_offers, placement.rejected) == (2, 1)
        assert server.metrics.counter("serve.rejected") == 1
        server.stop()

    def test_empty_slot_decides(self):
        # an idle slot (no offers) is a valid decision — zero demand
        server = DecisionServer(tiny_config())
        server.start()
        placement = server.decide()
        assert (placement.n_offers, placement.rejected) == (0, 0)
        server.stop()

    def test_telemetry_names_stay_in_catalogue(self):
        from repro.obs import unknown_series

        server = DecisionServer(
            tiny_config(buffer_limit=1),
        )
        server.start()
        server.offer(0, 1.0)
        server.offer(1, 1.0)  # rejected: exercises serve.rejected too
        server.decide()
        assert unknown_series(server.metrics) == ()
        assert server.metrics.counter("serve.offers") == 1
        assert server.metrics.counter("serve.slots") == 1
        assert "serve.decide" in server.metrics.span_names()
        server.stop()

    def test_status_is_json_able(self):
        import json

        server = DecisionServer(tiny_config())
        server.start()
        status = server.status()
        assert json.loads(json.dumps(status)) == status
        assert status["state"] == RUNNING
        assert status["controller"] == "OL_GD"
        assert status["checkpoint"] is None
        server.stop()


class TestWarmRestart:
    def test_restart_is_bit_identical(self, tmp_path):
        # reference: one uninterrupted server over the full stream
        reference = DecisionServer(tiny_config())
        reference.start()
        full = drive(reference, range(HORIZON))
        reference.stop()

        config = tiny_config(
            checkpoint_dir=tmp_path, checkpoint_every=4, resume=True
        )
        first = DecisionServer(config)
        first.start()
        drive(first, range(CUT))
        # the open slot's offers are already buffered when the stop lands
        pending = offers_for(CUT)
        for request, volume in pending:
            first.offer(request, volume)
        first.stop()
        assert first.state == STOPPED
        assert config.snapshot_path().exists()

        second = DecisionServer(config)
        second.start()
        assert second.slot == CUT
        assert second.status()["restored_slots"] == CUT
        assert second.status()["buffer_fill"] == len(pending)
        # restored history covers the pre-interruption slots
        assert [p.slot for p in second.placement_history()] == list(range(CUT))
        # close the interrupted slot from its restored offers, then finish
        resumed = [second.decide(CUT)]
        resumed += drive(second, range(CUT + 1, HORIZON))
        trace = list(second.placement_history())
        assert [p.trace_key() for p in trace] == [
            p.trace_key() for p in full
        ]
        # rejection/offer accounting also survives the restart
        assert (
            second.status()["offered_total"]
            == reference.status()["offered_total"]
        )
        assert resumed[0].n_offers == len(pending)
        second.stop()

    def test_periodic_checkpoint_cadence(self, tmp_path):
        config = tiny_config(checkpoint_dir=tmp_path, checkpoint_every=2)
        server = DecisionServer(config)
        server.start()
        path = config.snapshot_path()
        drive(server, range(1))
        assert not path.exists()  # slot 1 of 2: not due yet
        drive(server, range(1, 2))
        assert path.exists()  # cadence hit at slot 2
        assert server.metrics.counter("state.save") == 1
        server.stop()
        # the drain wrote a fresh snapshot on top
        assert server.metrics.counter("state.save") == 2

    def test_resume_refuses_foreign_world(self, tmp_path):
        config = tiny_config(
            checkpoint_dir=tmp_path, checkpoint_every=2, resume=True
        )
        server = DecisionServer(config)
        server.start()
        drive(server, range(2))
        server.stop()

        foreign = DecisionServer(
            tiny_config(
                seed=12, checkpoint_dir=tmp_path, checkpoint_every=2,
                resume=True,
            )
        )
        with pytest.raises(CheckpointError, match="digest mismatch"):
            foreign.start()

    def test_resume_without_snapshot_starts_fresh(self, tmp_path):
        config = tiny_config(checkpoint_dir=tmp_path, resume=True)
        server = DecisionServer(config)
        server.start()
        assert server.slot == 0
        assert server.status()["restored_slots"] == 0
        server.stop()


class TestTickClock:
    def test_automatic_slot_ticks(self):
        server = DecisionServer(tiny_config(tick_interval=0.02))
        server.start()
        deadline = 50
        while server.slot < 2 and deadline:
            server.wait_shutdown(timeout=0.02)
            deadline -= 1
        assert server.slot >= 2
        server.stop()
        assert server.state == STOPPED
