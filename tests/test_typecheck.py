"""Type-check gate: run mypy over the typed core when it is available.

Mirrors ``tests/test_lint.py``: the tier-1 container does not always ship
mypy, so the gate skips rather than fails in that case (the always-on
``tests/test_static_analysis.py`` gate never skips and carries the
project-specific rules).  Scope and strictness live in ``[tool.mypy]`` in
pyproject.toml — currently ``repro.utils``, ``repro.obs`` and
``repro.analysis``, the three packages whose annotations the rest of the
codebase leans on.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    result = subprocess.run(
        ["mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
    assert result.returncode == 0, "mypy reported errors (see output)"
