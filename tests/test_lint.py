"""Lint gate: run ruff over the package when it is available.

The container used for tier-1 CI does not always ship ruff; the gate
skips (rather than fails) in that case so the suite stays hermetic.
Configuration lives in ``[tool.ruff]`` in pyproject.toml.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
    assert result.returncode == 0, "ruff check reported findings (see output)"
