"""Tests for the LP-free CMAB controllers (ablation baselines)."""

import numpy as np
import pytest

from repro.core.cmab import CmabController, cmab_thompson, cmab_ucb
from repro.bandits.policies import Ucb1
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


def build(seed=3, n_stations=12, n_requests=6):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(n_requests)
    ]
    return rngs, network, requests


class TestCmabController:
    def test_factories_name_controllers(self):
        rngs, network, requests = build()
        assert cmab_ucb(network, requests, rngs.get("a")).name == "CMAB_UCB"
        assert cmab_thompson(network, requests, rngs.get("b")).name == "CMAB_TS"

    def test_decide_produces_valid_assignment(self):
        rngs, network, requests = build()
        controller = cmab_ucb(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        assert assignment.n_requests == len(requests)
        assert np.all(assignment.station_of < network.n_stations)

    def test_capacity_packed_greedily(self):
        rngs, network, requests = build()
        controller = cmab_ucb(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        loads = assignment.loads_mhz(demands, network.c_unit_mhz, network.n_stations)
        assert np.all(loads <= network.capacities_mhz + 1e-6)

    def test_requires_demands(self):
        rngs, network, requests = build()
        controller = cmab_ucb(network, requests, rngs.get("ctrl"))
        with pytest.raises(ValueError):
            controller.decide(0, None)

    def test_observe_updates_played_arms_only(self):
        rngs, network, requests = build()
        controller = cmab_thompson(network, requests, rngs.get("ctrl"))
        demands = np.array([r.basic_demand_mb for r in requests])
        assignment = controller.decide(0, demands)
        controller.observe(0, demands, network.delays.sample(0), assignment)
        played = set(assignment.stations_used().tolist())
        for i in range(network.n_stations):
            assert (controller.arms.counts[i] > 0) == (i in played)

    def test_converges_to_fast_stations(self):
        rngs, network, requests = build(n_stations=10, n_requests=4)
        controller = cmab_ucb(network, requests, rngs.get("ctrl"))
        model = ConstantDemandModel(requests)
        run_simulation(network, model, controller, horizon=80)
        true = network.delays.true_means
        # Most plays should land on below-median-delay stations eventually.
        counts = controller.arms.counts
        fast = true <= np.median(true)
        assert counts[fast].sum() > 0.6 * counts.sum()

    def test_custom_name(self):
        rngs, network, requests = build()
        controller = CmabController(
            network, requests, rngs.get("ctrl"), policy=Ucb1(), name="MyCmab"
        )
        assert controller.name == "MyCmab"

    def test_oversized_demand_falls_back(self):
        rngs, network, requests = build(n_requests=1)
        controller = cmab_ucb(network, requests, rngs.get("ctrl"))
        huge = np.array([10 * network.capacities_mhz.max() / network.c_unit_mhz])
        assignment = controller.decide(0, huge)
        # Falls back to the largest station rather than crashing.
        assert assignment.station_of[0] == int(np.argmax(network.capacities_mhz))
