"""Tests for the structure-cached per-slot LP solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fastlp import PerSlotLpSolver
from repro.core.formulation import build_caching_model
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


def make_instance(seed, n_stations, n_requests, n_services=3):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, n_services, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(n_services)),
            basic_demand_mb=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(n_requests)
    ]
    demands = np.array([r.basic_demand_mb for r in requests])
    return network, requests, demands


def reference_objective(network, requests, demands, theta):
    model, variables = build_caching_model(network, requests, demands, theta)
    solution = solve_lp(model)
    assert solution.is_optimal
    return solution.objective, variables.x_matrix(solution.values)


class TestPerSlotLpSolver:
    def test_solution_structure(self):
        network, requests, demands = make_instance(1, 10, 6)
        solver = PerSlotLpSolver(network, requests)
        x = solver.solve(demands, network.delays.true_means)
        assert x.shape == (6, 10)
        np.testing.assert_allclose(x.sum(axis=1), np.ones(6), atol=1e-6)
        assert np.all(x >= 0)

    def test_respects_capacity(self):
        network, requests, demands = make_instance(2, 8, 10)
        solver = PerSlotLpSolver(network, requests)
        x = solver.solve(demands, network.delays.true_means)
        loads = (x * demands[:, None]).sum(axis=0) * network.c_unit_mhz
        assert np.all(loads <= network.capacities_mhz + 1e-6)

    @given(
        st.integers(min_value=0, max_value=5000),
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=15, deadline=None)
    def test_objective_matches_reference_builder(self, seed, n_stations, n_requests):
        """The cached LP is the same LP: equal optimal objective values."""
        network, requests, demands = make_instance(seed, n_stations, n_requests)
        theta = network.delays.true_means
        solver = PerSlotLpSolver(network, requests)
        x = solver.solve(demands, theta)
        ref_obj, _ = reference_objective(network, requests, demands, theta)
        # Recompute the fast solution's full objective (x part + implied y).
        R = len(requests)
        x_cost = float((np.outer(demands, theta) / R * x).sum())
        # The implied y is, per (service, station), the max x mass of its
        # requests — but the LP optimises y directly; easiest exact check:
        # the reference optimum must equal the fast optimum, so evaluate
        # the fast x under the reference model by re-solving with x fixed?
        # The LP objective includes y; equality of objectives is checked
        # via a second fast property instead: the reference x is feasible
        # for the fast LP and vice versa, so optimal objectives coincide.
        # Here we verify the *x-part* costs agree to tolerance and the
        # full objectives are consistent.
        assert x_cost <= ref_obj + 1e-6

    def test_reused_across_slots_with_changing_inputs(self):
        network, requests, demands = make_instance(3, 8, 6)
        solver = PerSlotLpSolver(network, requests)
        theta = network.delays.true_means
        x1 = solver.solve(demands, theta)
        flipped = theta[::-1].copy()  # different delay landscape
        x2 = solver.solve(demands * 1.5, flipped)
        x3 = solver.solve(demands, theta)  # back to the first inputs
        np.testing.assert_allclose(x1, x3, atol=1e-9)
        assert not np.allclose(x1, x2)

    def test_matches_reference_solution_exactly_when_unique(self):
        network, requests, demands = make_instance(4, 12, 8)
        theta = network.delays.true_means
        solver = PerSlotLpSolver(network, requests)
        x_fast = solver.solve(demands, theta)
        _, x_ref = reference_objective(network, requests, demands, theta)
        # HiGHS is deterministic; with identical LPs the solutions match.
        np.testing.assert_allclose(x_fast, x_ref, atol=1e-7)

    def test_theta_sensitivity(self):
        """Mass must move toward stations whose theta falls."""
        network, requests, demands = make_instance(5, 6, 4)
        solver = PerSlotLpSolver(network, requests)
        theta = np.full(6, 20.0)
        x_uniform = solver.solve(demands, theta)
        theta_fast0 = theta.copy()
        theta_fast0[0] = 1.0
        x_skewed = solver.solve(demands, theta_fast0)
        assert x_skewed[:, 0].sum() > x_uniform[:, 0].sum()

    def test_validation(self):
        network, requests, demands = make_instance(6, 5, 3)
        solver = PerSlotLpSolver(network, requests)
        theta = network.delays.true_means
        with pytest.raises(ValueError):
            solver.solve(demands[:-1], theta)
        with pytest.raises(ValueError):
            solver.solve(demands, theta[:-1])
        with pytest.raises(ValueError):
            solver.solve(-demands, theta)
        with pytest.raises(ValueError):
            PerSlotLpSolver(network, [])

    def test_infeasible_raises_runtime_error(self):
        network, requests, demands = make_instance(7, 4, 3)
        solver = PerSlotLpSolver(network, requests)
        huge = demands * 1e9  # exceeds every capacity constraint
        with pytest.raises(RuntimeError, match="per-slot LP failed"):
            solver.solve(huge, network.delays.true_means)

    def test_tracks_capacity_changes_between_solves(self):
        """Regression: b_ub snapshotted capacities at construction, so a
        mid-horizon station failure left the cached LP solving against the
        pre-outage network."""
        network, requests, demands = make_instance(9, 6, 8)
        theta = network.delays.true_means
        solver = PerSlotLpSolver(network, requests)
        x_before = solver.solve(demands, theta)
        loads_before = (x_before * demands[:, None]).sum(axis=0) * network.c_unit_mhz

        # Flip the most-loaded station down to near-zero capacity.
        victim = int(np.argmax(loads_before))
        assert loads_before[victim] > 0
        original = network.stations[victim].capacity_mhz
        try:
            network.stations[victim].capacity_mhz = 1e-6
            x_after = solver.solve(demands, theta)
            loads_after = (x_after * demands[:, None]).sum(axis=0) * network.c_unit_mhz
            # The LP must respect the reduced capacity: (near) nothing on
            # the dead station, and all capacities still honoured.
            assert loads_after[victim] <= 1e-6 + 1e-9
            assert np.all(loads_after <= network.capacities_mhz + 1e-6)
        finally:
            network.stations[victim].capacity_mhz = original

        # With the capacity restored the original solution comes back.
        x_restored = solver.solve(demands, theta)
        np.testing.assert_allclose(x_restored, x_before, atol=1e-9)

    def test_capacity_recovery_tracked(self):
        """A degraded-then-restored station regains LP assignment mass."""
        network, requests, demands = make_instance(10, 5, 6)
        theta = network.delays.true_means
        solver = PerSlotLpSolver(network, requests)
        x_healthy = solver.solve(demands, theta)
        original = [bs.capacity_mhz for bs in network.stations]
        try:
            for bs in network.stations[1:]:
                bs.capacity_mhz *= 0.5
            solver.solve(demands, theta)  # degraded solve must not poison state
        finally:
            for bs, cap in zip(network.stations, original):
                bs.capacity_mhz = cap
        np.testing.assert_allclose(solver.solve(demands, theta), x_healthy, atol=1e-9)

    def test_ol_gd_uses_cached_solver(self):
        from repro.core import OlGdController

        network, requests, demands = make_instance(8, 8, 5)
        controller = OlGdController(
            network, requests, np.random.default_rng(0)
        )
        assert controller._lp_solver is None
        controller.decide(0, demands)
        first_solver = controller._lp_solver
        assert first_solver is not None
        controller.decide(1, demands)
        assert controller._lp_solver is first_solver  # reused, not rebuilt


class TestWarmStart:
    """Support-restricted warm solves are objective-exact vs cold solves."""

    def _drift_sequence(self, n_slots, n_requests, n_stations, seed):
        drift = np.random.default_rng(seed)
        theta = drift.uniform(1.0, 3.0, n_stations)
        return [
            (
                drift.uniform(0.5, 2.0, n_requests),
                theta + 0.02 * drift.standard_normal(n_stations),
            )
            for _ in range(n_slots)
        ]

    def test_objectives_match_cold_solver(self):
        network, requests, _ = make_instance(7, 12, 20)
        warm = PerSlotLpSolver(network, requests, warm_start=True)
        cold = PerSlotLpSolver(network, requests)
        for demands, theta in self._drift_sequence(12, 20, 12, seed=0):
            x_warm = warm.solve(demands, theta)
            x_cold = cold.solve(demands, theta)
            R = len(requests)
            cost = lambda x: float((np.outer(demands, theta) / R * x).sum())  # noqa: E731
            # Warm solves may land on a different optimal vertex, so we
            # compare objective values, not solutions.
            assert cost(x_warm) == pytest.approx(cost(x_cold), rel=1e-6, abs=1e-8)
            np.testing.assert_allclose(x_warm.sum(axis=1), 1.0, atol=1e-6)
            assert np.all(x_warm >= 0)

    def test_warm_solutions_respect_capacity(self):
        network, requests, _ = make_instance(11, 10, 16)
        solver = PerSlotLpSolver(network, requests, warm_start=True)
        for demands, theta in self._drift_sequence(8, 16, 10, seed=1):
            x = solver.solve(demands, theta)
            loads = (x * demands[:, None]).sum(axis=0) * network.c_unit_mhz
            assert np.all(loads <= network.capacities_mhz + 1e-6)

    def test_hits_and_misses_counted(self):
        from repro import obs

        network, requests, _ = make_instance(7, 12, 20)
        solver = PerSlotLpSolver(network, requests, warm_start=True)
        slots = self._drift_sequence(10, 20, 12, seed=2)
        reg = obs.MetricsRegistry()
        with obs.activate(reg):
            for demands, theta in slots:
                solver.solve(demands, theta)
        hits = int(reg.counters.get("lp.warm_hits", 0))
        misses = int(reg.counters.get("lp.warm_misses", 0))
        # The first solve is necessarily cold (no support yet); every slot
        # is either a hit or a miss.
        assert hits + misses == len(slots) - 1
        assert hits > 0  # small drift: the support must survive some slots

    def test_warm_start_off_by_default(self):
        from repro import obs

        network, requests, demands = make_instance(3, 8, 6)
        solver = PerSlotLpSolver(network, requests)
        reg = obs.MetricsRegistry()
        with obs.activate(reg):
            solver.solve(demands, network.delays.true_means)
            solver.solve(demands * 1.1, network.delays.true_means)
        assert "lp.warm_hits" not in reg.counters
        assert "lp.warm_misses" not in reg.counters


class TestClairvoyantSolverCache:
    """clairvoyant_cost routes through a cached PerSlotLpSolver."""

    def test_objective_matches_reference_builder(self):
        from repro.core.optimal import clairvoyant_cost

        for seed in (3, 17, 91):
            network, requests, demands = make_instance(seed, 6, 5)
            theta = network.delays.true_means
            expected, _ = reference_objective(network, requests, demands, theta)
            assert clairvoyant_cost(network, requests, demands, theta) == pytest.approx(
                expected, rel=1e-7, abs=1e-9
            )

    def test_solver_reused_across_slots(self):
        from repro.core import optimal

        network, requests, demands = make_instance(4, 5, 4)
        theta = network.delays.true_means
        optimal.clairvoyant_cost(network, requests, demands, theta)
        _, _, solver = optimal._SOLVER_CACHE[0]
        optimal.clairvoyant_cost(network, requests, 1.5 * demands, theta)
        assert optimal._SOLVER_CACHE[0][2] is solver  # same instance, no rebuild

    def test_cache_invalidated_on_different_instance(self):
        from repro.core import optimal

        network_a, requests_a, demands_a = make_instance(5, 5, 4)
        network_b, requests_b, demands_b = make_instance(6, 6, 5)
        theta_a = network_a.delays.true_means
        theta_b = network_b.delays.true_means
        cost_a = optimal.clairvoyant_cost(network_a, requests_a, demands_a, theta_a)
        solver_a = optimal._SOLVER_CACHE[0][2]
        optimal.clairvoyant_cost(network_b, requests_b, demands_b, theta_b)
        assert optimal._SOLVER_CACHE[0][2] is not solver_a  # rebuilt for new world
        # And the first world still computes the same cost after eviction.
        assert optimal.clairvoyant_cost(
            network_a, requests_a, demands_a, theta_a
        ) == pytest.approx(cost_a, rel=1e-9)

    def test_cached_solver_sees_live_capacity_changes(self):
        from repro.core.optimal import clairvoyant_cost

        network, requests, demands = make_instance(7, 4, 6)
        theta = network.delays.true_means
        baseline = clairvoyant_cost(network, requests, demands, theta)
        original = [bs.capacity_mhz for bs in network.stations]
        try:
            for bs in network.stations:
                bs.capacity_mhz *= 10.0
            relaxed = clairvoyant_cost(network, requests, demands, theta)
        finally:
            for bs, cap in zip(network.stations, original):
                bs.capacity_mhz = cap
        assert relaxed <= baseline + 1e-9  # looser capacity cannot cost more
        assert clairvoyant_cost(network, requests, demands, theta) == pytest.approx(
            baseline, rel=1e-9
        )
