"""Tests for the campaign-wide work-stealing scheduler.

The acceptance properties of the global-scheduler issue live here:

- a campaign drained by the global pool produces byte-identical
  ``summary.json`` files to the sequential per-cell path (including over
  the shipped ``examples/campaigns/smoke.toml`` grid);
- kill/resume keeps working at both grains (whole cells and partial
  cells) under the global pool, and the stitched result equals an
  uninterrupted run byte-for-byte;
- a hard-crashing work item fails only its own cell: the campaign
  completes and the failure is recorded on the right cell's summary;
- ``max_retries`` re-runs crashed items on the persistent pool (a retry
  that succeeds leaves no failure behind);
- nested parallelism is clamped: ``resolve_n_jobs`` inside a pool worker
  resolves to 1 with a warning;
- the scheduler surfaces its telemetry (units dispatched, world-cache
  hits/misses, cells completed) on the active obs registry.
"""

import dataclasses
import logging
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.campaigns import (
    CampaignSpec,
    FactorAxis,
    ScenarioSpec,
    cell_directory,
    load_campaign_toml,
    run_campaign,
    run_campaign_scheduled,
)
from repro.campaigns.runner import read_cell_summary
from repro.core.greedy import GreedyController
from repro.core.registry import CONTROLLERS, register_controller
from repro.sim.parallel import _POOL_WORKER_ENV, resolve_n_jobs

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "campaigns"

# Same deliberately tiny world as test_campaigns.py: two cells, two
# repetitions, two controllers -> an 8-item global grid.
TINY = dict(
    controllers=("OL_GD", "Greedy_GD"),
    horizon=3,
    n_stations=10,
    n_services=2,
    n_requests=6,
    n_hotspots=3,
)


def tiny_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="tiny",
        seed=11,
        repetitions=2,
        scenario=ScenarioSpec(**TINY),
        factors=(FactorAxis("n_stations", (10, 12)),),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def summary_bytes(out_dir: Path, spec: CampaignSpec) -> dict:
    return {
        cell.cell_id: (
            cell_directory(out_dir, cell.cell_id) / "summary.json"
        ).read_bytes()
        for cell in spec.expand()
    }


class CrashyController(GreedyController):
    """Fails hard on every decide in the 12-station cells only."""

    name = "Crashy"

    def decide(self, slot, demands):
        if self.network.n_stations == 12:
            raise RuntimeError("crashy controller says no")
        return super().decide(slot, demands)


class FlakyController(GreedyController):
    """Fails until its flag file exists; creates the flag on first crash."""

    name = "Flaky"

    def __init__(self, network, requests, rng, *, flag: str):
        super().__init__(network, requests, rng)
        self._flag = Path(flag)

    def decide(self, slot, demands):
        if not self._flag.exists():
            self._flag.touch()
            raise RuntimeError("flaky controller not warmed up yet")
        return super().decide(slot, demands)


@pytest.fixture
def crashy_registered():
    register_controller("Crashy", CrashyController)
    try:
        yield
    finally:
        CONTROLLERS._factories.pop("Crashy", None)


@pytest.fixture
def flaky_registered():
    register_controller("Flaky", FlakyController)
    try:
        yield
    finally:
        CONTROLLERS._factories.pop("Flaky", None)


class TestBitEquality:
    def test_global_equals_cell_scheduler_bytes(self, tmp_path):
        spec = tiny_spec()
        serial = run_campaign(
            spec, tmp_path / "serial", scheduler="cell", n_jobs=1
        )
        pooled = run_campaign(
            spec, tmp_path / "pooled", scheduler="global", n_jobs=2
        )
        assert serial.complete and pooled.complete
        assert summary_bytes(tmp_path / "serial", spec) == summary_bytes(
            tmp_path / "pooled", spec
        )

    def test_smoke_example_equals_serial_bytes(self, tmp_path):
        # The shipped CI smoke grid, scaled to one repetition for speed.
        spec = dataclasses.replace(
            load_campaign_toml(EXAMPLES / "smoke.toml"), repetitions=1
        )
        run_campaign(spec, tmp_path / "serial", scheduler="cell", n_jobs=1)
        run_campaign_scheduled(spec, tmp_path / "pooled", n_jobs=2)
        assert summary_bytes(tmp_path / "serial", spec) == summary_bytes(
            tmp_path / "pooled", spec
        )

    def test_auto_routes_multi_worker_runs_to_global(self, tmp_path):
        spec = tiny_spec()
        auto = run_campaign(spec, tmp_path / "auto", n_jobs=2)
        serial = run_campaign(
            spec, tmp_path / "serial", scheduler="cell", n_jobs=1
        )
        assert auto.complete and serial.complete
        assert summary_bytes(tmp_path / "auto", spec) == summary_bytes(
            tmp_path / "serial", spec
        )


class TestResume:
    def test_kill_and_resume_whole_cells(self, tmp_path):
        spec = tiny_spec()
        killed = run_campaign_scheduled(
            spec, tmp_path / "camp", n_jobs=2, max_cells=1
        )
        assert len(killed.executed) == 1 and len(killed.remaining) == 1
        assert not killed.complete

        resumed = run_campaign_scheduled(
            spec, tmp_path / "camp", n_jobs=2, resume=True
        )
        assert resumed.executed == killed.remaining
        assert resumed.skipped == killed.executed
        assert resumed.complete

        fresh = run_campaign_scheduled(spec, tmp_path / "fresh", n_jobs=2)
        assert fresh.complete
        assert summary_bytes(tmp_path / "camp", spec) == summary_bytes(
            tmp_path / "fresh", spec
        )

    def test_partial_cell_resumes_missing_items_only(self, tmp_path):
        spec = tiny_spec()
        run_campaign_scheduled(spec, tmp_path / "camp", n_jobs=2)
        # Simulate a kill mid-cell: drop one cell's summary plus one of
        # its persisted items; resume must re-enter through the sweep
        # manifest and re-run exactly the missing item.
        victim = cell_directory(tmp_path / "camp", spec.expand()[0].cell_id)
        (victim / "summary.json").unlink()
        snapshots = sorted(victim.glob("rep*-ctrl*.npz"))
        snapshots[0].unlink()

        resumed = run_campaign_scheduled(
            spec, tmp_path / "camp", n_jobs=2, resume=True
        )
        assert resumed.complete
        assert resumed.executed == (spec.expand()[0].cell_id,)

        fresh = run_campaign_scheduled(spec, tmp_path / "fresh", n_jobs=2)
        assert summary_bytes(tmp_path / "camp", spec) == summary_bytes(
            tmp_path / "fresh", spec
        )


class TestFailureHandling:
    def test_crash_recorded_on_the_right_cell(self, tmp_path, crashy_registered):
        spec = tiny_spec(
            scenario=ScenarioSpec(
                **{**TINY, "controllers": ("Greedy_GD", "Crashy")}
            )
        )
        crashy_index = 1
        result = run_campaign_scheduled(spec, tmp_path / "camp", n_jobs=2)
        # The campaign completes: the crash fails its own items, nothing
        # else, and every cell still gets a summary.
        assert result.complete
        assert set(result.executed) == {c.cell_id for c in spec.expand()}
        healthy = read_cell_summary(
            cell_directory(tmp_path / "camp", "n_stations=10")
        )
        broken = read_cell_summary(
            cell_directory(tmp_path / "camp", "n_stations=12")
        )
        assert healthy["n_failed"] == 0 and healthy["failed_items"] == []
        assert broken["n_failed"] == spec.repetitions
        assert broken["failed_items"] == [
            [repetition, crashy_index]
            for repetition in range(spec.repetitions)
        ]
        # The sibling controller of the crashed unit still succeeded.
        assert "Greedy_GD" in broken["summaries"]
        assert "Crashy" not in broken["summaries"]

    def test_retry_round_recovers_flaky_items(self, tmp_path, flaky_registered):
        flag = tmp_path / "warmed-up"
        spec = tiny_spec(
            repetitions=1,
            scenario=ScenarioSpec(
                **{
                    **TINY,
                    "controllers": ("Greedy_GD", "Flaky"),
                    "controller_options": {"Flaky": {"flag": str(flag)}},
                }
            ),
        )
        result = run_campaign_scheduled(
            spec, tmp_path / "camp", n_jobs=2, max_retries=1
        )
        assert result.complete
        for cell in spec.expand():
            summary = read_cell_summary(
                cell_directory(tmp_path / "camp", cell.cell_id)
            )
            assert summary["n_failed"] == 0, cell.cell_id
            assert "Flaky" in summary["summaries"]


class TestNestedParallelism:
    def test_resolve_n_jobs_clamped_inside_pool_worker(
        self, monkeypatch, caplog
    ):
        monkeypatch.setenv(_POOL_WORKER_ENV, "1")
        with caplog.at_level(logging.WARNING, logger="repro.sim.parallel"):
            assert resolve_n_jobs(4) == 1
        assert "clamping to 1" in caplog.text

    def test_resolve_n_jobs_unclamped_outside_workers(self, monkeypatch):
        monkeypatch.delenv(_POOL_WORKER_ENV, raising=False)
        assert resolve_n_jobs(4) == 4


class TestTelemetry:
    def test_scheduler_counters_on_active_registry(self, tmp_path):
        registry = obs.MetricsRegistry()
        spec = tiny_spec()
        with obs.activate(registry):
            run_campaign_scheduled(spec, tmp_path / "camp", n_jobs=2)
        counters = registry.counters
        # 2 cells x 2 repetitions, dispatched as (cell, repetition) units.
        assert counters["campaign.units_dispatched"] == 4
        assert counters["campaign.cells_completed"] == 2
        assert (
            counters.get("campaign.world_cache_hits", 0)
            + counters.get("campaign.world_cache_misses", 0)
        ) == 4
        assert registry.gauges["campaign.cells_in_flight"] == 0
        # Work-item telemetry streamed back from the workers still merges
        # into the parent registry (decision spans prove the merge ran).
        assert any(name.startswith("sim.") for name in counters)


def test_unit_grouping_is_invisible_in_results(tmp_path):
    """One worker vs many: any unit interleaving yields the same bytes."""
    spec = tiny_spec()
    one = run_campaign_scheduled(spec, tmp_path / "one", n_jobs=1)
    many = run_campaign_scheduled(spec, tmp_path / "many", n_jobs=4)
    assert one.complete and many.complete
    assert summary_bytes(tmp_path / "one", spec) == summary_bytes(
        tmp_path / "many", spec
    )


def test_failed_items_never_persist_snapshots(tmp_path, crashy_registered):
    spec = tiny_spec(
        scenario=ScenarioSpec(
            **{**TINY, "controllers": ("Greedy_GD", "Crashy")}
        )
    )
    run_campaign_scheduled(spec, tmp_path / "camp", n_jobs=2)
    broken = cell_directory(tmp_path / "camp", "n_stations=12")
    # Only Greedy_GD's items (controller index 0) reached the tree.
    names = sorted(p.name for p in broken.glob("rep*-ctrl*.npz"))
    assert names == ["rep00000-ctrl000.npz", "rep00001-ctrl000.npz"]


def test_numpy_state_unaffected_by_scheduler(tmp_path):
    """The scheduler must not touch the global numpy RNG."""
    np.random.seed(123)  # repro: allow[DET002] -- the global RNG is the test subject
    before = np.random.get_state()[1].copy()  # repro: allow[DET002] -- inspecting, not drawing
    run_campaign_scheduled(tiny_spec(), tmp_path / "camp", n_jobs=2)
    after = np.random.get_state()[1]  # repro: allow[DET002] -- inspecting, not drawing
    assert (before == after).all()
