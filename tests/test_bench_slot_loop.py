"""Tier-1 smoke test of the slot-loop benchmark (schema and stages).

Runs ``benchmarks/bench_slot_loop.py`` in its ``--quick`` configuration so
the benchmark cannot rot: every stage must execute and emit the trajectory
schema that ``BENCH_pr*.json`` files at the repo root follow.  Speedup
*magnitudes* are not asserted here — at smoke sizes they are noise; the
committed ``BENCH_pr6.json`` records the real measurement.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_slot_loop import PR, QUICK_CONFIG, SCHEMA, main, run_benchmark

EXPECTED_STAGES = {
    "bursty_demand_10k",
    "slot_loop_10k",
    "slot_loop_100k",
    "lp_sequence_warm_start",
}


@pytest.fixture(scope="module")
def result():
    return run_benchmark(QUICK_CONFIG)


class TestBenchmarkSchema:
    def test_envelope(self, result):
        assert result["schema"] == SCHEMA
        assert result["pr"] == PR
        assert isinstance(result["commit"], str) and result["commit"]
        assert result["config"] == QUICK_CONFIG

    def test_stages_complete(self, result):
        assert {s["stage"] for s in result["stages"]} == EXPECTED_STAGES

    def test_stage_fields(self, result):
        for stage in result["stages"]:
            assert stage["baseline_median_seconds"] > 0
            assert stage["fast_median_seconds"] > 0
            assert stage["speedup"] == pytest.approx(
                stage["baseline_median_seconds"] / stage["fast_median_seconds"]
            )

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(result))
        assert json.loads(path.read_text()) == result


class TestCommittedTrajectory:
    def test_bench_pr6_recorded(self):
        """The committed trajectory point meets the PR's acceptance bar:
        >= 10x on the 10^4-request slot loop, and the 10^5-request engine
        stage recorded (i.e. a run at that scale completed)."""
        path = Path(__file__).resolve().parents[1] / "BENCH_pr6.json"
        recorded = json.loads(path.read_text())
        assert recorded["schema"] == SCHEMA
        assert recorded["pr"] == PR
        stages = {s["stage"]: s for s in recorded["stages"]}
        assert stages["slot_loop_10k"]["speedup"] >= 10.0
        assert stages["slot_loop_100k"]["fast_median_seconds"] > 0
        assert stages["lp_sequence_warm_start"]["speedup"] >= 1.0


class TestCli:
    def test_quick_writes_output(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        main(["--quick", "--output", str(out)])
        written = json.loads(out.read_text())
        assert written["schema"] == SCHEMA
        assert {s["stage"] for s in written["stages"]} == EXPECTED_STAGES
