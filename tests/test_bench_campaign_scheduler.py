"""Tier-1 smoke test of the campaign-scheduler benchmark (schema, stages).

Runs ``benchmarks/bench_campaign_scheduler.py`` in its ``--quick``
configuration so the benchmark cannot rot: both stages must execute and
emit the trajectory schema the ``BENCH_pr*.json`` files at the repo root
follow.  Speedup *magnitudes* are not asserted at smoke sizes — the
committed ``BENCH_pr8.json`` records the real measurement, and its
acceptance bar (>= 2x at equal worker count, byte-identical summaries)
is pinned here instead.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_campaign_scheduler import (
    PR,
    QUICK_CONFIG,
    SCHEMA,
    main,
    run_benchmark,
)

EXPECTED_STAGES = {"campaign_global_scheduler", "lp_capacity_patch"}


@pytest.fixture(scope="module")
def result():
    return run_benchmark(QUICK_CONFIG)


class TestBenchmarkSchema:
    def test_envelope(self, result):
        assert result["schema"] == SCHEMA
        assert result["pr"] == PR
        assert isinstance(result["commit"], str) and result["commit"]
        assert result["config"] == QUICK_CONFIG

    def test_stages_complete(self, result):
        assert {s["stage"] for s in result["stages"]} == EXPECTED_STAGES

    def test_stage_fields(self, result):
        for stage in result["stages"]:
            assert stage["baseline_median_seconds"] > 0
            assert stage["fast_median_seconds"] > 0
            assert stage["speedup"] == pytest.approx(
                stage["baseline_median_seconds"] / stage["fast_median_seconds"]
            )

    def test_campaign_stage_checked_for_equality(self, result):
        stage = next(
            s for s in result["stages"]
            if s["stage"] == "campaign_global_scheduler"
        )
        # run_benchmark refuses to record the stage unless the two result
        # trees were byte-identical; the flag pins that the check ran.
        assert stage["summaries_identical"] is True
        assert stage["n_cells"] == len(QUICK_CONFIG["station_grid"])
        assert stage["n_items"] == (
            stage["n_cells"]
            * QUICK_CONFIG["repetitions"]
            * len(QUICK_CONFIG["controllers"])
        )

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(result))
        assert json.loads(path.read_text()) == result


class TestCommittedTrajectory:
    def test_bench_pr8_recorded(self):
        """The committed trajectory point meets the PR's acceptance bar:
        >= 2x wall-clock on the multi-cell campaign at equal total worker
        count, with the byte-identity check recorded as having passed."""
        path = Path(__file__).resolve().parents[1] / "BENCH_pr8.json"
        recorded = json.loads(path.read_text())
        assert recorded["schema"] == SCHEMA
        assert recorded["pr"] == PR
        stages = {s["stage"]: s for s in recorded["stages"]}
        campaign = stages["campaign_global_scheduler"]
        assert campaign["speedup"] >= 2.0
        assert campaign["summaries_identical"] is True
        assert recorded["config"]["n_jobs"] >= 2
        assert stages["lp_capacity_patch"]["speedup"] >= 1.0


class TestCli:
    def test_quick_writes_output(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        main(["--quick", "--output", str(out)])
        written = json.loads(out.read_text())
        assert written["schema"] == SCHEMA
        assert {s["stage"] for s in written["stages"]} == EXPECTED_STAGES
