"""The ``repro.api`` facade: the API-stability surface, pinned.

Everything in ``repro.api.__all__`` must resolve, be importable in one
statement, and be *the same object* as the layer-package export it
fronts — so isinstance checks and registry registrations interoperate
whichever import path a user picks.
"""

import importlib

import pytest

import repro.api as api

#: facade name -> home package whose export it must alias exactly.
HOMES = {
    "make_controller": "repro.core",
    "register_controller": "repro.core",
    "Controller": "repro.core",
    "make_topology": "repro.mec",
    "register_topology": "repro.mec",
    "MECNetwork": "repro.mec",
    "make_workload": "repro.workload",
    "register_workload": "repro.workload",
    "DemandModel": "repro.workload",
    "make_predictor": "repro.prediction",
    "register_predictor": "repro.prediction",
    "RunConfig": "repro.sim",
    "run_simulation": "repro.sim",
    "run_repetitions": "repro.sim",
    "compare_controllers": "repro.sim",
    "SimulationResult": "repro.sim",
    "RepetitionStudy": "repro.sim",
    "run_campaign": "repro.campaigns",
    "CampaignSpec": "repro.campaigns",
    "CampaignResult": "repro.campaigns",
    "ScenarioSpec": "repro.campaigns",
    "load_campaign_toml": "repro.campaigns",
    "ServeConfig": "repro.serve",
    "serve": "repro.serve",
    "DecisionServer": "repro.serve",
    "Placement": "repro.serve",
    "RngRegistry": "repro.utils.seeding",
}


class TestFacade:
    def test_every_export_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_all_is_complete_and_duplicate_free(self):
        assert len(api.__all__) == len(set(api.__all__))
        # every documented home-package name is exported, and the facade
        # exports nothing this test does not know the home of
        assert set(HOMES) == set(api.__all__)

    @pytest.mark.parametrize("name", sorted(HOMES))
    def test_facade_aliases_the_home_package(self, name):
        home = importlib.import_module(HOMES[name])
        assert getattr(api, name) is getattr(home, name)

    def test_quickstart_import_line(self):
        # the README quickstart import, verbatim
        from repro.api import (  # noqa: F401
            RunConfig,
            ServeConfig,
            make_controller,
            make_predictor,
            make_topology,
            make_workload,
            run_campaign,
            run_repetitions,
            run_simulation,
            serve,
        )

    def test_facade_world_runs(self):
        # a minimal end-to-end through facade names only
        from repro.mec.requests import Request

        rngs = api.RngRegistry(seed=11)
        network = api.MECNetwork.synthetic(8, 2, rngs)
        rng = rngs.get("requests")
        requests = [
            Request(
                index=i,
                service_index=int(rng.integers(2)),
                basic_demand_mb=float(rng.uniform(1.0, 2.0)),
                hotspot_index=i % 2,
            )
            for i in range(6)
        ]
        model = api.make_workload("bursty", requests, rngs.get("demand"))
        controller = api.make_controller(
            "OL_GD", network, requests, rngs.get("ctrl")
        )
        result = api.run_simulation(
            network, model, controller, 3, config=api.RunConfig()
        )
        assert isinstance(result, api.SimulationResult)
        assert result.horizon == 3
