"""Tier-1 smoke test of the serving benchmark (schema and stages).

Runs ``benchmarks/bench_serve.py`` in its ``--quick`` configuration so
the benchmark cannot rot: every stage must execute and emit the
trajectory schema the ``BENCH_pr*.json`` files at the repo root follow.
Throughput *magnitudes* are not asserted — at smoke sizes they are
noise; the committed ``BENCH_pr10.json`` records the real measurement.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_serve import PR, QUICK_CONFIG, SCHEMA, main, run_benchmark

EXPECTED_STAGES = {
    "serve_inproc_throughput",
    "serve_dispatch_throughput",
    "serve_tcp_throughput",
    "serve_checkpoint_latency",
}


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    return run_benchmark(QUICK_CONFIG, tmp_path_factory.mktemp("bench-serve"))


class TestBenchmarkSchema:
    def test_envelope(self, result):
        assert result["schema"] == SCHEMA
        assert result["pr"] == PR
        assert isinstance(result["commit"], str) and result["commit"]
        assert result["config"] == QUICK_CONFIG

    def test_stages_complete(self, result):
        assert {s["stage"] for s in result["stages"]} == EXPECTED_STAGES

    def test_stage_fields(self, result):
        for stage in result["stages"]:
            assert stage["median_seconds"] > 0
        by_name = {s["stage"]: s for s in result["stages"]}
        for name in (
            "serve_inproc_throughput",
            "serve_dispatch_throughput",
            "serve_tcp_throughput",
        ):
            assert by_name[name]["requests_per_second"] > 0
        checkpoint = by_name["serve_checkpoint_latency"]
        assert checkpoint["save_median_seconds"] > 0
        assert checkpoint["restore_median_seconds"] > 0

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(result))
        assert json.loads(path.read_text()) == result


class TestCommittedTrajectory:
    def test_bench_pr10_recorded(self):
        """The committed trajectory point: the serving stack sustains a
        measured requests/sec figure at every depth (in-process API,
        JSON dispatch, TCP), and a warm restart completes."""
        path = Path(__file__).resolve().parents[1] / "BENCH_pr10.json"
        recorded = json.loads(path.read_text())
        assert recorded["schema"] == SCHEMA
        assert recorded["pr"] == PR
        stages = {s["stage"]: s for s in recorded["stages"]}
        assert stages["serve_inproc_throughput"]["requests_per_second"] > 0
        assert stages["serve_tcp_throughput"]["requests_per_second"] > 0
        assert stages["serve_checkpoint_latency"]["restore_median_seconds"] > 0


class TestCli:
    def test_quick_writes_output(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        main(["--quick", "--output", str(out)])
        written = json.loads(out.read_text())
        assert written["schema"] == SCHEMA
        assert {s["stage"] for s in written["stages"]} == EXPECTED_STAGES
