"""Tests for scripted failure injection."""

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import FailureSchedule, run_with_failures
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


@pytest.fixture
def world():
    rngs = RngRegistry(seed=53)
    network = MECNetwork.synthetic(10, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=1.0,
        )
        for i in range(5)
    ]
    return rngs, network, requests


class TestFailureSchedule:
    def test_factor_inside_window(self):
        schedule = FailureSchedule().add_outage(3, start=5, duration=4)
        assert schedule.capacity_factor(3, 5) == 0.0
        assert schedule.capacity_factor(3, 8) == 0.0
        assert schedule.capacity_factor(3, 9) == 1.0
        assert schedule.capacity_factor(3, 4) == 1.0

    def test_partial_degradation(self):
        schedule = FailureSchedule().add_outage(
            1, start=0, duration=2, remaining_fraction=0.5
        )
        assert schedule.capacity_factor(1, 0) == 0.5

    def test_overlapping_windows_take_most_severe(self):
        schedule = (
            FailureSchedule()
            .add_outage(1, start=0, duration=10, remaining_fraction=0.5)
            .add_outage(1, start=3, duration=2, remaining_fraction=0.1)
        )
        assert schedule.capacity_factor(1, 4) == 0.1
        assert schedule.capacity_factor(1, 6) == 0.5

    def test_other_station_unaffected(self):
        schedule = FailureSchedule().add_outage(1, start=0, duration=5)
        assert schedule.capacity_factor(2, 0) == 1.0

    def test_affected_stations(self):
        schedule = (
            FailureSchedule()
            .add_outage(4, start=1, duration=2)
            .add_outage(2, start=1, duration=2)
        )
        assert schedule.affected_stations(1) == [2, 4]
        assert schedule.affected_stations(0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureSchedule().add_outage(0, start=0, duration=0)
        with pytest.raises(ValueError):
            FailureSchedule().add_outage(0, start=0, duration=1, remaining_fraction=1.0)


class TestRunWithFailures:
    def test_controller_routes_around_outage(self, world):
        rngs, network, requests = world
        controller = OlGdController(network, requests, rngs.get("ctrl"))
        model = ConstantDemandModel(requests)
        # Find the station the controller likes, then kill it mid-run.
        warm = controller.decide(0, model.demand_at(0))
        victim = int(np.bincount(warm.station_of).argmax())
        schedule = FailureSchedule().add_outage(victim, start=3, duration=4)

        fresh = OlGdController(network, requests, rngs.fresh("ctrl"))
        result = run_with_failures(
            network, model, fresh, horizon=8, failures=schedule
        )
        assert result.horizon == 8
        assert np.all(np.isfinite(result.delays_ms))

    def test_capacities_restored_after_run(self, world):
        rngs, network, requests = world
        before = [bs.capacity_mhz for bs in network.stations]
        schedule = FailureSchedule().add_outage(0, start=0, duration=3)
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        run_with_failures(
            network,
            ConstantDemandModel(requests),
            controller,
            horizon=4,
            failures=schedule,
        )
        after = [bs.capacity_mhz for bs in network.stations]
        assert before == after

    def test_capacities_restored_on_error(self, world):
        rngs, network, requests = world

        class Exploding(GreedyController):
            def decide(self, slot, demands):
                if slot == 2:
                    raise RuntimeError("boom")
                return super().decide(slot, demands)

        before = [bs.capacity_mhz for bs in network.stations]
        schedule = FailureSchedule().add_outage(0, start=0, duration=5)
        controller = Exploding(network, requests, rngs.get("ctrl"))
        with pytest.raises(RuntimeError, match="boom"):
            run_with_failures(
                network,
                ConstantDemandModel(requests),
                controller,
                horizon=5,
                failures=schedule,
            )
        assert [bs.capacity_mhz for bs in network.stations] == before

    def test_cached_lp_respects_outage_capacity(self, world):
        """Regression: OL_GD's lazily cached PerSlotLpSolver snapshotted
        capacities at construction, so mid-horizon outages were invisible
        to the LP.  The fractional solution must respect the degraded
        capacity inside the outage window."""
        rngs, network, requests = world
        model = ConstantDemandModel(requests)
        outage_slot = 3

        def station_loads(schedule):
            controller = OlGdController(
                network, requests, rngs.fresh("lp-ctrl")
            )
            run_with_failures(
                network, model, controller, horizon=outage_slot + 1, failures=schedule
            )
            # last_fractional is the LP solution of the final (outage) slot.
            demands = model.demand_at(outage_slot)
            x = controller.last_fractional
            return (x * demands[:, None]).sum(axis=0) * network.c_unit_mhz

        # Fail the station the healthy run loads most, so the assertion
        # is non-vacuous: the LP demonstrably wants that station.
        healthy = station_loads(FailureSchedule())
        victim = int(np.argmax(healthy))
        assert healthy[victim] > 1.0

        schedule = FailureSchedule().add_outage(
            victim, start=outage_slot, duration=1, remaining_fraction=0.0
        )
        degraded = station_loads(schedule)
        # The victim is down to zero capacity; the cached LP must place
        # (essentially) nothing there and reroute the displaced load.
        assert degraded[victim] <= 1e-6 + 1e-9

    def test_no_failures_matches_plain_engine(self, world):
        from repro.sim import run_simulation

        rngs, network, requests = world
        model = ConstantDemandModel(requests)
        a = run_with_failures(
            network,
            model,
            GreedyController(network, requests, rngs.fresh("same")),
            horizon=5,
            failures=FailureSchedule(),
        )
        b = run_simulation(
            network,
            model,
            GreedyController(network, requests, rngs.fresh("same")),
            horizon=5,
        )
        np.testing.assert_allclose(a.delays_ms, b.delays_ms)

    def test_outage_raises_delay_during_window(self, world):
        """Killing the favourite stations should hurt while they are gone."""
        rngs, network, requests = world
        model = ConstantDemandModel(requests)
        probe = GreedyController(network, requests, rngs.fresh("probe"))
        favourite = int(
            np.bincount(probe.decide(0, model.demand_at(0)).station_of).argmax()
        )
        schedule = FailureSchedule().add_outage(favourite, start=4, duration=3)
        controller = GreedyController(network, requests, rngs.fresh("probe"))
        result = run_with_failures(
            network, model, controller, horizon=10, failures=schedule
        )
        # The run completes and the victim is unused during the outage.
        # (Delay impact depends on alternatives; the hard guarantee is
        # that nothing was placed on the dead station.)
        # Re-derive the slots' assignments is not recorded; instead check
        # the peak load fraction stayed finite.
        assert np.all(np.isfinite(result.max_load_fractions))
