"""Tests for the autograd Tensor: op semantics and gradient correctness."""

import numpy as np
import pytest

from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor, concat, stack


def param(shape, seed=0, scale=1.0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(0.0, scale, size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestForwardSemantics:
    def test_add_broadcast(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([10.0, 20.0])
        np.testing.assert_array_equal((a + b).data, [[11, 22], [13, 24]])

    def test_scalar_ops(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_array_equal((a * 3).data, [3, 6])
        np.testing.assert_array_equal((1 - a).data, [0, -1])
        np.testing.assert_array_equal((a / 2).data, [0.5, 1.0])
        np.testing.assert_array_equal((6 / a).data, [6.0, 3.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        assert (a @ b).data.item() == 11.0

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError, match="ndim >= 2"):
            Tensor([1.0, 2.0]) @ Tensor([3.0, 4.0])

    def test_mean_and_sum(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert a.sum().item() == 10.0
        assert a.mean().item() == 2.5
        np.testing.assert_array_equal(a.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_array_equal(a.mean(axis=1).data, [1.5, 3.5])

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_backward_requires_scalar_or_grad(self):
        t = param((3,))
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_grad_shape_checked(self):
        t = param((3,))
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones((2,)))

    def test_detach_stops_gradient(self):
        t = param((2,))
        out = (t.detach() * 3).sum()
        assert not out.requires_grad

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            param((2,)) ** param((2,))  # type: ignore[operator]

    def test_getitem(self):
        a = Tensor([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        np.testing.assert_array_equal(a[0].data, [1, 2, 3])
        np.testing.assert_array_equal(a[:, 1:].data, [[2, 3], [5, 6]])

    def test_concat_and_stack(self):
        a, b = Tensor([[1.0], [2.0]]), Tensor([[3.0], [4.0]])
        np.testing.assert_array_equal(concat([a, b], axis=1).data, [[1, 3], [2, 4]])
        np.testing.assert_array_equal(stack([a, b], axis=0).data, [[[1], [2]], [[3], [4]]])

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            concat([])
        with pytest.raises(ValueError):
            stack([])

    def test_zero_grad(self):
        t = param((2,))
        (t.sum()).backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_gradient_accumulates_across_backwards(self):
        t = param((2,))
        t.sum().backward()
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, [2.0, 2.0])


class TestSimpleGradients:
    def test_add_same_tensor_twice(self):
        t = param((3,))
        (t + t).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * np.ones(3))

    def test_chain_rule_value(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x + 3.0 * x).sum()  # dy/dx = 2x + 3 = 7
        y.backward()
        assert x.grad.item() == pytest.approx(7.0)


class TestGradcheckOps:
    """Each primitive op checked against central differences."""

    def test_add(self):
        a, b = param((3, 2), 1), param((3, 2), 2)
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a, b = param((3, 2), 1), param((2,), 2)
        gradcheck(lambda: (a + b).sum(), [a, b])

    def test_mul(self):
        a, b = param((2, 3), 1), param((2, 3), 2)
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_mul_broadcast(self):
        a, b = param((2, 3), 1), param((1, 3), 2)
        gradcheck(lambda: (a * b).sum(), [a, b])

    def test_div(self):
        a, b = param((2, 2), 1), param((2, 2), 2, positive=True)
        gradcheck(lambda: (a / b).sum(), [a, b])

    def test_pow(self):
        a = param((3,), 1, positive=True)
        gradcheck(lambda: (a**3).sum(), [a])

    def test_matmul(self):
        a, b = param((2, 3), 1), param((3, 4), 2)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = param((4, 2, 3), 1), param((4, 3, 2), 2)
        gradcheck(lambda: (a @ b).sum(), [a, b])

    def test_sum_axis(self):
        a = param((3, 4), 1)
        gradcheck(lambda: (a.sum(axis=1) ** 2).sum(), [a])

    def test_mean_axis(self):
        a = param((3, 4), 1)
        gradcheck(lambda: (a.mean(axis=0) ** 2).sum(), [a])

    def test_reshape(self):
        a = param((2, 6), 1)
        gradcheck(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self):
        a = param((2, 3, 4), 1)
        gradcheck(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_getitem_row(self):
        a = param((4, 3), 1)
        gradcheck(lambda: (a[1] ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = param((4, 6), 1)
        gradcheck(lambda: (a[:, 2:5] ** 2).sum(), [a])

    def test_exp(self):
        a = param((3,), 1)
        gradcheck(lambda: a.exp().sum(), [a])

    def test_log(self):
        a = param((3,), 1, positive=True)
        gradcheck(lambda: a.log().sum(), [a])

    def test_tanh(self):
        a = param((3, 3), 1)
        gradcheck(lambda: (a.tanh() ** 2).sum(), [a])

    def test_sigmoid(self):
        a = param((3, 3), 1)
        gradcheck(lambda: (a.sigmoid() ** 2).sum(), [a])

    def test_relu(self):
        # Keep values away from the kink for finite differences.
        a = Tensor([[1.0, -2.0], [3.0, -0.5]], requires_grad=True)
        gradcheck(lambda: (a.relu() * 2).sum(), [a])

    def test_clip_min(self):
        a = Tensor([[1.0, -2.0], [3.0, -0.5]], requires_grad=True)
        gradcheck(lambda: (a.clip_min(0.1) ** 2).sum(), [a])

    def test_concat(self):
        a, b = param((2, 3), 1), param((2, 2), 2)
        gradcheck(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack(self):
        a, b = param((2, 3), 1), param((2, 3), 2)
        gradcheck(lambda: (stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_neg_sub(self):
        a, b = param((2, 2), 1), param((2, 2), 2)
        gradcheck(lambda: (a - b).sum(), [a, b])

    def test_deep_composition(self):
        """A multi-op expression exercising reuse of intermediate nodes."""
        a, b = param((2, 3), 1), param((3, 2), 2)
        def f():
            h = (a @ b).tanh()
            return ((h * h).sum(axis=1) + h.sigmoid().sum(axis=1)).sum()
        gradcheck(f, [a, b])
