"""The on-disk incremental cache: hit/miss accounting, content-hash
keying, transitive import invalidation, analyzer-fingerprint discard,
and corrupt-file degradation."""

import json

from repro.analysis import analyze_paths
from repro.analysis.cache import AnalysisCache, analyzer_fingerprint

TREE = {
    "src/repro/a.py": "from repro.b import f\n\nVALUE = f()\n",
    "src/repro/b.py": "from repro.c import g\n\n\ndef f():\n    return g()\n",
    "src/repro/c.py": "def g():\n    return 1\n",
}


def write_tree(root, files=TREE):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root / "src"


def run(tmp_path, **kwargs):
    stats = {}
    findings = analyze_paths(
        [tmp_path / "src"],
        root=tmp_path,
        cache_path=tmp_path / "cache.json",
        stats=stats,
        **kwargs,
    )
    return findings, stats


class TestHitMiss:
    def test_cold_then_warm(self, tmp_path):
        write_tree(tmp_path)
        _, cold = run(tmp_path)
        assert cold["cache"] == {"enabled": True, "hits": 0, "misses": 3}
        _, warm = run(tmp_path)
        assert warm["cache"] == {"enabled": True, "hits": 3, "misses": 0}

    def test_warm_run_reports_identical_findings(self, tmp_path):
        write_tree(
            tmp_path,
            {**TREE, "src/repro/bad.py": "def f(xs=[]):\n    return xs\n"},
        )
        cold_findings, _ = run(tmp_path)
        warm_findings, warm = run(tmp_path)
        assert warm["cache"]["hits"] == 4
        assert warm_findings == cold_findings
        assert [f.rule for f in warm_findings] == ["API001"]

    def test_suppressions_survive_a_cache_round_trip(self, tmp_path):
        write_tree(
            tmp_path,
            {
                **TREE,
                "src/repro/ok.py": (
                    "def f(xs=[]):  # repro: allow[API001] -- fixture\n"
                    "    return xs\n"
                ),
            },
        )
        cold_findings, _ = run(tmp_path)
        warm_findings, _ = run(tmp_path)
        assert cold_findings == warm_findings == []

    def test_content_edit_misses_only_that_file(self, tmp_path):
        write_tree(tmp_path)
        run(tmp_path)
        (tmp_path / "src/repro/a.py").write_text("VALUE = 2\n")
        _, stats = run(tmp_path)
        assert stats["cache"] == {"enabled": True, "hits": 2, "misses": 1}


class TestInvalidation:
    def entry(self, tmp_path, rel):
        payload = json.loads((tmp_path / "cache.json").read_text())
        return payload["files"][rel]

    def test_editing_a_dep_refreshes_importers_dep_digest(self, tmp_path):
        write_tree(tmp_path)
        run(tmp_path)
        before_a = self.entry(tmp_path, "src/repro/a.py")
        before_c = self.entry(tmp_path, "src/repro/c.py")
        (tmp_path / "src/repro/c.py").write_text("def g():\n    return 2\n")
        run(tmp_path)
        after_a = self.entry(tmp_path, "src/repro/a.py")
        after_c = self.entry(tmp_path, "src/repro/c.py")
        # a.py's bytes are unchanged but its transitive closure is not:
        # the stored dep digest must track the edit through b.py.
        assert after_a["digest"] == before_a["digest"]
        assert after_a["dep_digest"] != before_a["dep_digest"]
        assert after_c["digest"] != before_c["digest"]

    def test_fingerprint_mismatch_discards_the_cache(self, tmp_path):
        write_tree(tmp_path)
        run(tmp_path)
        cache_file = tmp_path / "cache.json"
        payload = json.loads(cache_file.read_text())
        assert payload["analyzer"] == analyzer_fingerprint()
        payload["analyzer"] = "stale-analyzer"
        cache_file.write_text(json.dumps(payload))
        _, stats = run(tmp_path)
        assert stats["cache"] == {"enabled": True, "hits": 0, "misses": 3}

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        write_tree(tmp_path)
        (tmp_path / "cache.json").write_text("{not json")
        findings, stats = run(tmp_path)
        assert findings == []
        assert stats["cache"]["misses"] == 3

    def test_explicit_rule_subset_bypasses_the_cache(self, tmp_path):
        from repro.analysis import rule_by_id

        write_tree(tmp_path)
        _, stats = run(tmp_path, rules=[rule_by_id("API001")])
        assert stats["cache"] == {"enabled": False, "hits": 0, "misses": 0}
        assert not (tmp_path / "cache.json").exists()

    def test_no_cache_flag_means_no_file(self, tmp_path):
        write_tree(tmp_path)
        stats = {}
        analyze_paths([tmp_path / "src"], root=tmp_path, stats=stats)
        assert stats["cache"]["enabled"] is False
        assert not (tmp_path / ".repro-analysis-cache.json").exists()


class TestStore:
    def test_narrower_scan_drops_out_of_scope_entries(self, tmp_path):
        write_tree(tmp_path)
        run(tmp_path)
        stats = {}
        analyze_paths(
            [tmp_path / "src/repro/a.py"],
            root=tmp_path,
            cache_path=tmp_path / "cache.json",
            stats=stats,
        )
        payload = json.loads((tmp_path / "cache.json").read_text())
        assert sorted(payload["files"]) == ["src/repro/a.py"]

    def test_readonly_location_degrades_silently(self, tmp_path):
        write_tree(tmp_path)
        missing_dir = tmp_path / "no" / "such" / "dir" / "cache.json"
        store = AnalysisCache.load(missing_dir)
        store.replace([])
        store.save()  # must not raise
        assert not missing_dir.exists()
