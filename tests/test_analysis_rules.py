"""Fixture tests: every rule fires on a minimal violating snippet and
stays silent on the corrected form.

Each case passes a *fake path* so the snippet lands in the rule's scope
(rules are scoped by subpackage — see ``docs/STATIC_ANALYSIS.md``), and
runs exactly one rule so findings are unambiguous.
"""

import textwrap

from repro.analysis import analyze_source, rule_by_id

CORE = "src/repro/core/example.py"
GAN = "src/repro/gan/example.py"
NN = "src/repro/nn/example.py"
SIM = "src/repro/sim/example.py"
WORKLOAD = "src/repro/workload/example.py"
EXPERIMENTS = "src/repro/experiments/example.py"
TESTS = "tests/test_example.py"


def run(rule_id, source, path):
    rule = rule_by_id(rule_id)
    return analyze_source(textwrap.dedent(source), path, rules=[rule])


def assert_fires(rule_id, source, path, times=1):
    findings = run(rule_id, source, path)
    assert [f.rule for f in findings] == [rule_id] * times, findings


def assert_silent(rule_id, source, path):
    assert run(rule_id, source, path) == []


class TestModuleLevelRng:
    BAD = """
        import numpy as np
        _RNG = np.random.default_rng(0)
    """
    GOOD = """
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
    """

    def test_fires_on_module_level_construction(self):
        assert_fires("DET001", self.BAD, CORE)

    def test_silent_inside_function(self):
        assert_silent("DET001", self.GOOD, CORE)

    def test_fires_in_default_argument(self):
        source = """
            import numpy as np

            def f(rng=np.random.default_rng(0)):
                return rng
        """
        assert_fires("DET001", source, CORE)

    def test_fires_in_class_body(self):
        source = """
            import numpy as np

            class Config:
                rng = np.random.default_rng(7)
        """
        assert_fires("DET001", source, CORE)

    def test_out_of_scope_path_silent(self):
        assert_silent("DET001", self.BAD, TESTS)


class TestLegacyGlobalRng:
    BAD = """
        import numpy as np

        def f():
            np.random.seed(0)
            return np.random.rand(3)
    """
    GOOD = """
        import numpy as np

        def f(rng: np.random.Generator):
            return rng.random(3)
    """

    def test_fires_on_global_api(self):
        assert_fires("DET002", self.BAD, TESTS, times=2)

    def test_silent_on_generator_api(self):
        assert_silent("DET002", self.GOOD, TESTS)

    def test_seed_sequence_allowed(self):
        source = """
            import numpy as np
            SEQ = np.random.SeedSequence(entropy=(1, 2))
        """
        assert_silent("DET002", source, TESTS)


class TestStdlibRandom:
    BAD = "import random\n"
    BAD_FROM = "from random import shuffle\n"
    GOOD = "import numpy as np\n"

    def test_fires_in_protected_package(self):
        assert_fires("DET003", self.BAD, SIM)
        assert_fires("DET003", self.BAD_FROM, CORE)

    def test_silent_outside_protected_packages(self):
        assert_silent("DET003", self.BAD, EXPERIMENTS)

    def test_silent_on_numpy(self):
        assert_silent("DET003", self.GOOD, SIM)


class TestWallClock:
    BAD_TIME = """
        import time

        def slot_id():
            return int(time.time())
    """
    BAD_DATETIME = """
        from datetime import datetime

        def stamp():
            return datetime.now()
    """
    GOOD = """
        import time

        def lap():
            return time.perf_counter()
    """

    def test_fires_on_time_time(self):
        assert_fires("DET004", self.BAD_TIME, CORE)

    def test_fires_on_datetime_now(self):
        assert_fires("DET004", self.BAD_DATETIME, WORKLOAD)

    def test_perf_counter_allowed(self):
        assert_silent("DET004", self.GOOD, SIM)

    def test_silent_outside_protected_packages(self):
        assert_silent("DET004", self.BAD_TIME, EXPERIMENTS)


class TestRngConstruction:
    BAD = """
        import numpy as np

        def decide(seed):
            rng = np.random.default_rng(seed)
            return rng.random()
    """
    GOOD = """
        import numpy as np

        def decide(rng: np.random.Generator):
            return rng.random()
    """

    def test_fires_in_threaded_package(self):
        assert_fires("DET005", self.BAD, CORE)

    def test_fires_in_cli(self):
        assert_fires("DET005", self.BAD, "src/repro/cli.py")

    def test_silent_when_rng_is_threaded(self):
        assert_silent("DET005", self.GOOD, CORE)

    def test_counter_based_sites_are_sanctioned(self):
        assert_silent("DET005", self.BAD, WORKLOAD)


class TestTensorDataMutation:
    BAD = """
        def clamp(t, v):
            t.data[0] = v
    """
    BAD_AUGMENTED = """
        def scale(t):
            t.data *= 2.0
    """
    GOOD = """
        from repro.nn.tensor import no_grad

        def clamp(t, v):
            with no_grad():
                t.data[0] = v
    """

    def test_fires_on_subscript_store(self):
        assert_fires("AG001", self.BAD, GAN)

    def test_fires_on_augmented_assignment(self):
        assert_fires("AG001", self.BAD_AUGMENTED, GAN)

    def test_silent_under_no_grad(self):
        assert_silent("AG001", self.GOOD, GAN)

    def test_repro_nn_is_exempt(self):
        assert_silent("AG001", self.BAD, NN)


class TestTensorDataRead:
    BAD = """
        def detach_by_accident(t):
            return t.data + 1.0
    """
    GOOD = """
        from repro.nn.tensor import no_grad

        def readout(t):
            with no_grad():
                return t.data + 1.0
    """

    def test_fires_on_raw_read(self):
        assert_fires("AG002", self.BAD, GAN)

    def test_silent_under_no_grad(self):
        assert_silent("AG002", self.GOOD, GAN)

    def test_metadata_reads_allowed(self):
        source = """
            def width(t):
                return t.data.shape[1], t.data.dtype
        """
        assert_silent("AG002", source, GAN)

    def test_repro_nn_is_exempt(self):
        assert_silent("AG002", self.BAD, NN)


class TestObsLiteralName:
    BAD = """
        from repro import obs

        def work(slot):
            with obs.span(f"sim.slot.{slot}"):
                pass
    """
    GOOD = """
        from repro import obs

        def work():
            with obs.span("sim.slot"):
                obs.inc("sim.slots")
    """

    def test_fires_on_fstring_name(self):
        assert_fires("OBS001", self.BAD, SIM)

    def test_silent_on_literal_names(self):
        assert_silent("OBS001", self.GOOD, SIM)

    def test_fires_on_bare_imported_helper(self):
        source = """
            from repro.obs import inc

            def work(kind):
                inc("prefix." + kind)
        """
        assert_fires("OBS001", source, SIM)

    def test_unrelated_span_methods_ignored(self):
        source = """
            def work(registry, name):
                registry.span(name)
        """
        assert_silent("OBS001", source, SIM)


class TestMutableDefault:
    BAD = """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
    """
    GOOD = """
        def collect(item, bucket=None):
            if bucket is None:
                bucket = []
            bucket.append(item)
            return bucket
    """

    def test_fires_on_list_default(self):
        assert_fires("API001", self.BAD, TESTS)

    def test_fires_on_dict_call_default(self):
        assert_fires("API001", "def f(cache=dict()):\n    return cache\n", TESTS)

    def test_silent_on_none_default(self):
        assert_silent("API001", self.GOOD, TESTS)

    def test_fires_on_keyword_only_default(self):
        assert_fires("API001", "def f(*, xs={}):\n    return xs\n", TESTS)


class TestPublicAnnotations:
    BAD = """
        def decide(demands):
            return demands
    """
    GOOD = """
        import numpy as np

        def decide(demands: np.ndarray) -> np.ndarray:
            return demands
    """

    def test_fires_on_unannotated_public_function(self):
        assert_fires("API002", self.BAD, CORE)

    def test_silent_when_fully_annotated(self):
        assert_silent("API002", self.GOOD, SIM)

    def test_private_functions_exempt(self):
        assert_silent("API002", "def _helper(x):\n    return x\n", CORE)

    def test_fires_on_public_method(self):
        source = """
            class Controller:
                def decide(self, demands):
                    return demands
        """
        assert_fires("API002", source, CORE)

    def test_dunders_exempt(self):
        source = """
            class Controller:
                def __init__(self, k):
                    self.k = k
        """
        assert_silent("API002", source, CORE)

    def test_out_of_scope_package_silent(self):
        assert_silent("API002", self.BAD, GAN)


class TestKeywordOnlyFlags:
    BAD = """
        def run(network, horizon: int, demands_known: bool = True,
                compute_optimal: bool = False) -> None:
            return None
    """
    GOOD = """
        def run(network, horizon: int, *, demands_known: bool = True,
                compute_optimal: bool = False) -> None:
            return None
    """

    def test_fires_on_positional_flag_pair(self):
        assert_fires("API003", self.BAD, CORE)

    def test_silent_when_keyword_only(self):
        assert_silent("API003", self.GOOD, SIM)

    def test_single_flag_allowed_positionally(self):
        assert_silent(
            "API003",
            "def run(network, demands_known: bool = True) -> None:\n"
            "    return None\n",
            CORE,
        )

    def test_counts_none_defaults_as_flags(self):
        source = """
            def run(network, metrics=None, checkpoint=None) -> None:
                return None
        """
        assert_fires("API003", source, SIM)

    def test_fires_on_public_init(self):
        source = """
            class Controller:
                def __init__(self, network, gamma=None, exploration=None):
                    self.network = network
        """
        assert_fires("API003", source, CORE)

    def test_mixed_positional_and_keyword_flags_fire(self):
        source = """
            def run(network, demands_known: bool = True, *,
                    compute_optimal: bool = False) -> None:
                return None
        """
        assert_fires("API003", source, CORE)

    def test_non_flag_defaults_ignored(self):
        source = """
            def run(network, gamma: float = 0.1, order: int = 5) -> None:
                return None
        """
        assert_silent("API003", source, CORE)

    def test_private_functions_exempt(self):
        assert_silent("API003", self.BAD.replace("def run", "def _run"), CORE)

    def test_out_of_scope_package_silent(self):
        assert_silent("API003", self.BAD, GAN)
