"""Equivalence tests pinning the vectorised hot path to scalar references.

PR 6 vectorised the simulation slot loop (demand realisation, cache-set
derivation, Eq. (3) evaluation, the failure-injection loop).  These tests
pin every vectorised path **bit-identical in float64** to the scalar
formulation it replaced, so future edits to the fast path cannot silently
change realised trajectories:

* ``BurstyDemandModel.bursty_at`` vs the pinned ``bursty_at_scalar``
  (both amplitude modes, flash crowds, solo requests);
* ``Assignment.from_stations``'s packed-code cache-set derivation vs the
  per-request python set loop;
* ``Assignment.loads_mhz``'s bincount vs the former ``np.add.at``;
* ``SlotEvaluator.evaluate`` vs a from-scratch scalar spelling of the
  extended Eq. (3);
* ``run_with_failures`` vs an inline reference loop applying the outage
  capacity factors by hand.
"""

import numpy as np
import pytest

from repro.core.assignment import Assignment, SlotEvaluator, service_indices
from repro.core.controller import Controller
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import FailureSchedule, run_with_failures
from repro.utils.seeding import RngRegistry
from repro.workload.bursty import FlashCrowdSchedule
from repro.workload.demand import BurstyDemandModel, ConstantDemandModel

N_HOTSPOTS = 11  # > 10 so string-sorted hotspot keys would interleave


def make_requests(n=150, n_services=3, seed=0):
    """Request mix with many hotspots and a sprinkle of solo users."""
    rng = np.random.default_rng(seed)
    return [
        Request(
            index=i,
            service_index=int(rng.integers(n_services)),
            basic_demand_mb=float(rng.uniform(0.5, 2.0)),
            hotspot_index=None if i % 10 == 9 else i % N_HOTSPOTS,
        )
        for i in range(n)
    ]


def make_world(seed=21, n_stations=8, n_services=3, n_requests=60):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, n_services, rngs)
    requests = make_requests(n_requests, n_services, seed)
    return network, requests


class TestDemandEquivalence:
    @pytest.mark.parametrize("amplitude_mode", ["slot", "episode"])
    @pytest.mark.parametrize("with_crowds", [False, True])
    def test_bursty_at_bit_identical_to_scalar(self, amplitude_mode, with_crowds):
        schedule = None
        if with_crowds:
            schedule = (
                FlashCrowdSchedule()
                .add_event(0, start=2, duration=3, amplitude_mb=5.0)
                .add_event(10, start=4, duration=2, amplitude_mb=3.0)
            )
        model = BurstyDemandModel(
            make_requests(),
            np.random.default_rng(33),
            flash_crowds=schedule,
            amplitude_mode=amplitude_mode,
        )
        for t in range(40):
            np.testing.assert_array_equal(
                model.bursty_at(t), model.bursty_at_scalar(t)
            )

    def test_demand_at_bit_identical_to_scalar_composition(self):
        model = BurstyDemandModel(make_requests(), np.random.default_rng(34))
        for t in range(20):
            np.testing.assert_array_equal(
                model.demand_at(t), model.basic_demands + model.bursty_at_scalar(t)
            )

    def test_constant_model_demand_is_basic(self):
        model = ConstantDemandModel(make_requests())
        for t in range(5):
            np.testing.assert_array_equal(model.demand_at(t), model.basic_demands)

    def test_all_solo_requests(self):
        requests = make_requests(30)
        solo = [
            Request(
                index=r.index,
                service_index=r.service_index,
                basic_demand_mb=r.basic_demand_mb,
                hotspot_index=None,
            )
            for r in requests
        ]
        model = BurstyDemandModel(solo, np.random.default_rng(35))
        for t in range(15):
            np.testing.assert_array_equal(
                model.bursty_at(t), model.bursty_at_scalar(t)
            )


class TestAssignmentEquivalence:
    def _world(self):
        network, requests = make_world()
        rng = np.random.default_rng(77)
        stations = rng.integers(0, network.n_stations, size=len(requests))
        return network, requests, stations

    def test_cache_set_matches_python_loop(self):
        _, requests, stations = self._world()
        fast = Assignment.from_stations(stations, requests)
        legacy = frozenset(
            (r.service_index, int(i)) for r, i in zip(requests, stations)
        )
        assert fast.cached == legacy

    def test_cached_array_matches_np_unique_order(self):
        _, requests, stations = self._world()
        fast = Assignment.from_stations(stations, requests)
        pairs = np.stack([service_indices(requests), stations], axis=1)
        np.testing.assert_array_equal(fast.cached_array(), np.unique(pairs, axis=0))

    def test_loads_bit_identical_to_add_at(self):
        network, requests, stations = self._world()
        assignment = Assignment.from_stations(stations, requests)
        demands = np.random.default_rng(78).uniform(0.5, 3.0, len(requests))
        fast = assignment.loads_mhz(
            demands, network.c_unit_mhz, network.n_stations
        )
        reference = np.zeros(network.n_stations)
        np.add.at(reference, stations, demands * network.c_unit_mhz)
        np.testing.assert_array_equal(fast, reference)

    def test_evaluate_bit_identical_to_scalar_reference(self):
        network, requests, stations = self._world()
        assignment = Assignment.from_stations(stations, requests)
        rng = np.random.default_rng(79)
        demands = rng.uniform(0.5, 3.0, len(requests))
        delays = rng.uniform(1.0, 20.0, network.n_stations)

        fast = SlotEvaluator(network, requests).evaluate(
            assignment, demands, delays
        )

        # From-scratch scalar spelling of the extended Eq. (3), with the
        # canonical sorted-pair instantiation order the evaluator pins.
        loads = np.zeros(network.n_stations)
        np.add.at(loads, stations, demands * network.c_unit_mhz)
        overload = np.maximum(loads / network.capacities_mhz, 1.0)
        processing = demands * delays[stations] * overload[stations]
        instantiation = 0.0
        for service, station in sorted(assignment.cached):
            instantiation += network.services.instantiation_matrix[station, service]
        reference = float((processing.sum() + instantiation) / len(requests))
        assert fast == reference

    def test_float32_evaluator_close_to_float64(self):
        network, requests, stations = self._world()
        assignment = Assignment.from_stations(stations, requests)
        rng = np.random.default_rng(80)
        demands = rng.uniform(0.5, 3.0, len(requests))
        delays = rng.uniform(1.0, 20.0, network.n_stations)
        exact = SlotEvaluator(network, requests).evaluate(
            assignment, demands, delays
        )
        single = SlotEvaluator(network, requests, dtype="float32")
        assert single.dtype == np.float32
        assert single.evaluate(assignment, demands, delays) == pytest.approx(
            exact, rel=1e-5
        )


class _StaticRR(Controller):
    """Fixed round-robin placement, so trajectories are world-determined."""

    name = "Static_RR_Test"

    def __init__(self, network, requests):
        super().__init__(network, requests)
        self._stations = np.arange(len(requests)) % network.n_stations

    def decide(self, slot, demands):
        return Assignment.from_stations(
            self._stations, self.requests, service_of=self.service_of
        )

    def observe(self, slot, demands, unit_delays, assignment):
        return None


class TestFailureLoopEquivalence:
    def test_run_with_failures_matches_reference_loop(self):
        network, requests = make_world(seed=41)
        model = BurstyDemandModel(requests, np.random.default_rng(42))
        schedule = (
            FailureSchedule()
            .add_outage(0, start=2, duration=3, remaining_fraction=0.0)
            .add_outage(3, start=4, duration=2, remaining_fraction=0.4)
        )
        horizon = 8
        controller = _StaticRR(network, requests)
        result = run_with_failures(
            network, model, controller, horizon, failures=schedule
        )

        # Reference: re-walk the horizon applying the outage factors by
        # hand (epsilon floor included) over the same deterministic world.
        stations = np.arange(len(requests)) % network.n_stations
        original = [bs.capacity_mhz for bs in network.stations]
        expected = []
        for t in range(horizon):
            caps = np.array(
                [
                    max(original[i] * schedule.capacity_factor(i, t), 1e-6)
                    for i in range(network.n_stations)
                ]
            )
            demands = model.demand_at(t)
            delays = network.delays.sample(t)
            loads = np.zeros(network.n_stations)
            np.add.at(loads, stations, demands * network.c_unit_mhz)
            overload = np.maximum(loads / caps, 1.0)
            processing = demands * delays[stations] * overload[stations]
            cached = sorted(
                {(r.service_index, int(i)) for r, i in zip(requests, stations)}
            )
            instantiation = 0.0
            for service, station in cached:
                instantiation += network.services.instantiation_matrix[
                    station, service
                ]
            expected.append(
                float((processing.sum() + instantiation) / len(requests))
            )

        np.testing.assert_array_equal(result.delays_ms, np.array(expected))
        # The outage must actually bite: slot 2 overloads the survivors.
        assert result.delays_ms[2] > result.delays_ms[0]
        # And the live network is restored afterwards.
        assert [bs.capacity_mhz for bs in network.stations] == original
