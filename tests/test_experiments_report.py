"""Tests for the one-shot reproduction report."""

import dataclasses

import pytest

from repro.experiments import QUICK_PROFILE
from repro.experiments.report import (
    ReproductionReport,
    render_report_markdown,
    run_full_report,
    write_report,
)

TINY = dataclasses.replace(
    QUICK_PROFILE,
    name="tiny",
    horizon=6,
    n_requests=10,
    n_services=2,
    n_hotspots=3,
    base_stations=12,
    sweep_sizes=(10, 14),
    sweep_sizes_wide=(10, 14),
    repetitions=1,
    gan_pretrain_slots=6,
    gan_pretrain_epochs=1,
    gan_window=3,
    gan_hidden=4,
)


class TestRunFullReport:
    def test_subset_run(self):
        report = run_full_report(TINY, only=["fig3"])
        assert set(report.figures) == {"fig3"}
        assert set(report.claims) == {"fig3"}
        assert report.seconds["fig3"] > 0
        assert report.total_claims == 3

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            run_full_report(TINY, only=["fig99"])

    def test_counts_consistent(self):
        report = run_full_report(TINY, only=["fig3", "fig5"])
        assert report.passed_claims <= report.total_claims
        # hard-claim verdict agrees with the failed list
        assert report.all_hard_claims_pass == (not report.failed_hard_claims)


class TestRendering:
    def test_markdown_structure(self):
        report = run_full_report(TINY, only=["fig3"])
        text = render_report_markdown(report)
        assert "# Reproduction report" in text
        assert "## fig3" in text
        assert "| claim | verdict | measured |" in text
        assert "fig3-ordering" in text

    def test_write_report(self, tmp_path):
        report = run_full_report(TINY, only=["fig3"])
        path = write_report(report, tmp_path / "report.md")
        assert path.exists()
        assert "Reproduction report" in path.read_text()


class TestCliReport:
    @pytest.mark.slow
    def test_report_command(self, tmp_path, monkeypatch, capsys):
        import repro.cli as cli

        monkeypatch.setitem(cli._PROFILES, "quick", TINY)
        code = cli.main(
            ["report", "--only", "fig3", "--out", str(tmp_path / "r.md")]
        )
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert (tmp_path / "r.md").exists()
        # Exit code mirrors the hard-claim verdict.
        assert code in (0, 1)
