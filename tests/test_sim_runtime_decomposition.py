"""Tests for the decide/observe runtime decomposition in the metrics."""

import numpy as np
import pytest

from repro.core import Controller
from repro.core.assignment import Assignment
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


class SleepyController(Controller):
    """Spends measurable time in observe() (like the GAN's online steps)."""

    name = "Sleepy"

    def decide(self, slot, demands):
        return Assignment.from_stations([0] * len(self.requests), self.requests)

    def observe(self, slot, demands, unit_delays, assignment):
        import time

        time.sleep(0.01)


@pytest.fixture
def world():
    rngs = RngRegistry(seed=19)
    network = MECNetwork.synthetic(4, 2, rngs)
    requests = [Request(index=0, service_index=0, basic_demand_mb=1.0)]
    return network, requests


class TestRuntimeDecomposition:
    def test_observe_time_counted_in_total(self, world):
        network, requests = world
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            SleepyController(network, requests),
            horizon=3,
        )
        # Total includes the 10 ms observe naps; decide-only does not.
        assert np.all(result.decision_seconds >= 0.01)
        assert np.all(result.decide_only_seconds < result.decision_seconds)

    def test_observe_seconds_recorded_per_slot(self, world):
        network, requests = world
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            SleepyController(network, requests),
            horizon=2,
        )
        for record in result.records:
            assert record.observe_seconds >= 0.01
            assert record.decision_seconds >= 0.0

    def test_summary_uses_total_time(self, world):
        network, requests = world
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            SleepyController(network, requests),
            horizon=2,
        )
        assert result.summary()["mean_decision_s"] == pytest.approx(
            float(result.decision_seconds.mean())
        )
