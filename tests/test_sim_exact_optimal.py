"""Tests for the exact-ILP regret path of the engine (small instances)."""

import numpy as np
import pytest

from repro.core import GreedyController
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


@pytest.fixture
def tiny():
    rngs = RngRegistry(seed=17)
    network = MECNetwork.synthetic(4, 2, rngs)
    requests = [
        Request(index=0, service_index=0, basic_demand_mb=1.0),
        Request(index=1, service_index=1, basic_demand_mb=1.5),
    ]
    return rngs, network, requests


class TestExactOptimalPath:
    def test_exact_optimum_recorded(self, tiny):
        rngs, network, requests = tiny
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        result = run_simulation(
            network,
            ConstantDemandModel(requests),
            controller,
            horizon=3,
            compute_optimal=True,
            exact_optimal=True,
        )
        tracker = result.regret_tracker()
        assert tracker.n_slots == 3
        # The exact integral optimum is achievable, so regret >= 0 exactly.
        assert np.all(tracker.per_slot_regret >= -1e-9)

    def test_exact_at_least_lp_bound(self, tiny):
        rngs, network, requests = tiny
        controller = GreedyController(network, requests, rngs.get("ctrl"))
        lp_result = run_simulation(
            network,
            ConstantDemandModel(requests),
            controller,
            horizon=2,
            compute_optimal=True,
            exact_optimal=False,
        )
        controller2 = GreedyController(network, requests, rngs.fresh("ctrl"))
        exact_result = run_simulation(
            network,
            ConstantDemandModel(requests),
            controller2,
            horizon=2,
            compute_optimal=True,
            exact_optimal=True,
        )
        lp_optima = lp_result.regret_tracker().optimal
        exact_optima = exact_result.regret_tracker().optimal
        assert np.all(exact_optima >= lp_optima - 1e-9)
