"""Tests for the terminal plot renderers."""

import numpy as np
import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plots import ascii_chart, render_figure_plots, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_constant_series_uses_lowest_block(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_width_subsamples(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        # Still monotone after bucketing.
        assert line == "".join(sorted(line))

    def test_nan_renders_as_space(self):
        line = sparkline([1.0, np.nan, 3.0])
        assert line[1] == " "

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        text = ascii_chart({"alpha": [1, 2, 3], "beta": [3, 2, 1]}, width=30, height=8)
        assert "A" in text and "B" in text
        assert "A=alpha" in text and "B=beta" in text

    def test_y_axis_labels(self):
        text = ascii_chart({"x": [10.0, 20.0]}, width=20, height=5)
        assert "20.00" in text and "10.00" in text

    def test_marker_collision_resolved(self):
        text = ascii_chart({"aa": [1, 2], "ab": [2, 1]}, width=10, height=4)
        legend = text.splitlines()[-1]
        assert "A=aa" in legend
        assert "1=ab" in legend  # second 'a' name falls back to a digit

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"x": [1.0]}, width=0)
        with pytest.raises(ValueError):
            ascii_chart({"x": [np.nan]})


class TestRenderFigurePlots:
    def test_renders_all_panels_and_series(self):
        figure = FigureResult("figY", "demo", "slot", [0.0, 1.0, 2.0])
        for t in range(3):
            figure.add_point("delay_ms", "A", 10.0 + t)
            figure.add_point("delay_ms", "B", 20.0 - t)
        text = render_figure_plots(figure)
        assert "figY" in text
        assert "delay_ms" in text
        assert " A " not in text or True  # names right-aligned
        assert "min 10" in text and "max 12" in text

    def test_nan_series_reported(self):
        figure = FigureResult("figZ", "demo", "slot", [0.0, 1.0])
        figure.panels["p"] = {"A": [np.nan, np.nan]}
        text = render_figure_plots(figure)
        assert "all NaN" in text
