"""Tests for the fast NN execution path.

Covers the contracts the fused sequence kernels, the ``no_grad`` mode and
the gradient-buffer reuse must uphold:

* fused LSTM/GRU forward outputs are **bit-identical** (``array_equal``,
  not ``allclose``) to the per-step cell path in float64;
* fused backward matches the per-step autograd gradients and numerical
  central differences (gradcheck);
* ``no_grad()`` produces graph-free tensors (no ``_parents`` /
  ``_backward`` / tape) and restores recording on exit, even on error;
* ``detach()`` shares the underlying array (explicit data-sharing
  contract) while cutting the graph;
* the creation-order tape fires each node at most once per backward and
  never re-fires nodes of an earlier backward sharing the same tape;
* the float32 opt-in propagates through modules while gradcheck stays
  float64-only.
"""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    BiGRU,
    BiLSTM,
    gradcheck,
    is_grad_enabled,
    no_grad,
    use_sequence_kernels,
)
from repro.nn.layers import LSTMCell
from repro.nn.recurrent import GRUCell
from repro.nn.tensor import Tensor


def _sequence(seed, shape=(7, 3, 4)):
    return np.random.default_rng(seed).normal(size=shape)


RNN_FACTORIES = {
    "lstm": lambda rng: LSTM(4, 5, rng, num_layers=2),
    "gru": lambda rng: GRU(4, 5, rng, num_layers=2),
    "bilstm": lambda rng: BiLSTM(4, 5, rng),
    "bigru": lambda rng: BiGRU(4, 5, rng),
}


class TestFusedBitIdentity:
    @pytest.mark.parametrize("kind", sorted(RNN_FACTORIES))
    def test_forward_bit_identical_to_stepwise(self, kind):
        model = RNN_FACTORIES[kind](np.random.default_rng(0))
        x = _sequence(1)
        fused_out = model(Tensor(x))
        with use_sequence_kernels(False):
            stepwise_out = model(Tensor(x))
        assert fused_out.data.dtype == np.float64
        assert np.array_equal(fused_out.data, stepwise_out.data)

    @pytest.mark.parametrize("kind", sorted(RNN_FACTORIES))
    def test_backward_matches_stepwise(self, kind):
        model = RNN_FACTORIES[kind](np.random.default_rng(2))
        x = _sequence(3)

        def grads(enabled):
            for p in model.parameters():
                p.grad = None
            inp = Tensor(x, requires_grad=True)
            with use_sequence_kernels(enabled):
                (model(inp) ** 2).sum().backward()
            return [p.grad.copy() for p in model.parameters()] + [inp.grad.copy()]

        for fused_grad, step_grad in zip(grads(True), grads(False)):
            np.testing.assert_allclose(fused_grad, step_grad, rtol=1e-9, atol=1e-12)

    def test_kernel_toggle_restores(self):
        from repro.nn import sequence_kernels_enabled

        assert sequence_kernels_enabled()
        with use_sequence_kernels(False):
            assert not sequence_kernels_enabled()
            with use_sequence_kernels(True):
                assert sequence_kernels_enabled()
            assert not sequence_kernels_enabled()
        assert sequence_kernels_enabled()


class TestFusedGradcheck:
    def test_lstm_sequence_gradcheck(self):
        model = LSTM(3, 4, np.random.default_rng(4))
        x = Tensor(_sequence(5, (5, 2, 3)))

        def f():
            return (model(x) ** 2).sum()

        gradcheck(f, model.parameters(), rtol=1e-3)

    def test_gru_sequence_gradcheck(self):
        model = GRU(3, 4, np.random.default_rng(6))
        x = Tensor(_sequence(7, (5, 2, 3)))

        def f():
            return (model(x) ** 2).sum()

        gradcheck(f, model.parameters(), rtol=1e-3)

    def test_gradient_flows_to_input_sequence(self):
        model = LSTM(3, 4, np.random.default_rng(8))
        x = Tensor(_sequence(9, (4, 2, 3)), requires_grad=True)
        (model(x) ** 2).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == x.data.shape
        assert np.any(x.grad != 0)


class TestNoGrad:
    def test_no_graph_recorded(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        with no_grad():
            out = (a * 3.0).sum()
        assert out._parents == ()
        assert out._backward is None
        assert out._tape is None
        assert not out.requires_grad

    def test_rnn_inference_graph_free(self):
        model = LSTM(4, 5, np.random.default_rng(10))
        with no_grad():
            out = model(Tensor(_sequence(11)))
        assert out._parents == ()
        assert out._backward is None

    def test_mode_restored_on_exit_and_error(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_matches_recorded_forward(self):
        model = GRU(4, 5, np.random.default_rng(12))
        x = _sequence(13)
        recorded = model(Tensor(x))
        with no_grad():
            plain = model(Tensor(x))
        assert np.array_equal(recorded.data, plain.data)


class TestDetach:
    def test_shares_data(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        d = (t * 2.0).detach()
        assert d.data is not t.data  # detached from the *product* tensor
        product = t * 2.0
        assert product.detach().data is product.data

    def test_cuts_gradient_flow(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.detach() * 5.0).sum().backward()
        assert t.grad is None
        ((t * 1.0).detach() + t).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones(3))


class TestTapeSemantics:
    def test_repeated_backward_accumulates(self):
        t = Tensor(np.ones(4), requires_grad=True)
        t.sum().backward()
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, 2.0 * np.ones(4))

    def test_diamond_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a * b).backward()  # d/dt (12 t^2) = 24 t = 48
        np.testing.assert_allclose(t.grad, [48.0])

    def test_shared_tape_does_not_refire_stale_nodes(self):
        # Two independent losses recorded on the same creation-order tape:
        # backward through the second must not re-fire the first loss's
        # nodes (which still hold their accumulated grads).
        x = Tensor(np.ones(3), requires_grad=True)
        first = (x * 2.0).sum()
        second = (x * 3.0).sum()
        first.backward()
        np.testing.assert_array_equal(x.grad, 2.0 * np.ones(3))
        second.backward()
        # 2 + 3, not 2 + 2 + 3 (a re-fire of `first` would add 2 again).
        np.testing.assert_array_equal(x.grad, 5.0 * np.ones(3))

    def test_grad_buffer_reused_across_zero_grad(self):
        from repro.nn import Sgd

        t = Tensor(np.ones(4), requires_grad=True)
        opt = Sgd([t], lr=0.1)
        t.sum().backward()
        buffer = t._grad_buffer
        assert t.grad is buffer
        opt.zero_grad()
        assert t.grad is None  # optimizer skip semantics preserved
        (t * 2.0).sum().backward()
        assert t.grad is buffer  # same storage, no reallocation
        np.testing.assert_array_equal(t.grad, 2.0 * np.ones(4))


class TestFloat32Path:
    def test_module_astype_converts_parameters(self):
        model = LSTM(4, 5, np.random.default_rng(14)).astype(np.float32)
        assert model.dtype == np.float32
        out = model(Tensor(_sequence(15), dtype=np.float32))
        assert out.data.dtype == np.float32

    def test_cells_preserve_float32(self):
        lstm_cell = LSTMCell(3, 4, np.random.default_rng(16)).astype(np.float32)
        state = lstm_cell.initial_state(2)
        h2, c2 = lstm_cell(Tensor(np.ones((2, 3), dtype=np.float32)), state)
        assert h2.data.dtype == np.float32 and c2.data.dtype == np.float32
        gru_cell = GRUCell(3, 4, np.random.default_rng(17)).astype(np.float32)
        out = gru_cell(
            Tensor(np.ones((2, 3), dtype=np.float32)), gru_cell.initial_state(2)
        )
        assert out.data.dtype == np.float32

    def test_scalar_arithmetic_stays_float32(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        assert ((t * 2.0 + 1.0) / 3.0).data.dtype == np.float32

    def test_gan_trains_in_float32(self):
        from repro.gan import InfoRnnGan

        gan = InfoRnnGan(code_dim=2, rng=np.random.default_rng(18), dtype="float32")
        rng = np.random.default_rng(19)
        real = rng.uniform(1.0, 2.0, size=(6, 3, 1))
        conditioning = rng.uniform(1.0, 2.0, size=(6, 3, 1))
        codes = np.eye(2)[rng.integers(0, 2, size=3)]
        losses = gan.train_step(real, conditioning, codes)
        assert np.isfinite(losses.generator_total)
        assert np.isfinite(losses.discriminator)
        assert gan.generator.dtype == np.float32
        sample = gan.generate(codes, conditioning, n_samples=2)
        assert sample.dtype == np.float32

    def test_gradcheck_rejects_float32(self):
        model = GRU(3, 4, np.random.default_rng(20)).astype(np.float32)
        x = Tensor(_sequence(21, (4, 2, 3)), dtype=np.float32)
        with pytest.raises(ValueError, match="float64"):
            gradcheck(lambda: (model(x) ** 2).sum(), model.parameters())
