"""Tests for backhaul paths and the transport-aware cost extension."""

import networkx as nx
import numpy as np
import pytest

from repro.core import Assignment, evaluate_assignment, evaluate_with_transport
from repro.mec import BackhaulPaths, MECNetwork, access_station
from repro.mec.geometry import Point
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry


def line_graph():
    """0 -1ms- 1 -2ms- 2, bandwidths 800 / 400 Mbps."""
    graph = nx.Graph()
    graph.add_edge(0, 1, delay_ms=1.0, bandwidth_mbps=800.0)
    graph.add_edge(1, 2, delay_ms=2.0, bandwidth_mbps=400.0)
    return graph


class TestBackhaulPaths:
    def test_propagation_delay(self):
        paths = BackhaulPaths(line_graph())
        assert paths.propagation_delay_ms(0, 2) == pytest.approx(3.0)
        assert paths.propagation_delay_ms(2, 0) == pytest.approx(3.0)

    def test_same_node_zero(self):
        paths = BackhaulPaths(line_graph())
        assert paths.propagation_delay_ms(1, 1) == 0.0
        assert paths.transfer_delay_ms(1, 1, 10.0) == 0.0
        assert paths.path(1, 1) == [1]

    def test_path_nodes(self):
        paths = BackhaulPaths(line_graph())
        assert paths.path(0, 2) == [0, 1, 2]
        assert paths.hop_count(0, 2) == 2

    def test_transfer_includes_serialization(self):
        paths = BackhaulPaths(line_graph())
        data_mb = 10.0
        # serialization: 10*8/800 s + 10*8/400 s = 0.1 + 0.2 s = 300 ms
        expected = 3.0 + 300.0
        assert paths.transfer_delay_ms(0, 2, data_mb) == pytest.approx(expected)

    def test_shortest_by_delay_not_hops(self):
        graph = line_graph()
        graph.add_edge(0, 2, delay_ms=10.0, bandwidth_mbps=1000.0)  # direct but slow
        paths = BackhaulPaths(graph)
        assert paths.path(0, 2) == [0, 1, 2]

    def test_unknown_node_raises(self):
        paths = BackhaulPaths(line_graph())
        with pytest.raises(KeyError):
            paths.propagation_delay_ms(9, 0)

    def test_disconnected_raises(self):
        graph = line_graph()
        graph.add_node(9)
        paths = BackhaulPaths(graph)
        with pytest.raises(nx.NetworkXNoPath):
            paths.path(0, 9)

    def test_missing_attributes_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(ValueError, match="delay_ms"):
            BackhaulPaths(graph)

    def test_negative_data_rejected(self):
        paths = BackhaulPaths(line_graph())
        with pytest.raises(ValueError):
            paths.transfer_delay_ms(0, 2, -1.0)


class TestAccessStation:
    @pytest.fixture
    def network(self):
        return MECNetwork.synthetic(20, 2, RngRegistry(seed=4))

    def test_covered_user_gets_nearest_covering(self, network):
        bs = network.stations[0]
        station = access_station(network, bs.position)
        assert bs.covers(network.stations[station].position) or station == bs.index
        # The chosen station must cover the point.
        assert network.stations[station].covers(bs.position)

    def test_uncovered_user_gets_nearest(self, network):
        far = Point(1e6, 1e6)
        station = access_station(network, far)
        distances = [
            s.position.distance_to(far) for s in network.stations
        ]
        assert station == int(np.argmin(distances))


class TestEvaluateWithTransport:
    @pytest.fixture
    def setting(self):
        rngs = RngRegistry(seed=6)
        network = MECNetwork.synthetic(10, 2, rngs)
        requests = [
            Request(
                index=i,
                service_index=i % 2,
                basic_demand_mb=1.0,
                location=network.stations[i].position,
            )
            for i in range(3)
        ]
        demands = np.ones(3)
        return network, requests, demands

    def test_transport_cost_is_additive(self, setting):
        network, requests, demands = setting
        paths = BackhaulPaths(network.graph)
        assignment = Assignment.from_stations([5, 6, 7], requests)
        d_t = network.delays.sample(0)
        base = evaluate_assignment(assignment, network, requests, demands, d_t)
        extended = evaluate_with_transport(
            assignment, network, requests, demands, d_t, paths
        )
        assert extended > base

    def test_local_serving_costs_less_transport(self, setting):
        """Serving at the access station avoids the backhaul leg."""
        network, requests, demands = setting
        paths = BackhaulPaths(network.graph)
        d_t = network.delays.sample(0)
        accesses = [access_station(network, r.location) for r in requests]
        local = Assignment.from_stations(accesses, requests)
        remote_station = max(
            range(network.n_stations),
            key=lambda i: paths.hop_count(accesses[0], i),
        )
        remote = Assignment.from_stations([remote_station] * 3, requests)

        local_transport = evaluate_with_transport(
            local, network, requests, demands, d_t, paths
        ) - evaluate_assignment(local, network, requests, demands, d_t)
        remote_transport = evaluate_with_transport(
            remote, network, requests, demands, d_t, paths
        ) - evaluate_assignment(remote, network, requests, demands, d_t)
        assert local_transport < remote_transport
