"""Tests for the repro.obs telemetry layer (registry, spans, tracing)."""

import json

import pytest

from repro import obs
from repro.obs.registry import DEFAULT_TIME_EDGES, Histogram, MetricsRegistry
from repro.obs.trace import TraceWriter, read_trace, validate_event


class TestHistogram:
    def test_buckets_cover_under_and_overflow(self):
        h = Histogram(edges=(1.0, 10.0))
        for value in [0.5, 1.0, 5.0, 10.0, 50.0]:
            h.observe(value)
        assert h.counts == [1, 2, 2]  # <1 | [1,10) | >=10
        assert h.count == 5
        assert h.total == pytest.approx(66.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.mean == pytest.approx(66.5 / 5)

    def test_edges_must_increase(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(edges=(1.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            Histogram(edges=())

    def test_merge_requires_same_edges(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(2.0,))
        with pytest.raises(ValueError, match="different edges"):
            a.merge(b)

    def test_merge_adds_counts(self):
        a = Histogram(edges=(1.0,))
        b = Histogram(edges=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(3.0)
        a.merge(b)
        assert a.counts == [1, 2]
        assert a.count == 3
        assert a.max == 3.0


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 2.5)
        registry.gauge("g", 7.0)
        registry.gauge("g", 9.0)
        assert registry.counter("a") == pytest.approx(3.5)
        assert registry.counter("never") == 0.0
        assert registry.gauges == {"g": 9.0}

    def test_span_records_histogram_and_calls(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        assert registry.counter("work.calls") == 1
        histogram = registry.histogram("work.seconds")
        assert histogram.count == 1
        assert histogram.edges == DEFAULT_TIME_EDGES
        assert registry.span_names() == ["work"]

    def test_merge_is_additive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2)
        b.inc("n", 3)
        b.inc("only-b")
        a.observe("h", 0.5)
        b.observe("h", 5e6)  # overflow bucket
        a.merge(b)
        assert a.counter("n") == 5
        assert a.counter("only-b") == 1
        assert a.histogram("h").count == 2
        assert a.histogram("h").counts[-1] == 1

    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("calls", 4)
        registry.gauge("level", 0.25)
        with registry.span("stage"):
            pass
        snapshot = registry.snapshot()
        # Snapshots are JSON-able (what --metrics-out writes).
        restored = MetricsRegistry.from_snapshot(json.loads(json.dumps(snapshot)))
        assert restored.snapshot() == snapshot
        assert restored.counter("calls") == 4
        assert restored.histogram("stage.seconds").count == 1

    def test_table_renders_spans_and_counters(self):
        registry = MetricsRegistry()
        with registry.span("lp.solve"):
            pass
        registry.inc("lp.iterations", 42)
        table = registry.table()
        assert "lp.solve" in table
        assert "lp.iterations" in table
        # .calls counters are folded into the span rows, not repeated.
        assert "lp.solve.calls" not in table


class TestActivation:
    def test_module_helpers_are_noops_when_inactive(self):
        assert obs.active_registry() is None
        obs.inc("ghost")
        obs.observe("ghost", 1.0)
        obs.set_context(slot=3)
        with obs.span("ghost"):
            pass
        assert obs.active_registry() is None

    def test_activate_routes_and_restores(self):
        registry = MetricsRegistry()
        with obs.activate(registry):
            assert obs.active_registry() is registry
            obs.inc("hit")
            with obs.span("scope"):
                pass
        assert obs.active_registry() is None
        assert registry.counter("hit") == 1
        assert registry.counter("scope.calls") == 1

    def test_activations_nest(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with obs.activate(outer):
            with obs.activate(inner):
                obs.inc("x")
            obs.inc("y")
        assert inner.counter("x") == 1 and inner.counter("y") == 0
        assert outer.counter("y") == 1 and outer.counter("x") == 0

    def test_activate_none_is_supported_noop(self):
        with obs.activate(None):
            assert obs.active_registry() is None
            obs.inc("nowhere")

    def test_restored_even_on_error(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with obs.activate(registry):
                raise RuntimeError("boom")
        assert obs.active_registry() is None


class TestTrace:
    def test_writer_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path) as writer:
            writer.emit({"type": "span", "name": "a", "seconds": 0.5, "slot": 1})
            writer.emit({"type": "counter", "name": "b", "value": 3})
            writer.emit({"type": "event", "name": "c"})
            assert writer.n_events == 3
        events = read_trace(path)
        assert [e["name"] for e in events] == ["a", "b", "c"]
        assert events[0]["slot"] == 1

    def test_lazy_open_creates_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with TraceWriter(path):
            pass
        assert not path.exists()

    def test_schema_rejections(self):
        with pytest.raises(ValueError, match="type"):
            validate_event({"name": "x"})
        with pytest.raises(ValueError, match="name"):
            validate_event({"type": "span", "seconds": 0.1})
        with pytest.raises(ValueError, match="seconds"):
            validate_event({"type": "span", "name": "x"})
        with pytest.raises(ValueError, match="value"):
            validate_event({"type": "counter", "name": "x", "value": "high"})
        with pytest.raises(ValueError, match="object"):
            validate_event(["not", "a", "dict"])

    def test_read_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span", "name": "a", "seconds": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_spans_emit_context_tagged_events(self, tmp_path):
        path = tmp_path / "ctx.jsonl"
        writer = TraceWriter(path)
        registry = MetricsRegistry(trace=writer)
        registry.set_context(slot=7, controller="OL_GD")
        with registry.span("sim.decide"):
            pass
        registry.set_context(slot=None)  # removal
        with registry.span("sim.observe"):
            pass
        writer.close()
        events = read_trace(path)
        assert events[0]["slot"] == 7
        assert events[0]["controller"] == "OL_GD"
        assert "slot" not in events[1]
        # No wall-clock in any event: durations only.
        for event in events:
            assert set(event) <= {"type", "name", "seconds", "slot", "controller"}
