"""Tests for planar geometry and disk coverage."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mec.geometry import Point, distance, points_within, random_point_in_disk

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


class TestPoint:
    def test_distance_matches_hypot(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_function_matches_method(self):
        a, b = Point(1, 2), Point(4, 6)
        assert distance(a, b) == a.distance_to(b)

    def test_as_tuple(self):
        assert Point(1.5, -2.0).as_tuple() == (1.5, -2.0)

    def test_points_are_hashable_and_frozen(self):
        p = Point(1, 2)
        assert hash(p) == hash(Point(1, 2))
        with pytest.raises(AttributeError):
            p.x = 3  # type: ignore[misc]

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords)
    def test_distance_to_self_is_zero(self, x, y):
        p = Point(x, y)
        assert p.distance_to(p) == 0.0


class TestPointsWithin:
    def test_selects_only_inside(self):
        center = Point(0, 0)
        pts = [Point(0, 1), Point(0, 5), Point(3, 0), Point(10, 10)]
        assert points_within(center, 4.0, pts) == [0, 2]

    def test_boundary_point_included(self):
        assert points_within(Point(0, 0), 5.0, [Point(3, 4)]) == [0]

    def test_empty_candidates(self):
        assert points_within(Point(0, 0), 5.0, []) == []

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            points_within(Point(0, 0), -1.0, [Point(0, 0)])

    def test_zero_radius_matches_only_center(self):
        pts = [Point(0, 0), Point(0.001, 0)]
        assert points_within(Point(0, 0), 0.0, pts) == [0]


class TestRandomPointInDisk:
    def test_points_stay_inside(self):
        rng = np.random.default_rng(0)
        center = Point(10, -5)
        for _ in range(200):
            p = random_point_in_disk(center, 7.0, rng)
            assert center.distance_to(p) <= 7.0 + 1e-9

    def test_area_uniformity(self):
        """Roughly one quarter of samples should land within half the radius."""
        rng = np.random.default_rng(1)
        center = Point(0, 0)
        samples = [random_point_in_disk(center, 10.0, rng) for _ in range(4000)]
        inner = sum(1 for p in samples if center.distance_to(p) <= 5.0)
        assert 0.2 <= inner / len(samples) <= 0.3

    def test_zero_radius_returns_center(self):
        rng = np.random.default_rng(2)
        p = random_point_in_disk(Point(3, 4), 0.0, rng)
        assert p.distance_to(Point(3, 4)) == pytest.approx(0.0)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            random_point_in_disk(Point(0, 0), -2.0, np.random.default_rng(0))
