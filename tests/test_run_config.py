"""The unified run configuration: one spelling per execution concept.

Pins the API-redesign contract for ``config=RunConfig(...)`` across
``run_simulation`` / ``run_repetitions`` / ``run_with_failures`` /
``run_campaign``:

* every deprecated alias (``checkpoint=CheckpointConfig(...)``,
  ``n_jobs``, ``max_retries``, bare ``checkpoint_dir``/``resume``/...)
  still works, warns :class:`DeprecationWarning`, and produces results
  identical to the canonical spelling;
* mixing ``config=`` with an alias is a :class:`TypeError` — one source
  of truth per knob;
* ``checkpoint=None`` (the old "no checkpointing") stays silent.
"""

import warnings

import numpy as np
import pytest

from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim import (
    UNSET,
    CheckpointConfig,
    RunConfig,
    resolve_run_config,
    run_repetitions,
    run_simulation,
)
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel

HORIZON = 6


def build_world(seed=11):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
            hotspot_index=i % 2,
        )
        for i in range(6)
    ]
    from repro.core import make_controller

    model = BurstyDemandModel(requests, rngs.get("demand"))
    controller = make_controller("OL_GD", network, requests, rngs.get("ctrl"))
    return network, model, controller


def scenario(rngs: RngRegistry):
    from repro.core import make_controller

    network = MECNetwork.synthetic(8, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(6)
    ]
    model = BurstyDemandModel(requests, rngs.get("demand"))
    return network, model, [
        make_controller("OL_GD", network, requests, rngs.get("ctrl"))
    ]


class TestRunConfig:
    def test_defaults(self):
        config = RunConfig()
        assert config.jobs == 1
        assert config.retries == 0
        assert config.collect_metrics is None
        assert config.checkpoint_dir is None
        assert not config.resume
        assert config.scheduler == "auto"

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RunConfig(retries=-1)
        with pytest.raises(ValueError, match="checkpoint_every"):
            RunConfig(checkpoint_every=0)
        # resume without a checkpoint_dir is deliberately legal: the
        # campaign runner roots persistence at its out_dir instead.
        RunConfig(resume=True)

    def test_checkpoint_config_round_trip(self, tmp_path):
        config = RunConfig(
            checkpoint_dir=tmp_path, checkpoint_every=4, resume=True
        )
        checkpoint = config.to_checkpoint_config()
        assert checkpoint is not None
        assert checkpoint.every_n_slots == 4
        assert checkpoint.resume
        lifted = RunConfig.from_checkpoint_config(checkpoint)
        assert lifted.checkpoint_dir == checkpoint.directory
        assert lifted.checkpoint_every == 4
        assert lifted.resume
        assert RunConfig().to_checkpoint_config() is None
        assert RunConfig.from_checkpoint_config(None) == RunConfig()

    def test_checkpoint_dir_alone_gets_default_cadence(self, tmp_path):
        checkpoint = RunConfig(checkpoint_dir=tmp_path).to_checkpoint_config()
        assert checkpoint.every_n_slots == 10  # subsystem default


class TestResolveRunConfig:
    def test_config_passes_through(self):
        config = RunConfig(jobs=3)
        resolved = resolve_run_config("f", config, {"n_jobs": UNSET})
        assert resolved is config

    def test_alias_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="config=RunConfig\\(jobs="):
            resolved = resolve_run_config("f", None, {"n_jobs": 4})
        assert resolved.jobs == 4
        with pytest.warns(DeprecationWarning, match="retries"):
            resolved = resolve_run_config("f", None, {"max_retries": 2})
        assert resolved.retries == 2

    def test_meaningful_none_survives_the_alias(self):
        # n_jobs=None means "all cores" and must not read as "not passed"
        with pytest.warns(DeprecationWarning):
            resolved = resolve_run_config("f", None, {"n_jobs": None})
        assert resolved.jobs is None

    def test_checkpoint_alias_expands(self, tmp_path):
        checkpoint = CheckpointConfig(
            directory=tmp_path, every_n_slots=3, resume=True
        )
        with pytest.warns(DeprecationWarning, match="checkpoint=CheckpointConfig"):
            resolved = resolve_run_config("f", None, {"checkpoint": checkpoint})
        assert resolved.checkpoint_dir == checkpoint.directory
        assert resolved.checkpoint_every == 3
        assert resolved.resume

    def test_explicit_checkpoint_none_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolved = resolve_run_config("f", None, {"checkpoint": None})
        assert resolved == RunConfig()

    def test_mixing_config_and_alias_raises(self):
        with pytest.raises(TypeError, match="both config= and deprecated"):
            resolve_run_config("f", RunConfig(), {"n_jobs": 2})

    def test_default_seeds_the_result(self):
        default = RunConfig(jobs=7, retries=1)
        resolved = resolve_run_config("f", None, {"n_jobs": UNSET}, default=default)
        assert resolved is default
        with pytest.warns(DeprecationWarning):
            resolved = resolve_run_config(
                "f", None, {"max_retries": 3}, default=default
            )
        assert (resolved.jobs, resolved.retries) == (7, 3)


class TestEntryPointEquivalence:
    def test_run_simulation_legacy_checkpoint_kwarg(self, tmp_path):
        network, model, controller = build_world()
        canonical = run_simulation(
            network, model, controller, HORIZON,
            config=RunConfig(
                checkpoint_dir=tmp_path / "new", checkpoint_every=3
            ),
        )
        network, model, controller = build_world()
        with pytest.warns(DeprecationWarning, match="run_simulation"):
            legacy = run_simulation(
                network, model, controller, HORIZON,
                checkpoint=CheckpointConfig(
                    directory=tmp_path / "old", every_n_slots=3
                ),
            )
        np.testing.assert_array_equal(canonical.delays_ms, legacy.delays_ms)
        assert (tmp_path / "new").exists() and (tmp_path / "old").exists()

    def test_run_simulation_rejects_mixed_spellings(self, tmp_path):
        network, model, controller = build_world()
        with pytest.raises(TypeError, match="run_simulation"):
            run_simulation(
                network, model, controller, HORIZON,
                config=RunConfig(),
                checkpoint=CheckpointConfig(directory=tmp_path),
            )

    def test_run_repetitions_n_jobs_alias(self):
        canonical = run_repetitions(
            scenario, seed=41, repetitions=2, horizon=4,
            config=RunConfig(jobs=1),
        )
        with pytest.warns(DeprecationWarning, match="run_repetitions"):
            legacy = run_repetitions(
                scenario, seed=41, repetitions=2, horizon=4, n_jobs=1
            )
        assert (
            canonical.summary("OL_GD", "mean_delay_ms").values
            == legacy.summary("OL_GD", "mean_delay_ms").values
        )

    def test_run_repetitions_checkpoint_dir_alias(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="bare keyword"):
            study = run_repetitions(
                scenario, seed=41, repetitions=1, horizon=4,
                checkpoint_dir=tmp_path,
            )
        assert study.repetitions == 1
        assert any(tmp_path.iterdir())  # sweep snapshots landed
