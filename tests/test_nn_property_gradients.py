"""Property-based gradient checks over random shapes and expressions.

The per-op gradchecks in test_nn_tensor.py use fixed shapes; here
hypothesis drives random (small) shapes and random expression choices so
the autograd engine's broadcasting and graph handling are probed more
broadly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.functional import log_softmax, softmax, softplus
from repro.nn.gradcheck import gradcheck
from repro.nn.tensor import Tensor, concat

dims = st.integers(min_value=1, max_value=4)


def make_param(shape, seed):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(0.0, 1.0, size=shape), requires_grad=True)


class TestRandomShapes:
    @given(dims, dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_add_mul_broadcast_rows(self, rows, cols, seed):
        a = make_param((rows, cols), seed)
        b = make_param((1, cols), seed + 1)
        gradcheck(lambda: ((a + b) * (a - b)).sum(), [a, b])

    @given(dims, dims, dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_matmul_chain(self, i, j, k, seed):
        a = make_param((i, j), seed)
        b = make_param((j, k), seed + 1)
        gradcheck(lambda: ((a @ b).tanh() ** 2).sum(), [a, b])

    @given(dims, dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_softmax_composition(self, rows, cols, seed):
        x = make_param((rows, cols), seed)
        gradcheck(lambda: (softmax(x) * log_softmax(x)).sum(), [x], rtol=1e-3)

    @given(dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_concat_of_three(self, cols, seed):
        parts = [make_param((2, cols), seed + i) for i in range(3)]
        gradcheck(
            lambda: (concat(parts, axis=1).sigmoid() ** 2).sum(), parts
        )

    @given(dims, dims, st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_softplus_mean_reduction(self, rows, cols, seed):
        x = make_param((rows, cols), seed)
        gradcheck(lambda: softplus(x).mean(axis=0).sum(), [x])

    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=15, deadline=None)
    def test_reused_node_grads_accumulate_correctly(self, n, seed):
        """A node feeding multiple consumers must sum its gradients."""
        x = make_param((n,), seed)
        gradcheck(lambda: (x * x + x.tanh() * x + x.exp()).sum(), [x], rtol=1e-3)
