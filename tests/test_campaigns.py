"""Tests for the declarative campaign layer: spec, TOML, run, resume, CLI.

The campaign acceptance properties from the issue live here:

- a TOML spec expands into the full-factorial cell list;
- the same spec + seed always derives the same cell seeds and produces
  bit-identical aggregate summaries;
- a campaign killed after N cells and restarted with resume executes
  exactly the missing cells (and the result equals an uninterrupted run);
- the CLI drives run/status/report end-to-end.
"""

import json

import pytest

from repro.campaigns import (
    CampaignError,
    CampaignScenario,
    CampaignSpec,
    FactorAxis,
    OutageSpec,
    ScenarioSpec,
    campaign_status,
    cell_directory,
    load_campaign_toml,
    render_campaign_report,
    run_campaign,
    write_campaign_report,
)
from repro.cli import main as cli_main
from repro.sim import run_repetitions

# A deliberately tiny world so each cell runs in well under a second.
TINY = dict(
    controllers=("OL_GD", "Greedy_GD"),
    horizon=3,
    n_stations=10,
    n_services=2,
    n_requests=6,
    n_hotspots=3,
)


def tiny_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="tiny",
        seed=11,
        repetitions=2,
        scenario=ScenarioSpec(**TINY),
        factors=(FactorAxis("n_stations", (10, 12)),),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


TINY_TOML = """
[campaign]
name = "tiny"
seed = 11
repetitions = 2

[scenario]
controllers = ["OL_GD", "Greedy_GD"]
horizon = 3
n_stations = 10
n_services = 2
n_requests = 6
n_hotspots = 3

[[factors]]
path = "n_stations"
values = [10, 12]
"""


class TestExpansion:
    def test_full_factorial(self):
        spec = tiny_spec(
            factors=(
                FactorAxis("n_stations", (10, 12)),
                FactorAxis("workload", ("constant", "bursty")),
            )
        )
        cells = spec.expand()
        assert spec.n_cells == len(cells) == 4
        assert [c.cell_id for c in cells] == [
            "n_stations=10-workload=constant",
            "n_stations=10-workload=bursty",
            "n_stations=12-workload=constant",
            "n_stations=12-workload=bursty",
        ]
        assert cells[1].scenario.n_stations == 10
        assert cells[1].scenario.workload == "bursty"
        assert len({c.seed for c in cells}) == 4

    def test_no_factors_single_base_cell(self):
        cells = tiny_spec(factors=()).expand()
        assert [c.cell_id for c in cells] == ["base"]

    def test_seeds_keyed_by_cell_id_not_position(self):
        small = tiny_spec(factors=(FactorAxis("n_stations", (10, 12)),))
        grown = tiny_spec(factors=(FactorAxis("n_stations", (8, 10, 12)),))
        small_seeds = {c.cell_id: c.seed for c in small.expand()}
        grown_seeds = {c.cell_id: c.seed for c in grown.expand()}
        # Positions shifted, but the shared cells keep their seeds.
        for cell_id, seed in small_seeds.items():
            assert grown_seeds[cell_id] == seed

    def test_expand_deterministic(self):
        a, b = tiny_spec().expand(), tiny_spec().expand()
        assert a == b

    def test_option_and_controller_paths(self):
        spec = tiny_spec(
            factors=(
                FactorAxis("workload_options.jitter", (0.0, 0.2)),
                FactorAxis("controller_options.OL_GD.step_scale", (1.0,)),
            )
        )
        cells = spec.expand()
        assert cells[0].scenario.workload_options == {"jitter": 0.0}
        assert cells[0].scenario.controller_options == {
            "OL_GD": {"step_scale": 1.0}
        }

    def test_unknown_names_rejected(self):
        with pytest.raises(CampaignError, match="unknown controller"):
            tiny_spec(
                scenario=ScenarioSpec(**{**TINY, "controllers": ("Nope",)})
            ).expand()
        with pytest.raises(CampaignError, match="unknown topology"):
            tiny_spec(
                scenario=ScenarioSpec(**{**TINY, "topology": "nope"})
            ).expand()
        with pytest.raises(CampaignError, match="unknown workload"):
            tiny_spec(
                factors=(FactorAxis("workload", ("nope",)),)
            ).expand()

    def test_bad_factor_paths(self):
        with pytest.raises(CampaignError, match="does not name"):
            tiny_spec(factors=(FactorAxis("nonsense", (1,)),)).expand()
        with pytest.raises(CampaignError, match="options mapping"):
            tiny_spec(factors=(FactorAxis("horizon.deep", (1,)),)).expand()

    def test_validation_errors(self):
        with pytest.raises(CampaignError, match="at least one controller"):
            ScenarioSpec(**{**TINY, "controllers": ()})
        with pytest.raises(CampaignError, match="repeats a value"):
            FactorAxis("n_stations", (10, 10))
        with pytest.raises(CampaignError, match="duplicate factor paths"):
            tiny_spec(
                factors=(
                    FactorAxis("n_stations", (10,)),
                    FactorAxis("n_stations", (12,)),
                )
            )
        with pytest.raises(CampaignError, match="slug"):
            tiny_spec(name="has space")


class TestTomlLoading:
    def test_roundtrip_matches_python_spec(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(TINY_TOML, encoding="utf-8")
        loaded = load_campaign_toml(path)
        assert loaded.to_payload() == tiny_spec().to_payload()
        assert [c.seed for c in loaded.expand()] == [
            c.seed for c in tiny_spec().expand()
        ]

    def test_outages_parsed(self, tmp_path):
        path = tmp_path / "out.toml"
        path.write_text(
            TINY_TOML
            + "\n[[scenario.outages]]\nstation = 0\nstart = 1\nduration = 2\n",
            encoding="utf-8",
        )
        spec = load_campaign_toml(path)
        assert spec.scenario.outages == (
            OutageSpec(station=0, start=1, duration=2),
        )

    def test_unknown_table_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(TINY_TOML + "\n[mystery]\nx = 1\n", encoding="utf-8")
        with pytest.raises(CampaignError, match="unknown top-level"):
            load_campaign_toml(path)

    def test_missing_table_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text("[campaign]\nname='x'\nseed=1\nrepetitions=1\n")
        with pytest.raises(CampaignError, match="missing table"):
            load_campaign_toml(path)

    def test_bad_field_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            TINY_TOML.replace('name = "tiny"', 'name = "tiny"\ntypo = 3'),
            encoding="utf-8",
        )
        with pytest.raises(CampaignError, match="typo"):
            load_campaign_toml(path)


class TestRunAndResume:
    def test_cell_equals_direct_run(self, tmp_path):
        spec = tiny_spec()
        result = run_campaign(spec, tmp_path / "camp")
        cell = result.cells[0]
        direct = run_repetitions(
            CampaignScenario(cell.scenario),
            seed=cell.seed,
            repetitions=spec.repetitions,
            horizon=cell.scenario.horizon,
        )
        study = result.studies[cell.cell_id]
        # mean_decision_s is wall-clock timing, so only the simulated
        # metrics can be (and are) bit-identical.
        for controller in direct.summaries:
            for metric in ("mean_delay_ms", "total_churn"):
                assert (
                    study.summary(controller, metric).values
                    == direct.summary(controller, metric).values
                )

    def test_kill_and_resume_runs_only_missing_cells(self, tmp_path):
        spec = tiny_spec()
        killed = run_campaign(spec, tmp_path / "camp", max_cells=1)
        assert len(killed.executed) == 1 and len(killed.remaining) == 1
        assert not killed.complete

        resumed = run_campaign(spec, tmp_path / "camp", resume=True)
        assert resumed.executed == killed.remaining
        assert resumed.skipped == killed.executed
        assert resumed.complete

        # The stitched-together campaign equals a fresh uninterrupted one:
        # summary.json is deterministic by contract (wall-clock timing
        # lives in the timing.json sidecar), so the files themselves are
        # byte-identical, and the rendered aggregate table matches too.
        fresh = run_campaign(spec, tmp_path / "fresh")
        assert fresh.complete
        for cell in spec.expand():
            a = (
                cell_directory(tmp_path / "camp", cell.cell_id)
                / "summary.json"
            ).read_bytes()
            b = (
                cell_directory(tmp_path / "fresh", cell.cell_id)
                / "summary.json"
            ).read_bytes()
            assert a == b
        _, _, stitched = write_campaign_report(tmp_path / "camp")
        _, _, uncut = write_campaign_report(tmp_path / "fresh")
        assert render_campaign_report(stitched).replace(
            str(tmp_path / "camp"), ""
        ) == render_campaign_report(uncut).replace(str(tmp_path / "fresh"), "")

    def test_existing_directory_needs_resume(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "camp", max_cells=0)
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(spec, tmp_path / "camp")

    def test_foreign_directory_rejected(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path / "camp", max_cells=0)
        other = tiny_spec(seed=12)
        with pytest.raises(CampaignError, match="different spec"):
            run_campaign(other, tmp_path / "camp", resume=True)

    def test_status_tracks_cells(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "camp", max_cells=1)
        status = campaign_status(tmp_path / "camp")
        assert status.n_complete == 1 and not status.complete
        assert "1/2 cells" in status.table()
        run_campaign(spec, tmp_path / "camp", resume=True)
        assert campaign_status(tmp_path / "camp", spec).complete

    def test_outages_applied(self, tmp_path):
        calm = tiny_spec(name="calm")
        stormy = tiny_spec(
            name="stormy",
            scenario=ScenarioSpec(
                **TINY,
                outages=(OutageSpec(station=0, start=0, duration=3),),
            ),
        )
        a = run_campaign(calm, tmp_path / "calm", max_cells=1)
        b = run_campaign(stormy, tmp_path / "stormy", max_cells=1)
        cell = calm.expand()[0].cell_id
        assert (
            a.studies[cell].summary("OL_GD", "mean_delay_ms").values
            != b.studies[cell].summary("OL_GD", "mean_delay_ms").values
        )


class TestReport:
    def test_report_and_csv(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "camp")
        report_path, csv_path, report = write_campaign_report(
            tmp_path / "camp"
        )
        text = render_campaign_report(report)
        assert "n_stations=10" in text and "n_stations=12" in text
        assert "OL_GD" in text and "Greedy_GD" in text
        assert report_path.exists()
        lines = csv_path.read_text(encoding="utf-8").strip().splitlines()
        # header + 2 cells x 2 controllers x 3 metrics
        assert len(lines) == 1 + 12
        assert lines[0].startswith("cell_id,n_stations,controller,metric")

    def test_partial_campaign_lists_pending(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, tmp_path / "camp", max_cells=1)
        _, _, report = write_campaign_report(tmp_path / "camp")
        assert len(report.pending) == 1
        assert "pending" in render_campaign_report(report)

    def test_unknown_metric_rejected(self, tmp_path):
        run_campaign(tiny_spec(), tmp_path / "camp", max_cells=1)
        _, _, report = write_campaign_report(tmp_path / "camp")
        with pytest.raises(CampaignError, match="no metric"):
            render_campaign_report(report, "nope")


class TestCampaignCli:
    def test_run_status_report_cycle(self, tmp_path, capsys):
        spec_path = tmp_path / "tiny.toml"
        spec_path.write_text(TINY_TOML, encoding="utf-8")
        out = tmp_path / "camp"

        assert cli_main(
            ["campaign", "run", str(spec_path), "--out", str(out),
             "--max-cells", "1"]
        ) == 1
        assert "stopped early" in capsys.readouterr().out

        assert cli_main(["campaign", "status", str(out)]) == 1

        assert cli_main(
            ["campaign", "run", str(spec_path), "--out", str(out), "--resume"]
        ) == 0
        assert cli_main(["campaign", "status", str(out)]) == 0

        assert cli_main(["campaign", "report", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "mean_delay_ms" in printed
        assert (out / "report.md").exists()
        assert (out / "results.csv").exists()

    def test_run_rejects_bad_spec(self, tmp_path, capsys):
        spec_path = tmp_path / "bad.toml"
        spec_path.write_text("[mystery]\nx = 1\n", encoding="utf-8")
        assert cli_main(
            ["campaign", "run", str(spec_path), "--out", str(tmp_path / "o")]
        ) == 2
        assert "unknown top-level" in capsys.readouterr().err

    def test_status_on_missing_directory(self, tmp_path, capsys):
        assert cli_main(
            ["campaign", "status", str(tmp_path / "nothing")]
        ) == 2
        assert "no campaign" in capsys.readouterr().err
