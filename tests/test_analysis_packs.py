"""Fixture mini-projects for the project-scope rule packs (STATE / MP /
OBS) and the hot-path DTYPE pack: each pack gets a positive finding, a
suppressed variant, and a baseline-matched variant."""

from repro.analysis import Baseline, analyze_source, analyze_sources

#: Catalogue module used by the OBS fixtures (path fixes its dotted name).
NAMES_PATH = "src/repro/obs/names.py"


def rules_fired(findings):
    return [f.rule for f in findings]


def assert_baseline_covers(findings):
    baseline = Baseline.from_findings(findings)
    assert baseline.filter(findings) == []


# --------------------------------------------------------------------- #
# STATE pack
# --------------------------------------------------------------------- #


class TestCheckpointPair:
    BAD = {
        "src/repro/bandits/t.py": (
            "class Tracker:\n"
            "    def __init__(self):\n"
            "        self._xs = []\n"
            "    def record(self, v):\n"
            "        self._xs.append(v)\n"
        )
    }

    def test_mutable_class_without_pair_fires(self):
        findings = analyze_sources(self.BAD)
        assert rules_fired(findings) == ["STATE001"]
        assert "Tracker" in findings[0].message

    def test_pair_present_is_clean(self):
        good = {
            "src/repro/bandits/t.py": (
                "class Tracker:\n"
                "    def __init__(self):\n"
                "        self._xs = []\n"
                "    def record(self, v):\n"
                "        self._xs.append(v)\n"
                "    def state_dict(self):\n"
                "        return {'xs': list(self._xs)}\n"
                "    def load_state_dict(self, state):\n"
                "        self._xs = list(state['xs'])\n"
            )
        }
        assert analyze_sources(good) == []

    def test_pair_inherited_across_modules_is_clean(self):
        good = {
            "src/repro/prediction/base.py": (
                "class Base:\n"
                "    def state_dict(self):\n"
                "        return {}\n"
                "    def load_state_dict(self, state):\n"
                "        pass\n"
            ),
            "src/repro/prediction/child.py": (
                "from repro.prediction.base import Base\n"
                "class Child(Base):\n"
                "    def observe(self, v):\n"
                "        self._seen = v\n"
            ),
        }
        assert analyze_sources(good) == []

    def test_outside_state_packages_is_silent(self):
        outside = {"src/repro/cli/t.py": self.BAD["src/repro/bandits/t.py"]}
        assert analyze_sources(outside) == []

    def test_suppression_silences(self):
        suppressed = {
            "src/repro/bandits/t.py": (
                "# repro: allow[STATE001] -- ephemeral scratch state\n"
                + self.BAD["src/repro/bandits/t.py"]
            )
        }
        assert analyze_sources(suppressed) == []

    def test_baseline_matches(self):
        assert_baseline_covers(analyze_sources(self.BAD))


class TestCheckpointKeys:
    BAD = {
        "src/repro/workload/t.py": (
            "class C:\n"
            "    def state_dict(self):\n"
            "        return {'a': 1, 'b': 2}\n"
            "    def load_state_dict(self, state):\n"
            "        self.a = state['a']\n"
        )
    }

    def test_key_mismatch_fires_both_directions(self):
        findings = analyze_sources(self.BAD)
        assert rules_fired(findings) == ["STATE002"]
        assert "written but never restored: b" in findings[0].message

    def test_matching_keys_are_clean(self):
        good = {
            "src/repro/workload/t.py": (
                "class C:\n"
                "    def state_dict(self):\n"
                "        return {'a': 1}\n"
                "    def load_state_dict(self, state):\n"
                "        self.a = state['a']\n"
            )
        }
        assert analyze_sources(good) == []

    def test_dynamic_keys_are_skipped(self):
        dynamic = {
            "src/repro/workload/t.py": (
                "class C:\n"
                "    def state_dict(self):\n"
                "        return dict(self.__dict__)\n"
                "    def load_state_dict(self, state):\n"
                "        self.a = state['a']\n"
            )
        }
        assert analyze_sources(dynamic) == []

    def test_suppression_silences(self):
        source = self.BAD["src/repro/workload/t.py"].replace(
            "    def load_state_dict(self, state):\n",
            "    # repro: allow[STATE002] -- b restored by the caller\n"
            "    def load_state_dict(self, state):\n",
        )
        assert analyze_sources({"src/repro/workload/t.py": source}) == []

    def test_baseline_matches(self):
        assert_baseline_covers(analyze_sources(self.BAD))


# --------------------------------------------------------------------- #
# MP pack
# --------------------------------------------------------------------- #


class TestPoolCallable:
    def test_lambda_nested_and_bound_method_fire(self):
        bad = {
            "src/repro/campaigns/t.py": (
                "class Driver:\n"
                "    def go(self, pool):\n"
                "        pool.submit(lambda: 1)\n"
                "        pool.submit(self.step)\n"
                "    def run(self, pool):\n"
                "        def inner():\n"
                "            return 2\n"
                "        pool.submit(inner)\n"
            )
        }
        findings = analyze_sources(bad)
        assert sorted(rules_fired(findings)) == ["MP001", "MP001", "MP001"]

    def test_module_level_function_is_clean(self):
        good = {
            "src/repro/campaigns/t.py": (
                "def work(x):\n"
                "    return x\n"
                "def drive(pool):\n"
                "    pool.submit(work, 1)\n"
            )
        }
        assert analyze_sources(good) == []

    def test_suppression_silences(self):
        suppressed = {
            "src/repro/campaigns/t.py": (
                "def drive(pool):\n"
                "    pool.submit(lambda: 1)  # repro: allow[MP001] -- thread pool, never pickled\n"
            )
        }
        assert analyze_sources(suppressed) == []

    def test_baseline_matches(self):
        bad = {
            "src/repro/campaigns/t.py": (
                "def drive(pool):\n    pool.submit(lambda: 1)\n"
            )
        }
        assert_baseline_covers(analyze_sources(bad))


class TestWorkerGlobalWrite:
    BAD = {
        "src/repro/campaigns/worker.py": (
            "CACHE = {}\n"
            "def entry(x):\n"
            "    CACHE[x] = x\n"
            "    return x\n"
        ),
        "src/repro/campaigns/driver.py": (
            "from repro.campaigns.worker import entry\n"
            "def drive(pool):\n"
            "    pool.submit(entry, 1)\n"
        ),
    }

    def test_worker_reachable_global_write_fires(self):
        findings = analyze_sources(self.BAD)
        assert rules_fired(findings) == ["MP002"]
        assert "'CACHE'" in findings[0].message

    def test_write_reached_transitively_fires(self):
        files = dict(self.BAD)
        files["src/repro/campaigns/worker.py"] = (
            "CACHE = {}\n"
            "def entry(x):\n"
            "    return helper(x)\n"
            "def helper(x):\n"
            "    CACHE[x] = x\n"
            "    return x\n"
        )
        assert rules_fired(analyze_sources(files)) == ["MP002"]

    def test_same_write_outside_worker_path_is_clean(self):
        files = {"src/repro/campaigns/worker.py": self.BAD["src/repro/campaigns/worker.py"]}
        assert analyze_sources(files) == []

    def test_suppression_silences(self):
        files = dict(self.BAD)
        files["src/repro/campaigns/worker.py"] = (
            "CACHE = {}\n"
            "def entry(x):\n"
            "    CACHE[x] = x  # repro: allow[MP002] -- per-worker memo by design\n"
            "    return x\n"
        )
        assert analyze_sources(files) == []

    def test_baseline_matches(self):
        assert_baseline_covers(analyze_sources(self.BAD))


class TestPoolGenerator:
    def test_generator_argument_fires(self):
        bad = {
            "src/repro/campaigns/t.py": (
                "import numpy as np\n"
                "def work(x):\n"
                "    return x\n"
                "def drive(pool):\n"
                "    rng = np.random.default_rng(0)\n"
                "    pool.submit(work, rng)\n"
            )
        }
        assert rules_fired(analyze_sources(bad)) == ["MP003"]

    def test_generator_param_on_submitted_function_fires(self):
        bad = {
            "src/repro/campaigns/worker.py": (
                "import numpy as np\n"
                "def work(seed, rng: np.random.Generator):\n"
                "    return seed\n"
            ),
            "src/repro/campaigns/driver.py": (
                "from repro.campaigns.worker import work\n"
                "def drive(pool, payload):\n"
                "    pool.submit(work, payload)\n"
            ),
        }
        assert rules_fired(analyze_sources(bad)) == ["MP003"]

    def test_integer_seed_is_clean(self):
        good = {
            "src/repro/campaigns/t.py": (
                "def work(seed):\n"
                "    return seed\n"
                "def drive(pool):\n"
                "    pool.submit(work, 123)\n"
            )
        }
        assert analyze_sources(good) == []

    def test_suppression_and_baseline(self):
        bad_line = "    pool.submit(work, np.random.default_rng(0))\n"
        source = (
            "import numpy as np\n"
            "def work(x):\n"
            "    return x\n"
            "def drive(pool):\n" + bad_line
        )
        findings = analyze_sources({"src/repro/campaigns/t.py": source})
        assert rules_fired(findings) == ["MP003"]
        assert_baseline_covers(findings)
        suppressed = source.replace(
            bad_line,
            "    # repro: allow[MP003] -- fixture exercises the forked stream\n"
            + bad_line,
        )
        assert analyze_sources({"src/repro/campaigns/t.py": suppressed}) == []


# --------------------------------------------------------------------- #
# OBS pack
# --------------------------------------------------------------------- #


class TestObsCatalogue:
    NAMES = (
        "COUNTERS = frozenset({'sim.slots'})\n"
        "GAUGES = frozenset()\n"
        "HISTOGRAMS = frozenset()\n"
        "SPANS = frozenset()\n"
    )
    USER = (
        "from repro import obs\n"
        "def tick():\n"
        "    obs.inc('sim.slots')\n"
    )

    def test_declared_and_used_is_clean(self):
        files = {NAMES_PATH: self.NAMES, "src/repro/campaigns/t.py": self.USER}
        assert analyze_sources(files) == []

    def test_undeclared_use_fires_obs002(self):
        files = {
            NAMES_PATH: self.NAMES,
            "src/repro/campaigns/t.py": self.USER.replace("sim.slots", "sim.typo"),
        }
        findings = analyze_sources(files)
        assert rules_fired(findings) == ["OBS002", "OBS003"]
        assert findings[0].path == "src/repro/campaigns/t.py"

    def test_unused_declaration_fires_obs003(self):
        files = {NAMES_PATH: self.NAMES}
        findings = analyze_sources(files)
        assert rules_fired(findings) == ["OBS003"]
        assert findings[0].path == NAMES_PATH

    def test_without_catalogue_module_both_rules_stay_silent(self):
        files = {
            "src/repro/campaigns/t.py": self.USER.replace("sim.slots", "sim.typo")
        }
        assert analyze_sources(files) == []

    def test_span_name_covers_derived_series(self):
        files = {
            NAMES_PATH: self.NAMES.replace(
                "SPANS = frozenset()", "SPANS = frozenset({'sim.decide'})"
            ),
            "src/repro/campaigns/t.py": (
                "from repro import obs\n"
                "def tick():\n"
                "    obs.inc('sim.slots')\n"
                "    with obs.span('sim.decide'):\n"
                "        pass\n"
            ),
        }
        assert analyze_sources(files) == []

    def test_suppression_and_baseline(self):
        files = {
            NAMES_PATH: self.NAMES,
            "src/repro/campaigns/t.py": (
                "from repro import obs\n"
                "def tick():\n"
                "    obs.inc('sim.slots')\n"
                "    obs.inc('sim.adhoc')  # repro: allow[OBS002] -- scratch series in an example\n"
            ),
        }
        assert analyze_sources(files) == []
        unsuppressed = {
            NAMES_PATH: self.NAMES,
            "src/repro/campaigns/t.py": (
                "from repro import obs\n"
                "def tick():\n"
                "    obs.inc('sim.slots')\n"
                "    obs.inc('sim.adhoc')\n"
            ),
        }
        assert_baseline_covers(analyze_sources(unsuppressed))


# --------------------------------------------------------------------- #
# DTYPE pack (module scope, hot-path modules only)
# --------------------------------------------------------------------- #


class TestDtypePack:
    HOT = "src/repro/nn/fused.py"
    COLD = "src/repro/cli/plotting.py"

    def test_dtype_less_constructor_fires_in_hot_path(self):
        source = "import numpy as np\nx = np.zeros(4)\n"
        findings = analyze_source(source, self.HOT)
        assert rules_fired(findings) == ["DTYPE001"]

    def test_explicit_dtype_is_clean(self):
        source = "import numpy as np\nx = np.zeros(4, dtype=np.float32)\n"
        assert analyze_source(source, self.HOT) == []

    def test_cold_modules_are_exempt(self):
        source = "import numpy as np\nx = np.zeros(4)\n"
        assert analyze_source(source, self.COLD) == []

    def test_implicit_float64_spellings_fire(self):
        source = (
            "import numpy as np\n"
            "a = np.asarray([1.0], dtype=float)\n"
            "b = np.asarray([1.0], dtype='float64')\n"
        )
        findings = analyze_source(source, self.HOT)
        assert rules_fired(findings) == ["DTYPE002", "DTYPE002"]

    def test_np_float64_spelling_is_clean(self):
        source = "import numpy as np\na = np.asarray([1.0], dtype=np.float64)\n"
        assert analyze_source(source, self.HOT) == []

    def test_suppression_and_baseline(self):
        bad = "import numpy as np\nx = np.zeros(4)\n"
        assert_baseline_covers(analyze_source(bad, self.HOT))
        suppressed = (
            "import numpy as np\n"
            "x = np.zeros(4)  # repro: allow[DTYPE001] -- float64 scratch, not hot-path data\n"
        )
        assert analyze_source(suppressed, self.HOT) == []
