"""Tests for the Info-RNN-GAN: components, training dynamics, predictor."""

import numpy as np
import pytest

from repro.gan import Discriminator, GanDemandPredictor, Generator, InfoRnnGan, QHead
from repro.mec.requests import Request
from repro.nn.tensor import Tensor
from repro.prediction import ArPredictor
from repro.workload import BurstyDemandModel, encode_request_locations


def make_gan(seed=0, **kwargs):
    return InfoRnnGan(code_dim=3, rng=np.random.default_rng(seed), hidden_size=8, **kwargs)


def toy_batch(seed=0, window=5, batch=4, cond_channels=1):
    rng = np.random.default_rng(seed)
    real = np.abs(rng.normal(2.0, 1.0, size=(window, batch, 1)))
    cond = np.abs(rng.normal(2.0, 1.0, size=(window, batch, cond_channels)))
    codes = np.eye(3)[rng.integers(0, 3, size=batch)]
    return real, cond, codes


class TestGenerator:
    def test_output_shape_and_positivity(self):
        rng = np.random.default_rng(0)
        gen = Generator(noise_dim=4, code_dim=3, rng=rng, hidden_size=8)
        noise = gen.sample_noise(6, 2, rng)
        codes = Tensor(np.eye(3)[[0, 2]])
        prev = Tensor(np.abs(rng.normal(size=(6, 2, 1))))
        out = gen(noise, codes, prev)
        assert out.shape == (6, 2, 1)
        assert np.all(out.data > 0)  # softplus head

    def test_shape_validation(self):
        rng = np.random.default_rng(0)
        gen = Generator(noise_dim=4, code_dim=3, rng=rng, hidden_size=8)
        noise = gen.sample_noise(6, 2, rng)
        codes = Tensor(np.eye(3)[[0, 2]])
        with pytest.raises(ValueError, match="conditioning"):
            gen(noise, codes, Tensor(np.zeros((6, 2, 5))))
        with pytest.raises(ValueError, match="codes"):
            gen(noise, Tensor(np.zeros((2, 7))), Tensor(np.zeros((6, 2, 1))))
        with pytest.raises(ValueError, match="noise"):
            gen(Tensor(np.zeros((6, 2, 9))), codes, Tensor(np.zeros((6, 2, 1))))

    def test_multi_channel_conditioning(self):
        rng = np.random.default_rng(0)
        gen = Generator(noise_dim=2, code_dim=3, rng=rng, cond_channels=2, hidden_size=8)
        noise = gen.sample_noise(4, 2, rng)
        out = gen(noise, Tensor(np.eye(3)[[0, 1]]), Tensor(np.ones((4, 2, 2))))
        assert out.shape == (4, 2, 1)

    def test_code_changes_output(self):
        """The latent code must influence generation (InfoGAN requirement)."""
        rng = np.random.default_rng(0)
        gen = Generator(noise_dim=2, code_dim=3, rng=rng, hidden_size=8)
        noise = gen.sample_noise(4, 1, np.random.default_rng(1))
        prev = Tensor(np.ones((4, 1, 1)))
        out_a = gen(noise, Tensor(np.eye(3)[[0]]), prev).data
        out_b = gen(noise, Tensor(np.eye(3)[[2]]), prev).data
        assert not np.allclose(out_a, out_b)


class TestDiscriminator:
    def test_probability_range(self):
        disc = Discriminator(np.random.default_rng(0), hidden_size=8)
        series = Tensor(np.abs(np.random.default_rng(1).normal(size=(5, 3, 1))))
        probs, pooled = disc(series)
        assert probs.shape == (3, 1)
        assert np.all((probs.data > 0) & (probs.data < 1))
        assert pooled.shape == (3, disc.feature_size)

    def test_series_shape_checked(self):
        disc = Discriminator(np.random.default_rng(0), hidden_size=8)
        with pytest.raises(ValueError):
            disc(Tensor(np.zeros((5, 3, 2))))


class TestQHead:
    def test_logit_shape(self):
        q = QHead(feature_size=16, code_dim=3, rng=np.random.default_rng(0))
        logits = q(Tensor(np.zeros((4, 16))))
        assert logits.shape == (4, 3)

    def test_info_loss_decreases_when_trained(self):
        """Q must be able to learn codes from features correlated with them."""
        rng = np.random.default_rng(0)
        q = QHead(feature_size=6, code_dim=3, rng=rng)
        from repro.nn.optim import Adam

        optimizer = Adam(q.parameters(), lr=0.05)
        codes = np.eye(3)[rng.integers(0, 3, size=30)]
        features = codes @ rng.normal(size=(3, 6)) + 0.1 * rng.normal(size=(30, 6))
        first = q.info_loss(Tensor(features), codes).item()
        for _ in range(60):
            optimizer.zero_grad()
            loss = q.info_loss(Tensor(features), codes)
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.5 * first


class TestInfoRnnGan:
    def test_train_step_returns_losses(self):
        gan = make_gan()
        real, cond, codes = toy_batch()
        losses = gan.train_step(real, cond, codes)
        assert losses.discriminator > 0
        assert losses.generator_total == pytest.approx(
            losses.adversarial + losses.mutual_information + losses.supervised
        )

    def test_shape_validation(self):
        gan = make_gan()
        real, cond, codes = toy_batch()
        with pytest.raises(ValueError, match="conditioning"):
            gan.train_step(real, cond[:, :, :0], codes)
        with pytest.raises(ValueError, match="codes batch"):
            gan.train_step(real, cond, codes[:2])
        with pytest.raises(ValueError, match="real_series"):
            gan.train_step(real[:, :, 0], cond, codes)

    def test_supervised_loss_decreases(self):
        """Training must reduce the prediction error on a fixed batch."""
        gan = make_gan(seed=1)
        real, cond, codes = toy_batch(seed=1)
        first = gan.train_step(real, cond, codes).supervised
        for _ in range(40):
            last = gan.train_step(real, cond, codes).supervised
        assert last < 0.5 * first

    def test_generate_shape_and_determinism_of_mean(self):
        gan = make_gan(seed=2)
        _, cond, codes = toy_batch(seed=2)
        out = gan.generate(codes, cond, n_samples=3)
        assert out.shape == (5, 4, 1)
        assert np.all(out > 0)

    def test_zero_weights_disable_terms(self):
        gan = make_gan(seed=3, info_lambda=0.0, supervised_weight=0.0)
        real, cond, codes = toy_batch(seed=3)
        losses = gan.train_step(real, cond, codes)
        assert losses.mutual_information == 0.0
        assert losses.supervised == 0.0

    def test_fit_returns_epoch_history(self):
        gan = make_gan(seed=4)
        rng = np.random.default_rng(4)
        windows = np.abs(rng.normal(2, 1, size=(10, 5, 1)))
        cond = np.abs(rng.normal(2, 1, size=(10, 5, 1)))
        codes = np.eye(3)[rng.integers(0, 3, size=10)]
        history = gan.fit(windows, cond, codes, epochs=2, batch_size=4)
        assert len(history) == 2


class TestGanDemandPredictor:
    def _setup(self, n_req=9, n_hot=3, horizon=60, seed=5):
        requests = [
            Request(index=i, service_index=0, basic_demand_mb=1.0, hotspot_index=i % n_hot)
            for i in range(n_req)
        ]
        model = BurstyDemandModel(
            requests, np.random.default_rng(seed), p_enter=0.15, p_exit=0.3
        )
        demand = model.matrix(horizon)
        codes = encode_request_locations(requests, n_hot)
        return demand, codes

    def test_predict_before_observation_is_zero(self):
        _, codes = self._setup()
        predictor = GanDemandPredictor(codes, np.random.default_rng(0), online_steps=0)
        np.testing.assert_array_equal(predictor.predict_next(), np.zeros(9))

    def test_predictions_positive_after_observation(self):
        demand, codes = self._setup()
        predictor = GanDemandPredictor(codes, np.random.default_rng(0), online_steps=0)
        predictor.observe(demand[0])
        assert np.all(predictor.predict_next() > 0)

    def test_warmup_too_short_raises(self):
        _, codes = self._setup()
        with pytest.raises(ValueError, match="2 slots"):
            GanDemandPredictor(
                codes,
                np.random.default_rng(0),
                warmup_history=np.ones((1, 9)),
            )

    def test_warmup_shape_checked(self):
        _, codes = self._setup()
        with pytest.raises(ValueError, match="warmup_history"):
            GanDemandPredictor(
                codes, np.random.default_rng(0), warmup_history=np.ones((5, 4))
            )

    def test_codes_must_be_2d(self):
        with pytest.raises(ValueError):
            GanDemandPredictor(np.ones(4), np.random.default_rng(0))

    @pytest.mark.slow
    def test_gan_beats_ar_on_bursty_demand(self):
        """The fig-6 mechanism: GAN prediction error below AR (Eq. 27)."""
        demand, codes = self._setup(horizon=100)
        warm, live = demand[:40], demand[40:]
        predictor = GanDemandPredictor(
            codes,
            np.random.default_rng(3),
            window=8,
            warmup_history=warm,
            pretrain_epochs=12,
            online_steps=1,
        )
        ar = ArPredictor(9, order=5)
        for row in warm:
            ar.observe(row)
        gan_err, ar_err = [], []
        for actual in live:
            gan_err.append(np.mean(np.abs(predictor.predict_next() - actual)))
            ar_err.append(np.mean(np.abs(ar.predict_next() - actual)))
            predictor.observe(actual)
            ar.observe(actual)
        assert np.mean(gan_err) < np.mean(ar_err)
