"""Tests for the LP solver and the exact branch-and-bound ILP solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.branch_and_bound import solve_ilp
from repro.lp.model import LpModel, Sense
from repro.lp.solver import solve_lp


def knapsack_model(values, weights, capacity, integer=True):
    """max sum(v*x) s.t. sum(w*x) <= capacity  ->  min -sum(v*x)."""
    model = LpModel("knapsack")
    indices = [
        model.add_variable(low=0.0, high=1.0, objective=-v, integer=integer)
        for v in values
    ]
    model.add_constraint(
        {i: w for i, w in zip(indices, weights)}, Sense.LE, capacity
    )
    return model


class TestSolveLp:
    def test_simple_minimum(self):
        model = LpModel()
        x = model.add_variable(objective=2.0)
        y = model.add_variable(objective=3.0)
        model.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 4.0)
        solution = solve_lp(model)
        assert solution.is_optimal
        # All weight goes to the cheaper variable.
        assert solution.value_of(x) == pytest.approx(4.0)
        assert solution.value_of(y) == pytest.approx(0.0)
        assert solution.objective == pytest.approx(8.0)

    def test_equality_constraint(self):
        model = LpModel()
        x = model.add_variable(objective=1.0)
        model.add_constraint({x: 2.0}, Sense.EQ, 6.0)
        solution = solve_lp(model)
        assert solution.value_of(x) == pytest.approx(3.0)

    def test_infeasible(self):
        model = LpModel()
        x = model.add_variable(low=0.0, high=1.0, objective=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 5.0)
        solution = solve_lp(model)
        assert solution.status == "infeasible"
        assert not solution.is_optimal
        assert math.isnan(solution.objective)

    def test_unbounded(self):
        model = LpModel()
        model.add_variable(objective=-1.0)  # minimise -x, x unbounded above
        solution = solve_lp(model)
        assert solution.status == "unbounded"

    def test_value_of_raises_when_not_optimal(self):
        model = LpModel()
        x = model.add_variable(low=0.0, high=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 5.0)
        solution = solve_lp(model)
        with pytest.raises(RuntimeError):
            solution.value_of(x)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            solve_lp(LpModel())

    def test_values_respect_bounds(self):
        model = LpModel()
        x = model.add_variable(low=0.0, high=1.0, objective=-1.0)
        solution = solve_lp(model)
        assert 0.0 <= solution.value_of(x) <= 1.0

    def test_lp_relaxation_is_fractional_for_knapsack(self):
        model = knapsack_model([6.0, 5.0], [5.0, 4.0], 6.0, integer=False)
        solution = solve_lp(model)
        values = solution.values
        assert any(0.01 < v < 0.99 for v in values)


class TestSolveIlp:
    def test_knapsack_exact(self):
        # capacity 10: best is items 1+2 (values 6+5=11, weights 5+4=9),
        # not the greedy item 0 (value 9, weight 8).
        model = knapsack_model([9.0, 6.0, 5.0], [8.0, 5.0, 4.0], 10.0)
        result = solve_ilp(model)
        assert result.proven_optimal
        assert result.objective == pytest.approx(-11.0)
        np.testing.assert_allclose(result.values, [0.0, 1.0, 1.0])

    def test_integral_lp_shortcut(self):
        """When the LP relaxation is already integral, one node suffices."""
        model = LpModel()
        x = model.add_binary(objective=-1.0)
        result = solve_ilp(model)
        assert result.proven_optimal
        assert result.values[x] == 1.0
        assert result.nodes_explored == 1

    def test_infeasible(self):
        model = LpModel()
        x = model.add_binary(objective=1.0)
        model.add_constraint({x: 1.0}, Sense.GE, 2.0)
        result = solve_ilp(model)
        assert result.status == "infeasible"
        assert not result.has_solution
        assert result.gap == math.inf

    def test_ilp_never_better_than_lp(self):
        model = knapsack_model([9.0, 6.0, 5.0, 4.0], [8.0, 5.0, 4.0, 3.0], 11.0)
        lp = solve_lp(model.relaxed())
        ilp = solve_ilp(model)
        assert ilp.objective >= lp.objective - 1e-9

    def test_node_limit_respected(self):
        values = [7.0, 5.0, 6.0, 4.0, 8.0, 3.0, 9.0, 2.0]
        weights = [6.0, 4.0, 5.0, 3.0, 7.0, 2.0, 8.0, 1.0]
        model = knapsack_model(values, weights, 17.0)
        result = solve_ilp(model, node_limit=2)
        assert result.nodes_explored <= 2

    def test_invalid_node_limit(self):
        with pytest.raises(ValueError):
            solve_ilp(LpModel(), node_limit=0)

    def test_gap_zero_when_proven(self):
        model = knapsack_model([3.0, 2.0], [2.0, 1.0], 2.0)
        result = solve_ilp(model)
        assert result.gap == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=10.0),
                st.floats(min_value=1.0, max_value=10.0),
            ),
            min_size=1,
            max_size=7,
        ),
        st.floats(min_value=1.0, max_value=30.0),
    )
    def test_matches_brute_force(self, items, capacity):
        """B&B must agree with exhaustive enumeration on small knapsacks."""
        values = [v for v, _ in items]
        weights = [w for _, w in items]
        model = knapsack_model(values, weights, capacity)
        result = solve_ilp(model)

        best = 0.0
        for mask in range(2 ** len(items)):
            picked = [(mask >> i) & 1 for i in range(len(items))]
            weight = sum(w * p for w, p in zip(weights, picked))
            if weight <= capacity + 1e-9:
                best = max(best, sum(v * p for v, p in zip(values, picked)))
        assert result.proven_optimal
        assert -result.objective == pytest.approx(best, abs=1e-6)

    def test_solution_satisfies_constraints(self):
        model = knapsack_model([9.0, 6.0, 5.0], [8.0, 5.0, 4.0], 10.0)
        result = solve_ilp(model)
        weight = float(np.dot(result.values, [8.0, 5.0, 4.0]))
        assert weight <= 10.0 + 1e-9
        assert all(v in (0.0, 1.0) for v in result.values)
