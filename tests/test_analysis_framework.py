"""Analyzer internals: suppressions, baseline round-trips, JSON output
schema, and the ``python -m repro.analysis`` exit-code contract."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import (
    Baseline,
    analyze_source,
    parse_suppressions,
    rule_by_id,
    rules_table,
)
from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fires API001 (scope: everywhere), so it works from any path — including
#: a pytest tmp_path, which is outside every package-scoped rule.
MUTABLE_DEFAULT = "def f(xs=[]):\n    return xs\n"


def run_cli(args, cwd):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
    )


# --------------------------------------------------------------------- #
# Suppression comments
# --------------------------------------------------------------------- #


class TestSuppressions:
    def test_parse_extracts_rules_and_justification(self):
        source = "x = 1  # repro: allow[AG002,DET005] -- scipy buffer\n"
        (suppression,) = parse_suppressions(source)
        assert suppression.rules == ("AG002", "DET005")
        assert suppression.justification == "scipy buffer"
        assert suppression.line == 1
        assert not suppression.own_line

    def test_pattern_inside_string_literal_is_not_a_suppression(self):
        source = 's = "# repro: allow[AG002] -- not a comment"\n'
        assert parse_suppressions(source) == []

    def test_same_line_suppression_silences_finding(self):
        source = "def f(xs=[]):  # repro: allow[API001] -- fixture\n    return xs\n"
        assert analyze_source(source, "tests/x.py", rules=[rule_by_id("API001")]) == []

    def test_own_line_suppression_covers_next_line(self):
        source = (
            "# repro: allow[API001] -- fixture\n"
            "def f(xs=[]):\n"
            "    return xs\n"
        )
        assert analyze_source(source, "tests/x.py", rules=[rule_by_id("API001")]) == []

    def test_suppression_only_silences_named_rule(self):
        source = "def f(xs=[]):  # repro: allow[AG002] -- wrong rule\n    return xs\n"
        findings = analyze_source(
            source, "tests/x.py", rules=[rule_by_id("API001")]
        )
        assert [f.rule for f in findings] == ["API001"]

    def test_missing_justification_is_reported(self):
        source = "def f(xs=[]):  # repro: allow[API001]\n    return xs\n"
        findings = analyze_source(source, "tests/x.py")
        rules = [f.rule for f in findings]
        assert "ANA001" in rules  # the bare allow is flagged ...
        assert "API001" not in rules  # ... but still suppresses

    def test_unused_suppression_is_reported_with_full_registry(self):
        source = "x = 1  # repro: allow[DET001] -- nothing here fires\n"
        findings = analyze_source(source, "tests/x.py")
        assert [f.rule for f in findings] == ["ANA002"]

    def test_unused_check_skipped_for_explicit_rule_subset(self):
        source = "x = 1  # repro: allow[DET001] -- targets a rule not run\n"
        assert analyze_source(source, "tests/x.py", rules=[rule_by_id("API001")]) == []

    def test_syntax_error_reports_ana000(self):
        findings = analyze_source("def f(:\n", "tests/x.py")
        assert [f.rule for f in findings] == ["ANA000"]


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #


class TestBaseline:
    def findings(self, source="", path="tests/x.py"):
        return analyze_source(source or MUTABLE_DEFAULT, path)

    def test_round_trip_filters_grandfathered_findings(self, tmp_path):
        findings = self.findings()
        baseline = Baseline.from_findings(findings)
        baseline_path = tmp_path / "baseline.json"
        baseline.save(baseline_path)
        reloaded = Baseline.load(baseline_path)
        assert len(reloaded) == len(findings) == 1
        assert reloaded.filter(findings) == []

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        findings = self.findings()
        assert baseline.filter(findings) == findings

    def test_new_findings_pass_through(self):
        old = self.findings()
        baseline = Baseline.from_findings(old)
        two = MUTABLE_DEFAULT + "def g(ys={}):\n    return ys\n"
        fresh = baseline.filter(self.findings(two))
        assert [f.line for f in fresh] == [3]

    def test_counted_entries_consume_one_match_each(self):
        # Two byte-identical violating lines -> two baseline entries with
        # the same key; a third occurrence must surface as fresh.
        two_same = "def f(xs=[]):\n    return xs\ndef g(xs=[]):\n    return xs\n"
        baseline = Baseline.from_findings(self.findings(two_same))
        three_same = two_same + "def h(xs=[]):\n    return xs\n"
        fresh = baseline.filter(self.findings(three_same))
        assert len(fresh) == 1

    def test_matching_is_line_number_independent(self):
        baseline = Baseline.from_findings(self.findings())
        shifted = "import os  # unrelated new first line\n" + MUTABLE_DEFAULT
        findings = [
            f for f in self.findings(shifted) if f.rule == "API001"
        ]
        assert baseline.filter(findings) == []

    def test_version_mismatch_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        try:
            Baseline.load(bad)
        except ValueError as error:
            assert "version" in str(error)
        else:
            raise AssertionError("expected ValueError on version mismatch")


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #


class TestCli:
    def test_module_invocation_exits_nonzero_on_violation(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(MUTABLE_DEFAULT)
        result = run_cli([str(bad)], cwd=tmp_path)
        assert result.returncode == 1, result.stderr
        assert "API001" in result.stdout

    def test_module_invocation_exits_zero_on_clean_file(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def f(xs=None):\n    return xs or []\n")
        result = run_cli([str(good)], cwd=tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_missing_path_is_usage_error(self, tmp_path):
        result = run_cli(["does/not/exist"], cwd=tmp_path)
        assert result.returncode == 2
        assert "no such file" in result.stderr

    def test_json_output_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(MUTABLE_DEFAULT)
        status = main(["--format", "json", "--no-baseline", "--no-cache", str(bad)])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1
        assert payload["version"] == 2
        assert payload["checked_files"] == 1
        assert payload["count"] == 1
        (finding,) = payload["findings"]
        assert set(finding) == {
            "path", "rule", "line", "col", "message", "text", "scope",
        }
        assert finding["rule"] == "API001"
        assert finding["line"] == 1
        assert finding["text"] == "def f(xs=[]):"
        assert finding["scope"] == "module"
        assert payload["project"]["modules"] == 1
        assert payload["project"]["import_edges"] == 0
        assert "STATE001" in payload["project"]["rules"]
        assert payload["cache"] == {"enabled": False, "hits": 0, "misses": 0}

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(MUTABLE_DEFAULT)
        baseline = tmp_path / "baseline.json"
        assert main(["--baseline", str(baseline), "--update-baseline", str(bad)]) == 0
        capsys.readouterr()
        assert main(["--baseline", str(baseline), str(bad)]) == 0
        # The baseline does not hide *new* findings.
        bad.write_text(MUTABLE_DEFAULT + "def g(ys=[]):\n    return ys\n")
        assert main(["--baseline", str(baseline), str(bad)]) == 1

    def test_update_baseline_reports_pruned_entries(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(MUTABLE_DEFAULT)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        # Still fires: carried over, not pruned.  The
                        # path must match what the analyzer reports for
                        # an out-of-tree file: the absolute path.
                        {
                            "path": str(bad),
                            "rule": "API001",
                            "text": "def f(xs=[]):",
                            "count": 1,
                        },
                        # The file is gone.
                        {
                            "path": "deleted.py",
                            "rule": "API001",
                            "text": "def g(ys=[]):",
                            "count": 1,
                        },
                        # The rule id was retired.
                        {
                            "path": str(bad),
                            "rule": "OLD999",
                            "text": "x = 1",
                            "count": 2,
                        },
                        # Registered rule, file exists, finding fixed.
                        {
                            "path": str(bad),
                            "rule": "DET001",
                            "text": "np.random.seed(0)",
                            "count": 1,
                        },
                    ],
                }
            )
        )
        assert (
            main(["--baseline", str(baseline), "--update-baseline", str(bad)])
            == 0
        )
        out = capsys.readouterr().out
        assert "deleted.py: API001 (file no longer exists)" in out
        assert "OLD999 (rule id no longer registered)" in out
        assert "DET001 (finding no longer fires)" in out
        assert "pruned 4 grandfathered entries" in out
        # The rewritten baseline still covers the live finding only.
        payload = json.loads(baseline.read_text())
        assert [e["rule"] for e in payload["entries"]] == ["API001"]

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for row in rules_table():
            assert row["id"] in out

    def test_text_output_renders_position(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(MUTABLE_DEFAULT)
        assert main(["--no-baseline", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad.as_posix()}:1:" in out or "bad.py:1:" in out


# --------------------------------------------------------------------- #
# Registry sanity
# --------------------------------------------------------------------- #


def test_rule_ids_are_unique_and_documented():
    rows = rules_table()
    ids = [row["id"] for row in rows]
    assert len(ids) == len(set(ids))
    for row in rows:
        assert row["name"] and row["summary"] and row["scope"]


def test_dedent_helper_snippets_parse():
    # Guard against fixture drift: the snippet constant must stay a
    # valid single-finding module.
    findings = analyze_source(textwrap.dedent(MUTABLE_DEFAULT), "tests/x.py")
    assert [f.rule for f in findings] == ["API001"]
