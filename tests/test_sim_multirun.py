"""Tests for repetition studies and paired controller comparison."""

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController
from repro.mec import DriftingDelay, MECNetwork
from repro.mec.requests import Request
from repro.sim import compare_controllers, run_repetitions
from repro.sim.multirun import MetricSummary, _summarise
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


def scenario(rngs: RngRegistry):
    network = MECNetwork.synthetic(15, 2, rngs)
    network.delays = DriftingDelay(
        network.stations, rngs.get("drift"), drift_ms=1.0
    )
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(10)
    ]
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    controllers = [
        OlGdController(network, requests, rngs.get("ol")),
        GreedyController(network, requests, rngs.get("gr")),
    ]
    return network, ConstantDemandModel(requests), controllers


class TestSummarise:
    def test_single_value(self):
        s = _summarise("m", [5.0], 0.95)
        assert s.mean == 5.0 and s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_ci_contains_mean(self):
        s = _summarise("m", [1.0, 2.0, 3.0, 4.0], 0.95)
        assert s.ci_low < s.mean < s.ci_high
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_higher_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = _summarise("m", values, 0.80)
        wide = _summarise("m", values, 0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    @pytest.mark.parametrize("confidence", [0.0, 1.0])
    def test_rejects_closed_endpoints(self, confidence):
        """Regression: confidence=1.0 passed require_probability and then
        t.ppf(1.0) = inf produced infinite CIs."""
        with pytest.raises(ValueError, match="strictly between"):
            _summarise("m", [1.0, 2.0, 3.0], confidence)


class TestRunRepetitions:
    def test_study_structure(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=10)
        assert study.repetitions == 2
        assert set(study.summaries) == {"OL_GD", "Greedy_GD"}
        summary = study.summary("OL_GD", "mean_delay_ms")
        assert summary.n == 2
        assert all(np.isfinite(v) for v in summary.values)

    def test_unknown_keys_raise(self):
        study = run_repetitions(scenario, seed=41, repetitions=1, horizon=6)
        with pytest.raises(KeyError, match="controller"):
            study.summary("Nope", "mean_delay_ms")
        with pytest.raises(KeyError, match="metric"):
            study.summary("OL_GD", "nope")

    def test_table_renders(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=8)
        text = study.table()
        assert "OL_GD" in text and "Greedy_GD" in text
        assert "95% CI" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_repetitions(scenario, seed=1, repetitions=0, horizon=5)
        with pytest.raises(ValueError):
            run_repetitions(scenario, seed=1, repetitions=1, horizon=5, skip_warmup=9)
        with pytest.raises(ValueError, match="strictly between"):
            run_repetitions(scenario, seed=1, repetitions=1, horizon=5, confidence=1.0)

    def test_execution_accounting_present(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=6)
        assert study.n_jobs == 1
        assert study.completed_runs == 4  # 2 reps x 2 controllers
        assert study.failures == []
        assert study.wall_clock_seconds > 0

    def test_reproducible(self):
        a = run_repetitions(scenario, seed=43, repetitions=1, horizon=8)
        b = run_repetitions(scenario, seed=43, repetitions=1, horizon=8)
        assert (
            a.summary("OL_GD", "mean_delay_ms").values
            == b.summary("OL_GD", "mean_delay_ms").values
        )


class TestCompareControllers:
    def test_paired_comparison_fields(self):
        study = run_repetitions(scenario, seed=47, repetitions=3, horizon=12)
        comparison = compare_controllers(study, "OL_GD", "Greedy_GD")
        assert comparison.wins_a + comparison.wins_b + comparison.ties == 3
        assert 0.0 <= comparison.sign_test_p <= 1.0
        # mean difference consistent with the summaries.
        a = np.mean(study.summary("OL_GD", "mean_delay_ms").values)
        b = np.mean(study.summary("Greedy_GD", "mean_delay_ms").values)
        assert comparison.mean_difference == pytest.approx(b - a)

    def test_identical_controller_ties(self):
        study = run_repetitions(scenario, seed=47, repetitions=2, horizon=8)
        comparison = compare_controllers(study, "OL_GD", "OL_GD")
        assert comparison.ties == 2
        assert comparison.sign_test_p == 1.0
        assert not comparison.a_wins_majority
