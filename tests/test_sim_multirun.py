"""Tests for repetition studies and paired controller comparison."""

import numpy as np
import pytest

from repro import obs
from repro.core import GreedyController, OlGdController
from repro.mec import DriftingDelay, MECNetwork
from repro.mec.requests import Request
from repro.sim import FailureSchedule, compare_controllers, run_repetitions
from repro.sim.multirun import MetricSummary, _summarise
from repro.sim.parallel import repetition_registry
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel


def scenario(rngs: RngRegistry):
    network = MECNetwork.synthetic(15, 2, rngs)
    network.delays = DriftingDelay(
        network.stations, rngs.get("drift"), drift_ms=1.0
    )
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(10)
    ]
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    controllers = [
        OlGdController(network, requests, rngs.get("ol")),
        GreedyController(network, requests, rngs.get("gr")),
    ]
    return network, ConstantDemandModel(requests), controllers


class TestSummarise:
    def test_single_value(self):
        s = _summarise("m", [5.0], 0.95)
        assert s.mean == 5.0 and s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_ci_contains_mean(self):
        s = _summarise("m", [1.0, 2.0, 3.0, 4.0], 0.95)
        assert s.ci_low < s.mean < s.ci_high
        assert s.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_higher_confidence_wider_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = _summarise("m", values, 0.80)
        wide = _summarise("m", values, 0.99)
        assert (wide.ci_high - wide.ci_low) > (narrow.ci_high - narrow.ci_low)

    @pytest.mark.parametrize("confidence", [0.0, 1.0])
    def test_rejects_closed_endpoints(self, confidence):
        """Regression: confidence=1.0 passed require_probability and then
        t.ppf(1.0) = inf produced infinite CIs."""
        with pytest.raises(ValueError, match="strictly between"):
            _summarise("m", [1.0, 2.0, 3.0], confidence)


class TestRunRepetitions:
    def test_study_structure(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=10)
        assert study.repetitions == 2
        assert set(study.summaries) == {"OL_GD", "Greedy_GD"}
        summary = study.summary("OL_GD", "mean_delay_ms")
        assert summary.n == 2
        assert all(np.isfinite(v) for v in summary.values)

    def test_unknown_keys_raise(self):
        study = run_repetitions(scenario, seed=41, repetitions=1, horizon=6)
        with pytest.raises(KeyError, match="controller"):
            study.summary("Nope", "mean_delay_ms")
        with pytest.raises(KeyError, match="metric"):
            study.summary("OL_GD", "nope")

    def test_table_renders(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=8)
        text = study.table()
        assert "OL_GD" in text and "Greedy_GD" in text
        assert "95% CI" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_repetitions(scenario, seed=1, repetitions=0, horizon=5)
        with pytest.raises(ValueError):
            run_repetitions(scenario, seed=1, repetitions=1, horizon=5, skip_warmup=9)
        with pytest.raises(ValueError, match="strictly between"):
            run_repetitions(scenario, seed=1, repetitions=1, horizon=5, confidence=1.0)

    def test_execution_accounting_present(self):
        study = run_repetitions(scenario, seed=41, repetitions=2, horizon=6)
        assert study.n_jobs == 1
        assert study.completed_runs == 4  # 2 reps x 2 controllers
        assert study.failures == []
        assert study.wall_clock_seconds > 0

    def test_reproducible(self):
        a = run_repetitions(scenario, seed=43, repetitions=1, horizon=8)
        b = run_repetitions(scenario, seed=43, repetitions=1, horizon=8)
        assert (
            a.summary("OL_GD", "mean_delay_ms").values
            == b.summary("OL_GD", "mean_delay_ms").values
        )


class TestCompareControllers:
    def test_paired_comparison_fields(self):
        study = run_repetitions(scenario, seed=47, repetitions=3, horizon=12)
        comparison = compare_controllers(study, "OL_GD", "Greedy_GD")
        assert comparison.wins_a + comparison.wins_b + comparison.ties == 3
        assert 0.0 <= comparison.sign_test_p <= 1.0
        # mean difference consistent with the summaries.
        a = np.mean(study.summary("OL_GD", "mean_delay_ms").values)
        b = np.mean(study.summary("Greedy_GD", "mean_delay_ms").values)
        assert comparison.mean_difference == pytest.approx(b - a)

    def test_identical_controller_ties(self):
        study = run_repetitions(scenario, seed=47, repetitions=2, horizon=8)
        comparison = compare_controllers(study, "OL_GD", "OL_GD")
        assert comparison.ties == 2
        assert comparison.sign_test_p == 1.0
        assert not comparison.a_wins_majority


# --------------------------------------------------------------------- #
# Regression scenarios: per-controller crashes on *different* repetitions
# --------------------------------------------------------------------- #

PAIRING_SEED = 53
CRASH_REP_OLGD = 1   # OL_GD (controller 0) crashes on this repetition
CRASH_REP_GREEDY = 2  # Greedy_GD (controller 1) crashes on this one


class _CrashingOlGd(OlGdController):
    def decide(self, slot, demands):
        raise RuntimeError("injected OL_GD crash")


class _CrashingGreedy(GreedyController):
    def decide(self, slot, demands):
        raise RuntimeError("injected Greedy crash")


def disjoint_crash_scenario(rngs: RngRegistry):
    """OL_GD fails on repetition 1, Greedy_GD on repetition 2.

    Both controllers end up with the same *number* of completed
    repetitions, so the old positional pairing zipped them up without
    complaint — silently comparing different worlds.
    """
    network, model, controllers = scenario(rngs)
    ol_cls, greedy_cls = OlGdController, GreedyController
    if rngs.seed == repetition_registry(PAIRING_SEED, CRASH_REP_OLGD).seed:
        ol_cls = _CrashingOlGd
    if rngs.seed == repetition_registry(PAIRING_SEED, CRASH_REP_GREEDY).seed:
        greedy_cls = _CrashingGreedy
    requests = model.requests
    return network, model, [
        ol_cls(network, requests, rngs.get("ol2")),
        greedy_cls(network, requests, rngs.get("gr2")),
    ]


class TestRepetitionKeyedPairing:
    """compare_controllers must pair by repetition index, not position."""

    def test_disjoint_failures_pair_on_intersection(self):
        study = run_repetitions(
            disjoint_crash_scenario, seed=PAIRING_SEED, repetitions=4, horizon=6
        )
        # Both sides lost exactly one (different) repetition.
        a = study.summary("OL_GD", "mean_delay_ms")
        b = study.summary("Greedy_GD", "mean_delay_ms")
        assert len(a.values) == len(b.values) == 3  # old code zipped these
        assert a.repetitions == (0, 2, 3)
        assert b.repetitions == (0, 1, 3)

        comparison = compare_controllers(study, "OL_GD", "Greedy_GD")
        assert comparison.paired_repetitions == (0, 3)
        assert comparison.dropped_repetitions == (
            CRASH_REP_OLGD,
            CRASH_REP_GREEDY,
        )
        assert comparison.n_pairs == 2
        assert comparison.wins_a + comparison.wins_b + comparison.ties == 2
        # The paired mean difference uses only the common repetitions.
        a_by_rep = a.by_repetition()
        b_by_rep = b.by_repetition()
        expected = np.mean([b_by_rep[r] - a_by_rep[r] for r in (0, 3)])
        assert comparison.mean_difference == pytest.approx(expected)

    def test_no_common_repetitions_raises(self):
        study = run_repetitions(
            disjoint_crash_scenario, seed=PAIRING_SEED, repetitions=4, horizon=6
        )
        # Synthetically restrict both controllers to disjoint repetitions.
        study.summaries["OL_GD"]["mean_delay_ms"] = _summarise(
            "mean_delay_ms", [1.0], 0.95, repetitions=[0]
        )
        study.summaries["Greedy_GD"]["mean_delay_ms"] = _summarise(
            "mean_delay_ms", [2.0], 0.95, repetitions=[1]
        )
        with pytest.raises(ValueError, match="no completed repetitions"):
            compare_controllers(study, "OL_GD", "Greedy_GD")

    def test_metric_summary_repetition_defaults(self):
        summary = _summarise("m", [1.0, 2.0, 3.0], 0.95)
        assert summary.repetitions == (0, 1, 2)
        with pytest.raises(ValueError, match="repetition keys"):
            MetricSummary(
                name="m", values=(1.0, 2.0), mean=1.5, std=0.5,
                ci_low=1.0, ci_high=2.0, repetitions=(0,),
            )


class TestCollectMetricsTriState:
    """An explicit collect_metrics=False stays off under an active registry."""

    def test_false_stays_off_under_active_registry(self):
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            study = run_repetitions(
                scenario, seed=41, repetitions=1, horizon=4,
                collect_metrics=False,
            )
        assert study.metrics is None
        assert study.worker_metrics == {}
        with pytest.raises(ValueError, match="telemetry"):
            study.metrics_table()

    def test_default_auto_enables_under_active_registry(self):
        registry = obs.MetricsRegistry()
        with obs.activate(registry):
            study = run_repetitions(scenario, seed=41, repetitions=1, horizon=4)
        assert study.metrics is not None
        assert study.worker_metrics != {}

    def test_default_stays_off_without_registry(self):
        study = run_repetitions(scenario, seed=41, repetitions=1, horizon=4)
        assert study.metrics is None


class TestSkipWarmupDefaultClamp:
    """The default warm-up skip must leave >=1 measured slot at any horizon."""

    def test_horizon_one_runs(self):
        study = run_repetitions(scenario, seed=41, repetitions=1, horizon=1)
        summary = study.summary("OL_GD", "mean_delay_ms")
        assert summary.n == 1 and np.isfinite(summary.values[0])

    def test_horizon_two_skips_one(self):
        # min(horizon - 1, max(horizon // 4, 1)) == 1: slot 0 is warm-up.
        study = run_repetitions(scenario, seed=41, repetitions=1, horizon=2)
        raw = study.raw["OL_GD"][0]
        assert study.summary("OL_GD", "mean_delay_ms").values[0] == (
            pytest.approx(raw.mean_delay_ms(skip_warmup=1))
        )

    def test_longer_horizons_unchanged(self):
        # For horizon >= 2 the clamp never binds: same default as before.
        for horizon in (2, 4, 8, 12):
            assert min(horizon - 1, max(horizon // 4, 1)) == (
                max(horizon // 4, 1)
            )


class TestFailuresThreading:
    """A FailureSchedule passed to run_repetitions reaches every run."""

    def test_outage_changes_metrics(self):
        base = run_repetitions(scenario, seed=41, repetitions=2, horizon=6)
        outage = FailureSchedule().add_outage(0, start=1, duration=4)
        hit = run_repetitions(
            scenario, seed=41, repetitions=2, horizon=6, failures=outage
        )
        assert set(base.summaries) == set(hit.summaries)
        assert (
            base.summary("OL_GD", "mean_delay_ms").values
            != hit.summary("OL_GD", "mean_delay_ms").values
        )

    def test_outage_deterministic_across_jobs(self):
        outage = FailureSchedule().add_outage(0, start=1, duration=4)
        serial = run_repetitions(
            scenario, seed=41, repetitions=2, horizon=6, failures=outage
        )
        pooled = run_repetitions(
            scenario, seed=41, repetitions=2, horizon=6, failures=outage,
            n_jobs=2,
        )
        for name in serial.summaries:
            assert (
                serial.summary(name, "mean_delay_ms").values
                == pooled.summary(name, "mean_delay_ms").values
            )
