"""Tier-1 smoke test of the NN speed benchmark (schema and stages).

Runs ``benchmarks/bench_nn_speed.py`` in its ``--quick`` configuration so
the benchmark cannot rot: every stage must execute and emit the trajectory
schema that ``BENCH_pr*.json`` files at the repo root follow.  Speedup
*magnitudes* are not asserted here — at smoke sizes they are noise; the
committed ``BENCH_pr3.json`` records the real measurement.
"""

import json
from pathlib import Path

import pytest

from benchmarks.bench_nn_speed import PR, QUICK_CONFIG, SCHEMA, main, run_benchmark

EXPECTED_STAGES = {
    "lstm_train_step",
    "gru_train_step",
    "lstm_forward_no_grad",
    "gan_generate_inference",
    "gan_slot_train_predict",
}


@pytest.fixture(scope="module")
def result():
    return run_benchmark(QUICK_CONFIG)


class TestBenchmarkSchema:
    def test_envelope(self, result):
        assert result["schema"] == SCHEMA
        assert result["pr"] == PR
        assert isinstance(result["commit"], str) and result["commit"]
        assert result["config"] == QUICK_CONFIG

    def test_stages_complete(self, result):
        assert {s["stage"] for s in result["stages"]} == EXPECTED_STAGES

    def test_stage_fields(self, result):
        for stage in result["stages"]:
            assert stage["baseline_median_seconds"] > 0
            assert stage["fast_median_seconds"] > 0
            assert stage["speedup"] == pytest.approx(
                stage["baseline_median_seconds"] / stage["fast_median_seconds"]
            )

    def test_json_round_trip(self, result, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(result))
        assert json.loads(path.read_text()) == result


class TestCommittedTrajectory:
    def test_bench_pr3_recorded(self):
        """The first trajectory point ships with the repo and meets target."""
        path = Path(__file__).resolve().parents[1] / "BENCH_pr3.json"
        recorded = json.loads(path.read_text())
        assert recorded["schema"] == SCHEMA
        assert recorded["pr"] == PR
        slot = {s["stage"]: s for s in recorded["stages"]}["gan_slot_train_predict"]
        assert slot["speedup"] >= 3.0


class TestCli:
    def test_quick_writes_output(self, tmp_path):
        out = tmp_path / "BENCH_smoke.json"
        main(["--quick", "--output", str(out)])
        written = json.loads(out.read_text())
        assert written["schema"] == SCHEMA
        assert {s["stage"] for s in written["stages"]} == EXPECTED_STAGES
