"""Tests for ArmStats (the theta_i / m_i bookkeeping of Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.bandits.arms import ArmStats


class TestArmStats:
    def test_initial_state(self):
        stats = ArmStats(4)
        assert stats.n_arms == 4
        np.testing.assert_array_equal(stats.counts, np.zeros(4, dtype=int))
        assert stats.total_plays == 0

    def test_observe_updates_mean_and_count(self):
        stats = ArmStats(3)
        stats.observe(1, 10.0)
        stats.observe(1, 20.0)
        assert stats.mean(1) == 15.0
        assert stats.counts[1] == 2
        assert stats.total_plays == 2

    def test_unplayed_arm_reports_prior(self):
        stats = ArmStats(2, prior_mean=5.0)
        assert stats.mean(0) == 5.0
        np.testing.assert_array_equal(stats.means, [5.0, 5.0])

    def test_means_vector_mixes_played_and_prior(self):
        stats = ArmStats(3, prior_mean=1.0)
        stats.observe(2, 8.0)
        np.testing.assert_array_equal(stats.means, [1.0, 1.0, 8.0])

    def test_observe_many(self):
        stats = ArmStats(3)
        stats.observe_many([0, 0, 2], [1.0, 3.0, 4.0])
        assert stats.mean(0) == 2.0
        assert stats.mean(2) == 4.0

    def test_observe_many_length_mismatch(self):
        stats = ArmStats(3)
        with pytest.raises(ValueError):
            stats.observe_many([0, 1], [1.0])

    def test_out_of_range_arm(self):
        stats = ArmStats(2)
        with pytest.raises(IndexError):
            stats.observe(2, 1.0)
        with pytest.raises(IndexError):
            stats.mean(-1)
        with pytest.raises(IndexError):
            stats.variance(5)

    def test_negative_observation_rejected(self):
        stats = ArmStats(2)
        with pytest.raises(ValueError):
            stats.observe(0, -1.0)

    def test_variance(self):
        stats = ArmStats(1)
        for v in [2.0, 4.0, 6.0]:
            stats.observe(0, v)
        # population variance of {2,4,6} = 8/3
        assert stats.variance(0) == pytest.approx(8.0 / 3.0)

    def test_variance_needs_two_plays(self):
        stats = ArmStats(1)
        stats.observe(0, 5.0)
        assert stats.variance(0) == 0.0

    def test_unplayed_arms(self):
        stats = ArmStats(4)
        stats.observe(1, 1.0)
        stats.observe(3, 1.0)
        np.testing.assert_array_equal(stats.unplayed_arms(), [0, 2])

    def test_confidence_radius_shrinks_with_plays(self):
        stats = ArmStats(2)
        stats.observe(0, 1.0)
        stats.observe(1, 1.0)
        wide = stats.confidence_radius(0)
        for _ in range(50):
            stats.observe(0, 1.0)
        assert stats.confidence_radius(0) < wide

    def test_confidence_radius_unplayed_is_inf(self):
        stats = ArmStats(2)
        assert stats.confidence_radius(0) == float("inf")

    def test_snapshot(self):
        stats = ArmStats(2)
        stats.observe(0, 4.0)
        means, counts = stats.snapshot()
        np.testing.assert_array_equal(means, [4.0, 0.0])
        np.testing.assert_array_equal(counts, [1, 0])

    def test_reset(self):
        stats = ArmStats(2)
        stats.observe(0, 4.0)
        stats.reset()
        assert stats.total_plays == 0
        assert stats.mean(0) == 0.0

    def test_counts_returns_copy(self):
        stats = ArmStats(2)
        counts = stats.counts
        counts[0] = 99
        assert stats.counts[0] == 0

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_mean_matches_numpy(self, values):
        stats = ArmStats(1)
        for v in values:
            stats.observe(0, v)
        assert stats.mean(0) == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=50))
    def test_variance_matches_numpy(self, values):
        stats = ArmStats(1)
        for v in values:
            stats.observe(0, v)
        assert stats.variance(0) == pytest.approx(np.var(values), rel=1e-6, abs=1e-6)
