"""Ablation — exploration schedules: decaying c/t vs constant 1/4 vs
paper-literal (one coin per slot).

DESIGN.md exp id ``abl-eps``.  Algorithm 1 line 2 prints ``eps_t = 1/4``
while the Theorem 1 analysis assumes the decaying ``c/t`` schedule; this
ablation quantifies the difference (and the cost of the paper-literal
all-requests-explore-together variant).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import ExplorationConfig, OlGdController
from repro.experiments.figures import _build_setting
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry

SCHEDULES = {
    "decaying-c/t (default)": ExplorationConfig(schedule="decaying", c=0.5),
    "constant-1/4 per-request": ExplorationConfig(schedule="constant", c=0.25),
    "paper-literal (slot coin)": ExplorationConfig.paper_literal(),
}


def sweep_epsilon(profile):
    results = {}
    for label, exploration in SCHEDULES.items():
        delays = []
        for rep in range(profile.repetitions):
            rngs = RngRegistry(seed=profile.seed).child(f"eps-rep{rep}")
            network, requests, demand_model = _build_setting(
                profile, rngs, profile.base_stations
            )
            controller = OlGdController(
                network, requests, rngs.get("ol-gd"), exploration=exploration
            )
            result = run_simulation(
                network, demand_model, controller, horizon=profile.horizon
            )
            delays.append(result.mean_delay_ms(skip_warmup=profile.horizon // 4))
        results[label] = float(np.mean(delays))
    return results


def test_ablation_epsilon(benchmark, profile):
    results = run_once(benchmark, sweep_epsilon, profile)
    print()
    print("exploration schedule -> steady-state delay (ms)")
    for label, delay in results.items():
        print(f"  {label:<28} {delay:8.2f}")
    # The decaying schedule (what the regret analysis assumes) should not
    # lose to the constant-1/4 of Algorithm 1's line 2.
    assert (
        results["decaying-c/t (default)"]
        <= results["constant-1/4 per-request"] * 1.10
    ), f"decaying schedule unexpectedly poor: {results}"
