"""Micro-benchmarks of the substrates: LP solve, GAN step, topology, demand.

These use pytest-benchmark's normal calibration (multiple rounds) since
each operation is fast; they track the per-slot cost drivers of the
end-to-end figures.
"""

import numpy as np
import pytest

from repro.core.formulation import build_caching_model
from repro.gan import InfoRnnGan
from repro.lp.solver import solve_lp
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.mec.topology import as1755_topology, gtitm_topology
from repro.nn.layers import BiLSTM
from repro.nn.tensor import Tensor
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel


def _setting(n_stations=50, n_requests=40, seed=3):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(n_stations, 4, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(4)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
            hotspot_index=i % 5,
        )
        for i in range(n_requests)
    ]
    demands = np.array([r.basic_demand_mb for r in requests])
    return network, requests, demands


class TestLpMicro:
    def test_lp_build(self, benchmark):
        network, requests, demands = _setting()
        theta = network.delays.true_means

        benchmark(build_caching_model, network, requests, demands, theta)

    def test_lp_solve(self, benchmark):
        network, requests, demands = _setting()
        model, _ = build_caching_model(
            network, requests, demands, network.delays.true_means
        )
        result = benchmark(solve_lp, model)
        assert result.is_optimal

    def test_fastlp_resolve(self, benchmark):
        """The structure-cached solver's per-slot cost (OL_GD's hot path)."""
        from repro.core.fastlp import PerSlotLpSolver

        network, requests, demands = _setting()
        solver = PerSlotLpSolver(network, requests)
        theta = network.delays.true_means
        x = benchmark(solver.solve, demands, theta)
        assert x.shape == (len(requests), network.n_stations)


class TestNnMicro:
    def test_bilstm_forward(self, benchmark):
        rng = np.random.default_rng(0)
        bilstm = BiLSTM(8, 16, rng, num_layers=2)
        sequence = Tensor(rng.normal(size=(8, 16, 8)))
        benchmark(bilstm, sequence)

    def test_gan_train_step(self, benchmark):
        rng = np.random.default_rng(1)
        gan = InfoRnnGan(code_dim=6, rng=rng, hidden_size=12)
        real = np.abs(rng.normal(2.0, 1.0, size=(8, 16, 1)))
        cond = np.abs(rng.normal(2.0, 1.0, size=(8, 16, 1)))
        codes = np.eye(6)[rng.integers(0, 6, size=16)]
        benchmark(gan.train_step, real, cond, codes)


class TestSubstrateMicro:
    def test_gtitm_topology_200(self, benchmark):
        benchmark(gtitm_topology, 200, np.random.default_rng(0))

    def test_as1755_topology(self, benchmark):
        graph = benchmark(as1755_topology)
        assert graph.number_of_edges() == 161

    def test_bursty_demand_horizon(self, benchmark):
        _, requests, _ = _setting()
        model = BurstyDemandModel(requests, np.random.default_rng(2))

        def generate():
            # Fresh model each round so the slot cache doesn't trivialise it.
            fresh = BurstyDemandModel(requests, np.random.default_rng(2))
            return fresh.matrix(100)

        matrix = benchmark(generate)
        assert matrix.shape == (100, 40)
