"""Fig. 5 — the given-demand algorithms on the real topology AS1755.

Reproduction targets: OL_GD constantly below the baselines, and the gap is
*wider* than on the synthetic topology of Fig. 3 (the real topology's
bottleneck links punish the non-learning policies harder).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure5
from repro.experiments.claims import assert_hard_claims, check_figure, render_scorecard
from repro.experiments.tables import render_figure


def test_fig5(benchmark, profile):
    figure = run_once(benchmark, figure5, profile)
    print()
    print(render_figure(figure))

    results = check_figure(figure, profile)
    print("claim scorecard:")
    print(render_scorecard(results))
    warmup = max(profile.horizon // 4, 1)
    steady = {
        name: float(np.mean(series[warmup:]))
        for name, series in figure.panels["delay_ms"].items()
    }
    gap_pri = 100.0 * (steady["Pri_GD"] - steady["OL_GD"]) / steady["Pri_GD"]
    print(f"OL_GD below Pri_GD by {gap_pri:.1f}% (fig3's gap should be smaller)")
    assert_hard_claims(results)
