"""Benchmark trajectory for the vectorised simulation slot loop.

Times the per-slot hot path — bursty demand realisation, assignment
construction and Eq. (3) evaluation — comparing the **fast path**
(vectorised :meth:`BurstyDemandModel.bursty_at`, ``np.unique`` cache-set
derivation, a persistent :class:`repro.core.assignment.SlotEvaluator`)
against a **legacy emulation** of the pre-PR-6 scalar loop (per-request
demand realisation via ``bursty_at_scalar``, python set loops for the
cache set, per-slot throwaway evaluation with ``np.add.at`` loads).

The legacy emulation still benefits from shared improvements (memoised
MMPP amplitudes instead of O(episode-length) backward walks), so the
reported speedups are conservative lower bounds on the gain over the
original implementation.  The ``slot_loop_100k`` stage additionally
drives the real :func:`repro.sim.run_simulation` engine at 10^5
requests, demonstrating that runs at that scale complete.

Running as a script writes ``BENCH_pr6.json`` at the repo root — the
next point of the recorded benchmark trajectory (see ``BENCH_pr3.json``
onwards; "Performance" in README.md).

Run with::

    PYTHONPATH=src python benchmarks/bench_slot_loop.py          # full
    PYTHONPATH=src python benchmarks/bench_slot_loop.py --quick  # smoke

The tier-1 smoke test (``tests/test_bench_slot_loop.py``) runs the
``--quick`` configuration and validates the schema, so the benchmark
itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.assignment import Assignment, SlotEvaluator
from repro.core.controller import Controller
from repro.core.fastlp import PerSlotLpSolver
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.sim.engine import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload.bursty import FlashCrowdSchedule
from repro.workload.demand import BurstyDemandModel

SCHEMA = "repro.bench.trajectory/v1"
PR = 6

# Paper-adjacent topology, scaled-up request sets: the acceptance stages
# are the 10^4-request slot loop (>= 10x) and a completing 10^5 run.
FULL_CONFIG: Dict = {
    "n_stations": 24,
    "n_services": 6,
    "n_hotspots": 12,
    "demand_requests": 10_000,
    "demand_slots": 20,
    "loop_requests": 10_000,
    "loop_slots": 12,
    "large_requests": 100_000,
    "large_slots": 3,
    "lp_requests": 120,
    "lp_stations": 40,
    # The LP stage runs a small service catalog (the paper's regime, and
    # the one where the optimal support is demand-stable enough for warm
    # starts to pay off; with many near-tied services the support jumps
    # between slots and warm solves degrade toward cold + overhead).
    "lp_services": 3,
    "lp_slots": 40,
    "repeats": 5,
    "seed": 2020,
}

# Tiny everything: the smoke variant exercises every stage in seconds.
QUICK_CONFIG: Dict = {
    "n_stations": 6,
    "n_services": 3,
    "n_hotspots": 4,
    "demand_requests": 60,
    "demand_slots": 6,
    "loop_requests": 60,
    "loop_slots": 4,
    "large_requests": 200,
    "large_slots": 2,
    "lp_requests": 12,
    "lp_stations": 6,
    "lp_services": 3,
    "lp_slots": 6,
    "repeats": 2,
    "seed": 2020,
}


def _median_seconds(fn: Callable[[], None], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(statistics.median(times))


def _stage(name: str, baseline_seconds: float, fast_seconds: float) -> Dict:
    return {
        "stage": name,
        "baseline_median_seconds": baseline_seconds,
        "fast_median_seconds": fast_seconds,
        "speedup": baseline_seconds / fast_seconds,
    }


# --------------------------------------------------------------------- #
# World construction
# --------------------------------------------------------------------- #


def _make_requests(n: int, n_hotspots: int, n_services: int, seed: int) -> List[Request]:
    rng = np.random.default_rng(seed)
    requests = []
    for i in range(n):
        solo = i % 20 == 19  # a sprinkle of independent (solo) users
        requests.append(
            Request(
                index=i,
                service_index=int(rng.integers(n_services)),
                basic_demand_mb=float(rng.uniform(0.5, 2.0)),
                hotspot_index=None if solo else i % n_hotspots,
            )
        )
    return requests


def _make_model(requests: Sequence[Request], n_hotspots: int, seed: int) -> BurstyDemandModel:
    schedule = (
        FlashCrowdSchedule()
        .add_event(0, start=2, duration=3, amplitude_mb=6.0)
        .add_event(min(1, n_hotspots - 1), start=4, duration=2, amplitude_mb=4.0)
    )
    return BurstyDemandModel(
        requests, np.random.default_rng(seed), flash_crowds=schedule
    )


def _make_network(config: Dict, n_stations: Optional[int] = None) -> MECNetwork:
    rngs = RngRegistry(seed=config["seed"])
    return MECNetwork.synthetic(
        n_stations if n_stations is not None else config["n_stations"],
        config["n_services"],
        rngs,
    )


# --------------------------------------------------------------------- #
# Legacy emulation: the pre-PR-6 scalar slot loop
# --------------------------------------------------------------------- #


def _legacy_from_stations(
    station_of: np.ndarray, requests: Sequence[Request]
) -> Assignment:
    """Cache-set derivation as the pre-PR code built it: a python loop."""
    cached = set()
    for request, station in zip(requests, station_of):
        cached.add((request.service_index, int(station)))
    return Assignment(station_of=station_of, cached=frozenset(cached))


def _legacy_evaluate(
    assignment: Assignment,
    network: MECNetwork,
    requests: Sequence[Request],
    demands_mb: np.ndarray,
    unit_delays_ms: np.ndarray,
) -> float:
    """Eq. (3) as the pre-PR code computed it each slot, from scratch."""
    n = len(requests)
    loads = np.zeros(network.n_stations)
    np.add.at(loads, assignment.station_of, demands_mb * network.c_unit_mhz)
    overload = np.maximum(loads / network.capacities_mhz, 1.0)
    stations = assignment.station_of
    processing = demands_mb * unit_delays_ms[stations] * overload[stations]
    instantiation = sum(
        network.services.instantiation_delay(station, service)
        for service, station in assignment.cached
    )
    return float((processing.sum() + instantiation) / n)


# --------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------- #


def _demand_stage(config: Dict) -> Dict:
    """Bursty demand realisation: per-request scalar loop vs vectorised."""
    requests = _make_requests(
        config["demand_requests"], config["n_hotspots"],
        config["n_services"], config["seed"],
    )
    scalar_model = _make_model(requests, config["n_hotspots"], config["seed"] + 1)
    fast_model = _make_model(requests, config["n_hotspots"], config["seed"] + 1)
    slots = range(config["demand_slots"])

    def scalar() -> None:
        for t in slots:
            scalar_model.bursty_at_scalar(t)

    def fast() -> None:
        for t in slots:
            fast_model.bursty_at(t)

    return _stage(
        "bursty_demand_10k",
        _median_seconds(scalar, config["repeats"]),
        _median_seconds(fast, config["repeats"]),
    )


def _slot_loop_stage(config: Dict, name: str, n_requests: int, n_slots: int) -> Dict:
    """One simulated slot end-to-end: demand + assignment + evaluation."""
    requests = _make_requests(
        n_requests, config["n_hotspots"], config["n_services"], config["seed"]
    )
    network = _make_network(config)
    model = _make_model(requests, config["n_hotspots"], config["seed"] + 2)
    stations = np.arange(n_requests) % network.n_stations
    delays = [network.delays.sample(t) for t in range(n_slots)]
    evaluator = SlotEvaluator(network, requests)
    service_of = evaluator.service_of

    def legacy() -> None:
        for t in range(n_slots):
            demands = model.basic_demands + model.bursty_at_scalar(t)
            assignment = _legacy_from_stations(stations, requests)
            _legacy_evaluate(assignment, network, requests, demands, delays[t])

    def fast() -> None:
        for t in range(n_slots):
            demands = model.demand_at(t)
            assignment = Assignment.from_stations(
                stations, requests, service_of=service_of
            )
            evaluator.evaluate(assignment, demands, delays[t])

    return _stage(
        name,
        _median_seconds(legacy, config["repeats"]),
        _median_seconds(fast, config["repeats"]),
    )


class _StaticController(Controller):
    """Fixed round-robin placement: isolates the engine's per-slot cost."""

    name = "Static_RR"

    def __init__(self, network: MECNetwork, requests: Sequence[Request]):
        super().__init__(network, requests)
        self._stations = np.arange(len(requests)) % network.n_stations

    def decide(self, slot: int, demands) -> Assignment:
        return Assignment.from_stations(
            self._stations, self.requests, service_of=self.service_of
        )

    def observe(self, slot, demands, unit_delays, assignment) -> None:
        return None


def _large_run_stage(config: Dict) -> Dict:
    """10^5-request engine run (the scale acceptance): legacy loop vs
    the real :func:`run_simulation` driving the same world."""
    n_requests = config["large_requests"]
    n_slots = config["large_slots"]
    requests = _make_requests(
        n_requests, config["n_hotspots"], config["n_services"], config["seed"]
    )
    network = _make_network(config)
    stations = np.arange(n_requests) % network.n_stations
    # Demand models are prebuilt (construction is one-time cost, not the
    # slot loop); scalar and fast paths get independent instances so
    # neither inherits the other's chain caches.
    scalar_model = _make_model(requests, config["n_hotspots"], config["seed"] + 3)
    fast_model = _make_model(requests, config["n_hotspots"], config["seed"] + 3)
    controller = _StaticController(network, requests)

    def legacy() -> None:
        for t in range(n_slots):
            demands = scalar_model.basic_demands + scalar_model.bursty_at_scalar(t)
            assignment = _legacy_from_stations(stations, requests)
            delays = network.delays.sample(t)
            _legacy_evaluate(assignment, network, requests, demands, delays)

    def fast() -> None:
        run_simulation(network, fast_model, controller, n_slots)

    return _stage(
        "slot_loop_100k",
        _median_seconds(legacy, config["repeats"]),
        _median_seconds(fast, config["repeats"]),
    )


def _lp_warm_start_stage(config: Dict) -> Dict:
    """`OL_GD`'s per-slot LP: cold solves vs support-restricted warm starts."""
    rngs = RngRegistry(seed=config["seed"])
    network = MECNetwork.synthetic(config["lp_stations"], config["lp_services"], rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(config["lp_services"])),
            basic_demand_mb=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(config["lp_requests"])
    ]
    drift = np.random.default_rng(config["seed"] + 5)
    theta = drift.uniform(1.0, 3.0, network.n_stations)
    slots = [
        (
            drift.uniform(0.5, 2.0, config["lp_requests"]),
            theta + 0.02 * drift.standard_normal(network.n_stations),
        )
        for _ in range(config["lp_slots"])
    ]

    def run(warm: bool) -> None:
        solver = PerSlotLpSolver(network, requests, warm_start=warm)
        for demands, means in slots:
            solver.solve(demands, means)

    return _stage(
        "lp_sequence_warm_start",
        _median_seconds(lambda: run(False), config["repeats"]),
        _median_seconds(lambda: run(True), config["repeats"]),
    )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def _commit_hash() -> str:
    """HEAD at generation time, with ``-dirty`` when the tree has edits."""
    cwd = Path(__file__).resolve().parent
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{head}-dirty" if status else head


def run_benchmark(config: Dict) -> Dict:
    """Run every stage under ``config``; returns the schema'd result."""
    stages = [
        _demand_stage(config),
        _slot_loop_stage(
            config, "slot_loop_10k", config["loop_requests"], config["loop_slots"]
        ),
        _large_run_stage(config),
        _lp_warm_start_stage(config),
    ]
    return {
        "schema": SCHEMA,
        "pr": PR,
        "commit": _commit_hash(),
        "config": dict(config),
        "stages": stages,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke configuration (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / f"BENCH_pr{PR}.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_benchmark(QUICK_CONFIG if args.quick else FULL_CONFIG)
    for stage in result["stages"]:
        print(
            f"{stage['stage']:<26} baseline {stage['baseline_median_seconds'] * 1e3:8.2f} ms"
            f"  fast {stage['fast_median_seconds'] * 1e3:8.2f} ms"
            f"  speedup {stage['speedup']:5.2f}x"
        )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
