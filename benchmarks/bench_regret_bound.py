"""Ablation — measured cumulative regret vs the Theorem 1 bound.

DESIGN.md exp id ``abl-regret``.  Runs OL_GD with per-slot clairvoyant LP
optima (Eq. 10's comparator), prints the cumulative regret curve, and
checks it stays under `sigma * log((T-1)/(e^(1/c)+1)) + sigma * e^(1/c)`
(the bound plus the transient term from the proof's parts (1)-(2)).
"""

import math

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OlGdController, lemma1_gap, theorem1_regret_bound
from repro.core.ol_gd import ExplorationConfig
from repro.experiments.figures import _build_setting
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry


def measure_regret(profile):
    c = 0.5
    rngs = RngRegistry(seed=profile.seed).child("regret")
    network, requests, demand_model = _build_setting(
        profile, rngs, profile.base_stations
    )
    controller = OlGdController(
        network,
        requests,
        rngs.get("ol-gd"),
        exploration=ExplorationConfig(schedule="decaying", c=c),
    )
    result = run_simulation(
        network,
        demand_model,
        controller,
        horizon=profile.horizon,
        compute_optimal=True,
    )
    tracker = result.regret_tracker()

    d_min, d_max = network.delays.bounds
    delta_ins = float(
        network.services.instantiation_matrix.max()
        - network.services.instantiation_matrix.min()
    )
    sigma = lemma1_gap(
        n_requests=len(requests),
        d_max_ms=d_max,
        d_min_ms=d_min,
        delta_ins_ms=delta_ins,
        gamma=controller.gamma,
    )
    bound = theorem1_regret_bound(sigma, profile.horizon, c) + sigma * math.exp(1.0 / c)
    return tracker, sigma, bound, c


def test_regret_bound(benchmark, profile):
    tracker, sigma, bound, c = run_once(benchmark, measure_regret, profile)
    cumulative = tracker.cumulative_regret
    print()
    print(f"Lemma 1 gap sigma = {sigma:.1f} ms; Theorem 1 bound (+transient) = {bound:.1f}")
    picks = np.linspace(0, len(cumulative) - 1, 8).round().astype(int)
    for t in picks:
        print(f"  t={t:>4}  cumulative regret = {cumulative[t]:10.2f}")
    assert cumulative[-1] <= bound, (
        f"measured regret {cumulative[-1]:.1f} exceeds the Theorem 1 bound "
        f"{bound:.1f} (sigma={sigma:.1f}, c={c})"
    )
    # Regret must actually accumulate against the LP lower bound.
    assert cumulative[-1] > 0
