"""Fig. 6 — OL_GAN vs OL_Reg with unknown bursty demands (GT-ITM).

Reproduction targets: OL_GAN's demand predictions are clearly more
accurate than OL_Reg's AR (Eq. 27) — the mechanism behind the paper's
delay gap — and its steady-state delay is at or below OL_Reg's.  OL_GAN's
decision time is higher (the paper reports ~400% — see EXPERIMENTS.md for
why our ratio is smaller: the LP solve dominates both controllers here).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure6
from repro.experiments.claims import assert_hard_claims, check_figure, render_scorecard
from repro.experiments.tables import render_figure


def test_fig6(benchmark, profile):
    figure = run_once(benchmark, figure6, profile)
    print()
    print(render_figure(figure))

    runtimes = {
        name: float(np.mean(series))
        for name, series in figure.panels["runtime_s"].items()
    }
    print(f"mean per-slot compute (s): {runtimes}")
    results = check_figure(figure, profile)
    print("claim scorecard:")
    print(render_scorecard(results))
    assert_hard_claims(results)
