"""Fig. 3 — OL_GD vs Greedy_GD vs Pri_GD over the horizon (GT-ITM).

Reproduction targets (paper §VI-B): OL_GD achieves the lowest average
delay, Greedy_GD the highest, and OL_GD sits at least ~15% below Pri_GD in
steady state; OL_GD's decision time is higher but of the same order.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure3
from repro.experiments.claims import assert_hard_claims, check_figure, render_scorecard
from repro.experiments.tables import render_figure


def test_fig3(benchmark, profile):
    figure = run_once(benchmark, figure3, profile)
    print()
    print(render_figure(figure))

    results = check_figure(figure, profile)
    print("claim scorecard:")
    print(render_scorecard(results))
    assert set(figure.panels) >= {"delay_ms", "runtime_s"}
    assert_hard_claims(results)
