"""Benchmark trajectory for the fast NN execution path.

Times the GAN predictor's per-slot train+predict path and its RNN
building blocks, comparing the **fast path** (fused sequence kernels,
``no_grad`` inference, gradient-buffer reuse) against the **legacy
path** (per-step cells via :func:`repro.nn.use_sequence_kernels(False)`
and graph-recording inference).  The legacy emulation still benefits
from every shared improvement (faster sigmoid, preallocated history),
so the reported speedups are conservative lower bounds on the gain over
the original implementation.

Running as a script writes ``BENCH_pr3.json`` at the repo root — the
first point of the recorded benchmark trajectory.  Later PRs append
``BENCH_pr<N>.json`` files with the same schema so the speed history of
the codebase stays in-tree and diffable (see "Performance" in
README.md).

Run with::

    PYTHONPATH=src python benchmarks/bench_nn_speed.py          # full
    PYTHONPATH=src python benchmarks/bench_nn_speed.py --quick  # smoke

The tier-1 smoke test (``tests/test_bench_nn_speed.py``) runs the
``--quick`` configuration and validates the schema, so the benchmark
itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import statistics
import subprocess
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.gan.predictor import GanDemandPredictor
from repro.nn import GRU, LSTM, no_grad, use_sequence_kernels
from repro.nn.tensor import Tensor

SCHEMA = "repro.bench.trajectory/v1"
PR = 3

# Paper-adjacent scale: hotspot-coded requests, window-8 conditioning.
FULL_CONFIG: Dict = {
    "n_requests": 10,
    "code_dim": 4,
    "window": 8,
    "hidden_size": 16,
    "warmup_slots": 9,
    "timed_slots": 8,
    "rnn_shape": [8, 10, 4],  # (T, B, input)
    "repeats": 9,
    "seed": 2020,
}

# Tiny everything: the smoke variant exercises every stage in seconds.
QUICK_CONFIG: Dict = {
    "n_requests": 4,
    "code_dim": 2,
    "window": 4,
    "hidden_size": 6,
    "warmup_slots": 5,
    "timed_slots": 3,
    "rnn_shape": [4, 3, 3],
    "repeats": 3,
    "seed": 2020,
}


def _median_seconds(fn: Callable[[], None], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(statistics.median(times))


def _stage(name: str, baseline_seconds: float, fast_seconds: float) -> Dict:
    return {
        "stage": name,
        "baseline_median_seconds": baseline_seconds,
        "fast_median_seconds": fast_seconds,
        "speedup": baseline_seconds / fast_seconds,
    }


# --------------------------------------------------------------------- #
# Micro stages: one RNN train step, fused vs stepwise
# --------------------------------------------------------------------- #


def _rnn_train_stage(kind: str, config: Dict) -> Dict:
    T, B, In = config["rnn_shape"]
    factory = {"lstm": LSTM, "gru": GRU}[kind]
    model = factory(In, config["hidden_size"], np.random.default_rng(config["seed"]))
    x = np.random.default_rng(config["seed"] + 1).normal(size=(T, B, In))

    def step() -> None:
        for p in model.parameters():
            p.grad = None
        (model(Tensor(x)) ** 2).sum().backward()

    def stepwise() -> None:
        with use_sequence_kernels(False):
            step()

    return _stage(
        f"{kind}_train_step",
        _median_seconds(stepwise, config["repeats"]),
        _median_seconds(step, config["repeats"]),
    )


# --------------------------------------------------------------------- #
# GAN stages
# --------------------------------------------------------------------- #


def _build_predictor(config: Dict) -> GanDemandPredictor:
    rng = np.random.default_rng(config["seed"] + 2)
    codes = np.zeros((config["n_requests"], config["code_dim"]))
    codes[
        np.arange(config["n_requests"]),
        rng.integers(0, config["code_dim"], config["n_requests"]),
    ] = 1.0
    return GanDemandPredictor(
        codes,
        np.random.default_rng(config["seed"] + 3),
        window=config["window"],
        online_steps=1,
        hidden_size=config["hidden_size"],
    )


def _demand_rows(config: Dict) -> np.ndarray:
    rng = np.random.default_rng(config["seed"] + 4)
    total = config["warmup_slots"] + config["timed_slots"]
    return rng.uniform(1.0, 3.0, size=(total, config["n_requests"]))


def _legacy_predict(predictor: GanDemandPredictor) -> np.ndarray:
    """Inference as the pre-fast-path code ran it: graph-recording draws.

    Reaches into the predictor's internals on purpose — it reconstructs
    :meth:`GanDemandPredictor.predict_next` without ``no_grad`` so the
    two paths stay numerically comparable.
    """
    model = predictor.model
    history = predictor.history
    window = min(predictor._window, history.shape[0])
    conditioning = predictor._conditioning_from(history[-window:])
    codes_tensor = Tensor(np.asarray(predictor._codes, dtype=model.dtype))
    prev_tensor = Tensor(np.asarray(conditioning, dtype=model.dtype))
    batch = history.shape[1]
    draws = [
        model.generator(
            model.generator.sample_noise(window, batch, model._rng),
            codes_tensor,
            prev_tensor,
        ).data
        for _ in range(predictor._n_noise_samples)
    ]
    return np.mean(draws, axis=0)[-1, :, 0].copy()


def _gan_inference_stage(config: Dict) -> Dict:
    predictor = _build_predictor(config)
    for row in _demand_rows(config)[: config["warmup_slots"]]:
        predictor.observe(row)

    return _stage(
        "gan_generate_inference",
        _median_seconds(lambda: _legacy_predict(predictor), config["repeats"]),
        _median_seconds(predictor.predict_next, config["repeats"]),
    )


def _gan_slot_stage(config: Dict) -> Dict:
    """The acceptance stage: one full slot = observe (train) + predict."""
    demands = _demand_rows(config)
    warmup = config["warmup_slots"]

    def run(legacy: bool) -> float:
        predictor = _build_predictor(config)
        for row in demands[:warmup]:
            if legacy:
                with use_sequence_kernels(False):
                    predictor.observe(row)
            else:
                predictor.observe(row)
        slot_times: List[float] = []
        for row in demands[warmup:]:
            start = time.perf_counter()
            if legacy:
                with use_sequence_kernels(False):
                    predictor.observe(row)
                    _legacy_predict(predictor)
            else:
                predictor.observe(row)
                predictor.predict_next()
            slot_times.append(time.perf_counter() - start)
        return float(statistics.median(slot_times))

    return _stage("gan_slot_train_predict", run(legacy=True), run(legacy=False))


def _no_grad_overhead_stage(config: Dict) -> Dict:
    """Forward-only RNN pass: recorded graph vs ``no_grad``."""
    T, B, In = config["rnn_shape"]
    model = LSTM(In, config["hidden_size"], np.random.default_rng(config["seed"] + 5))
    x = np.random.default_rng(config["seed"] + 6).normal(size=(T, B, In))

    def recorded() -> None:
        model(Tensor(x))

    def graph_free() -> None:
        with no_grad():
            model(Tensor(x))

    return _stage(
        "lstm_forward_no_grad",
        _median_seconds(recorded, config["repeats"]),
        _median_seconds(graph_free, config["repeats"]),
    )


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def _commit_hash() -> str:
    """HEAD at generation time, with ``-dirty`` when the tree has edits.

    A trajectory point generated before its changes are committed (the
    usual flow: measure, then commit code + JSON together) records the
    parent commit plus the dirty marker.
    """
    cwd = Path(__file__).resolve().parent
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{head}-dirty" if status else head


def run_benchmark(config: Dict) -> Dict:
    """Run every stage under ``config``; returns the schema'd result."""
    stages = [
        _rnn_train_stage("lstm", config),
        _rnn_train_stage("gru", config),
        _no_grad_overhead_stage(config),
        _gan_inference_stage(config),
        _gan_slot_stage(config),
    ]
    return {
        "schema": SCHEMA,
        "pr": PR,
        "commit": _commit_hash(),
        "config": dict(config),
        "stages": stages,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smoke configuration (seconds, not minutes)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / f"BENCH_pr{PR}.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    result = run_benchmark(QUICK_CONFIG if args.quick else FULL_CONFIG)
    for stage in result["stages"]:
        print(
            f"{stage['stage']:<26} baseline {stage['baseline_median_seconds'] * 1e3:8.2f} ms"
            f"  fast {stage['fast_median_seconds'] * 1e3:8.2f} ms"
            f"  speedup {stage['speedup']:5.2f}x"
        )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
