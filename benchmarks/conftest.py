"""Shared benchmark fixtures.

The figure benchmarks regenerate entire paper experiments, so each runs
exactly once (``pedantic`` with one round); the micro-benchmarks use
pytest-benchmark's normal calibration.  Set ``REPRO_PROFILE=full`` for
paper-scale runs (hours); the default ``quick`` profile finishes the whole
suite in minutes.
"""

import pytest

from repro.experiments.config import active_profile


@pytest.fixture(scope="session")
def profile():
    """The experiment profile selected by REPRO_PROFILE (quick/full)."""
    return active_profile()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-experiment benchmark exactly once and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
