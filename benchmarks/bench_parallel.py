"""Serial-vs-parallel throughput of the repetition engine.

Runs the same 16-repetition, 2-controller study through
``run_repetitions`` with ``n_jobs=1`` and ``n_jobs=4`` and reports
wall-clock, runs/second and the speedup, asserting the two paths agree
bit-for-bit on every seed-determined metric (the engine's core
guarantee).  The speedup itself is hardware-dependent — on a >=4-core
machine the parallel path is expected to be >=2.5x faster; on fewer
cores the bit-identity check still runs and the measured numbers are
reported for the record.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -s
"""

import os
import time

import numpy as np
import pytest

from repro.core import GreedyController, OlGdController
from repro.mec import DriftingDelay, MECNetwork
from repro.mec.requests import Request
from repro.sim import run_repetitions
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel

pytestmark = pytest.mark.slow

N_REPETITIONS = 16
HORIZON = 12
N_JOBS = 4
SEED = 2020
DETERMINISTIC_METRICS = ("mean_delay_ms", "total_churn")


def scenario(rngs: RngRegistry):
    """Module-level (picklable) 2-controller world for one repetition."""
    network = MECNetwork.synthetic(15, 2, rngs)
    network.delays = DriftingDelay(
        network.stations, rngs.get("drift"), drift_ms=1.0
    )
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(10)
    ]
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    controllers = [
        OlGdController(network, requests, rngs.get("ol")),
        GreedyController(network, requests, rngs.get("gr")),
    ]
    return network, ConstantDemandModel(requests), controllers


def _run(n_jobs: int):
    start = time.perf_counter()
    study = run_repetitions(
        scenario,
        seed=SEED,
        repetitions=N_REPETITIONS,
        horizon=HORIZON,
        n_jobs=n_jobs,
        n_controllers=2,
    )
    return study, time.perf_counter() - start


def test_parallel_throughput():
    serial, serial_seconds = _run(n_jobs=1)
    parallel, parallel_seconds = _run(n_jobs=N_JOBS)
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0

    print()
    print(
        f"{N_REPETITIONS}-repetition study, 2 controllers, horizon {HORIZON}, "
        f"{os.cpu_count()} cores available"
    )
    print(f"{'path':<10} {'wall [s]':>9} {'runs/s':>8} {'cpu [s]':>9}")
    for label, study, seconds in (
        ("serial", serial, serial_seconds),
        (f"jobs={N_JOBS}", parallel, parallel_seconds),
    ):
        print(
            f"{label:<10} {seconds:>9.2f} {study.completed_runs / seconds:>8.2f} "
            f"{study.cpu_seconds:>9.2f}"
        )
    print(f"speedup: {speedup:.2f}x  (target >=2.5x on >=4 cores)")
    print()
    print(parallel.timing_table())

    # The guarantee that makes the speedup trustworthy: bit-identical
    # summaries for every seed-determined metric.
    assert serial.n_failed == parallel.n_failed == 0
    for controller in serial.summaries:
        for metric in DETERMINISTIC_METRICS:
            assert (
                serial.summary(controller, metric).values
                == parallel.summary(controller, metric).values
            ), (controller, metric)
