"""Fig. 4 — the given-demand algorithms across network sizes 50-200.

Reproduction targets: OL_GD lowest at the larger sizes (it may lose the
smallest size, where exploration hurts and the solution space is tiny);
runtimes grow with size, OL_GD's fastest, but the gap stays practical.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure4
from repro.experiments.claims import assert_hard_claims, check_figure, render_scorecard
from repro.experiments.tables import render_figure


def test_fig4(benchmark, profile):
    figure = run_once(benchmark, figure4, profile)
    print()
    print(render_figure(figure))

    results = check_figure(figure, profile)
    print("claim scorecard:")
    print(render_scorecard(results))
    # Extra guard: at quick scale Greedy can win a single topology, but
    # OL_GD must stay within noise of the best.
    largest = {n: s[-1] for n, s in figure.panels["delay_ms"].items()}
    assert largest["OL_GD"] <= 1.15 * min(largest.values()), (
        f"paper shape: OL_GD within noise of the best; got {largest}"
    )
    assert_hard_claims(results)
