"""Statistical comparison: OL_GD vs baselines with paired seed-level tests.

The figure benchmarks report single-run (or few-rep) curves; this one runs
a multi-seed repetition study and reports means with 95% confidence
intervals plus a paired sign test — the statistical backing for the
"OL_GD wins" claims.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import GreedyController, OlGdController, PriorityController
from repro.experiments.figures import _build_setting
from repro.sim import compare_controllers, run_repetitions
from repro.utils.seeding import RngRegistry


def study(profile):
    reps = max(profile.repetitions, 4)

    def build(rngs: RngRegistry):
        network, requests, demand_model = _build_setting(
            profile, rngs, profile.base_stations
        )
        controllers = [
            OlGdController(network, requests, rngs.get("ol-gd")),
            GreedyController(network, requests, rngs.get("greedy")),
            PriorityController(network, requests, rngs.get("priority")),
        ]
        return network, demand_model, controllers

    return run_repetitions(
        build, seed=profile.seed, repetitions=reps, horizon=profile.horizon
    )


def test_statistical_comparison(benchmark, profile):
    result = run_once(benchmark, study, profile)
    print()
    print(result.table("mean_delay_ms"))
    for rival in ("Greedy_GD", "Pri_GD"):
        comparison = compare_controllers(result, "OL_GD", rival)
        print(
            f"OL_GD vs {rival}: wins {comparison.wins_a}/{result.repetitions}, "
            f"mean delay advantage {comparison.mean_difference:.2f} ms, "
            f"sign-test p={comparison.sign_test_p:.3f}"
        )
        assert comparison.a_wins_majority, (
            f"OL_GD should beat {rival} on a majority of seeds; {comparison}"
        )
    summary = result.summary("OL_GD", "mean_delay_ms")
    assert np.isfinite(summary.ci_low) and np.isfinite(summary.ci_high)
