"""Ablation — resilience to cloudlet outages (extension).

Fails the learner's favourite station mid-horizon and measures the delay
penalty during the outage window for OL_GD vs Greedy_GD.  The learning
controller re-routes (its LP simply stops assigning to the dead station
and its exploration keeps fresher estimates of the alternatives); the
greedy baseline must rediscover a plan from stale means.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import GreedyController, OlGdController
from repro.experiments.figures import _build_setting
from repro.sim import FailureSchedule, run_with_failures
from repro.utils.seeding import RngRegistry


def outage_study(profile):
    horizon = profile.horizon
    start = horizon // 2
    duration = max(horizon // 5, 2)
    results = {}
    for rep in range(profile.repetitions):
        rngs = RngRegistry(seed=profile.seed).child(f"fail-rep{rep}")
        network, requests, demand_model = _build_setting(
            profile, rngs, profile.base_stations
        )
        probe = OlGdController(network, requests, rngs.get("probe"))
        victim = int(
            np.bincount(
                probe.decide(0, demand_model.demand_at(0)).station_of
            ).argmax()
        )
        failures = FailureSchedule().add_outage(victim, start, duration)
        for controller in (
            OlGdController(network, requests, rngs.get("ol-gd")),
            GreedyController(network, requests, rngs.get("greedy")),
        ):
            result = run_with_failures(
                network, demand_model, controller, horizon, failures
            )
            window = result.delays_ms[start : start + duration]
            after = result.delays_ms[start + duration :]
            entry = results.setdefault(
                controller.name, {"during": [], "after": []}
            )
            entry["during"].append(float(np.mean(window)))
            entry["after"].append(float(np.mean(after)) if after.size else np.nan)
    return {
        name: {k: float(np.nanmean(v)) for k, v in entry.items()}
        for name, entry in results.items()
    }


def test_outage_resilience(benchmark, profile):
    results = run_once(benchmark, outage_study, profile)
    print()
    print("controller -> mean delay during outage | after recovery (ms)")
    for name, entry in results.items():
        print(f"  {name:<12} {entry['during']:8.2f} | {entry['after']:8.2f}")
    # The learner must ride through the outage at least as well as greedy.
    assert results["OL_GD"]["during"] <= results["Greedy_GD"]["during"] * 1.05, (
        f"OL_GD should absorb the outage at least as well; got {results}"
    )
    for entry in results.values():
        assert np.isfinite(entry["during"])
