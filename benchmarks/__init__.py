"""Benchmark suite: one module per paper figure plus ablations and
micro-benchmarks.  Run with ``pytest benchmarks/ --benchmark-only``."""
