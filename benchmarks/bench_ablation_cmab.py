"""Ablation — LP-guided OL_GD vs LP-free combinatorial bandits.

DESIGN.md extension: quantifies the value of the paper's central design
choice (steering exploration with the per-slot LP relaxation) against
classic index policies applied per request (UCB1, Thompson sampling) with
the same bandit feedback and the same capacity discipline.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OlGdController
from repro.core.cmab import cmab_thompson, cmab_ucb
from repro.experiments.figures import _build_setting
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry


def sweep_controllers(profile):
    results = {}
    for rep in range(profile.repetitions):
        rngs = RngRegistry(seed=profile.seed).child(f"cmab-rep{rep}")
        network, requests, demand_model = _build_setting(
            profile, rngs, profile.base_stations
        )
        controllers = [
            OlGdController(network, requests, rngs.get("ol-gd")),
            cmab_ucb(network, requests, rngs.get("cmab-ucb")),
            cmab_thompson(network, requests, rngs.get("cmab-ts")),
        ]
        for controller in controllers:
            result = run_simulation(
                network, demand_model, controller, horizon=profile.horizon
            )
            results.setdefault(controller.name, []).append(
                result.mean_delay_ms(skip_warmup=profile.horizon // 4)
            )
    return {name: float(np.mean(values)) for name, values in results.items()}


def test_ablation_cmab(benchmark, profile):
    results = run_once(benchmark, sweep_controllers, profile)
    print()
    print("controller -> steady-state delay (ms)")
    for name, delay in sorted(results.items(), key=lambda kv: kv[1]):
        print(f"  {name:<10} {delay:8.2f}")
    # Finding (recorded in EXPERIMENTS.md): at light load the Thompson
    # CMAB is a strong LP-free alternative — it can edge out OL_GD, whose
    # LP guidance pays off as capacity coupling tightens.  The robust
    # assertions are that OL_GD beats the UCB variant and stays within a
    # modest factor of the best index policy.
    assert results["OL_GD"] < results["CMAB_UCB"], (
        f"OL_GD should beat the UCB index policy; got {results}"
    )
    best_index = min(results["CMAB_UCB"], results["CMAB_TS"])
    assert results["OL_GD"] <= best_index * 1.30, (
        f"OL_GD should be within a modest factor of the best index policy; "
        f"got {results}"
    )
