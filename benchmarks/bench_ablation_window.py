"""Ablation — cumulative vs sliding-window delay estimation under drift.

Extension beyond the paper (DESIGN.md §4): Algorithm 1's `theta_i` is a
cumulative mean, which lags when `d_i(t)` drifts (the paper's own premise
is time-varying delays).  This benchmark compares the paper's estimator
against sliding windows of several lengths at an aggressive drift.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OlGdController
from repro.experiments.figures import _build_setting
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry

WINDOWS = (None, 40, 10)
DRIFT_MS = 2.0


def sweep_window(profile):
    import dataclasses

    drifting = dataclasses.replace(profile, drift_ms=DRIFT_MS)
    results = {}
    for window in WINDOWS:
        label = "cumulative (paper)" if window is None else f"window={window}"
        delays = []
        for rep in range(profile.repetitions):
            rngs = RngRegistry(seed=profile.seed).child(f"win-rep{rep}")
            network, requests, demand_model = _build_setting(
                drifting, rngs, profile.base_stations
            )
            controller = OlGdController(
                network, requests, rngs.get("ol-gd"), estimator_window=window
            )
            result = run_simulation(
                network, demand_model, controller, horizon=profile.horizon
            )
            delays.append(result.mean_delay_ms(skip_warmup=profile.horizon // 4))
        results[label] = float(np.mean(delays))
    return results


def test_ablation_window(benchmark, profile):
    results = run_once(benchmark, sweep_window, profile)
    print()
    print(f"estimator -> steady-state delay (ms) at drift {DRIFT_MS} ms/slot")
    for label, delay in results.items():
        print(f"  {label:<20} {delay:8.2f}")
    # At strong drift, forgetting must not be materially worse than the
    # cumulative estimator (it is usually better).
    best_window = min(v for k, v in results.items() if k != "cumulative (paper)")
    assert best_window <= results["cumulative (paper)"] * 1.05, (
        f"a sliding window should track drifting delays at least as well; {results}"
    )
