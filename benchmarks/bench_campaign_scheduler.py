"""Benchmark trajectory for the campaign-wide work-stealing scheduler.

Times a multi-cell campaign executed two ways at **equal total worker
count**:

* **baseline** — ``scheduler="cell"``: cells run sequentially, each
  spinning up its own short-lived per-cell process pool and building one
  world per ``(repetition, controller)`` work item;
* **fast** — ``scheduler="global"``: one persistent pool drains the
  whole ``(cell × repetition × controller)`` grid as ``(cell,
  repetition)`` dispatch units, so a worker builds each repetition's
  world once and runs every controller on it, and no pool is ever
  re-created.

The grid is deliberately build-heavy (bursty workload, thousands of
requests, a short horizon, LP-free controllers), the regime the global
scheduler targets: the per-item world rebuilds and the per-cell pool
spin-ups are the baseline's overhead, and both vanish under the shared
queue.  After timing, the two result trees are compared byte-for-byte —
the speedup only counts because ``summary.json`` is identical under
both engines.

A second stage isolates the ``PerSlotLpSolver`` capacity patch: the
pre-PR per-station row loop over the sparse buffer (legacy emulation)
versus the one-shot CSC fancy assignment the solver now performs.

Running as a script writes ``BENCH_pr8.json`` at the repo root — the
next point of the recorded benchmark trajectory (see ``BENCH_pr3.json``
onwards; "Performance" in README.md).

Run with::

    PYTHONPATH=src python benchmarks/bench_campaign_scheduler.py          # full
    PYTHONPATH=src python benchmarks/bench_campaign_scheduler.py --quick  # smoke

The tier-1 smoke test (``tests/test_bench_campaign_scheduler.py``) runs
the ``--quick`` configuration and validates the schema, so the benchmark
itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List

import numpy as np

from repro.campaigns import (
    CampaignSpec,
    FactorAxis,
    ScenarioSpec,
    cell_directory,
    run_campaign,
)
from repro.core.fastlp import PerSlotLpSolver
from repro.mec.network import MECNetwork
from repro.mec.requests import Request
from repro.utils.seeding import RngRegistry

SCHEMA = "repro.bench.trajectory/v1"
PR = 8

# Build-heavy grid: 3 cells x 2 repetitions x 4 LP-free controllers.
# Worlds (bursty demand chains over 4000 requests) cost several times a
# 2-slot simulation, so sharing one build across a repetition's four
# controllers is the dominant win; horizon stays short on purpose.
FULL_CONFIG: Dict = {
    "controllers": ["Greedy_GD", "Pri_GD", "CMAB_UCB", "CMAB_TS"],
    "horizon": 2,
    "workload": "bursty",
    "n_services": 3,
    "n_requests": 4000,
    "n_hotspots": 8,
    "station_grid": [16, 24, 32],
    "repetitions": 2,
    "n_jobs": 2,
    "lp_requests": 200,
    "lp_stations": 64,
    "lp_services": 3,
    "lp_patches": 2000,
    "repeats": 3,
    "seed": 2020,
}

# Tiny everything: the smoke variant exercises both stages in seconds.
QUICK_CONFIG: Dict = {
    "controllers": ["Greedy_GD", "Pri_GD"],
    "horizon": 2,
    "workload": "bursty",
    "n_services": 2,
    "n_requests": 60,
    "n_hotspots": 3,
    "station_grid": [8, 10],
    "repetitions": 1,
    "n_jobs": 2,
    "lp_requests": 12,
    "lp_stations": 8,
    "lp_services": 2,
    "lp_patches": 50,
    "repeats": 1,
    "seed": 2020,
}


def _median_seconds(fn: Callable[[], None], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return float(statistics.median(times))


def _stage(name: str, baseline_seconds: float, fast_seconds: float) -> Dict:
    return {
        "stage": name,
        "baseline_median_seconds": baseline_seconds,
        "fast_median_seconds": fast_seconds,
        "speedup": baseline_seconds / fast_seconds,
    }


def _campaign_spec(config: Dict) -> CampaignSpec:
    return CampaignSpec(
        name="bench-scheduler",
        seed=config["seed"],
        repetitions=config["repetitions"],
        scenario=ScenarioSpec(
            controllers=tuple(config["controllers"]),
            horizon=config["horizon"],
            workload=config["workload"],
            n_services=config["n_services"],
            n_requests=config["n_requests"],
            n_hotspots=config["n_hotspots"],
        ),
        factors=(FactorAxis("n_stations", tuple(config["station_grid"])),),
    )


def _summary_tree(out_dir: Path, spec: CampaignSpec) -> Dict[str, bytes]:
    return {
        cell.cell_id: (
            cell_directory(out_dir, cell.cell_id) / "summary.json"
        ).read_bytes()
        for cell in spec.expand()
    }


def _campaign_stage(config: Dict) -> Dict:
    """The acceptance stage: per-cell pools vs the global scheduler."""
    spec = _campaign_spec(config)
    workdir = Path(tempfile.mkdtemp(prefix="bench-campaign-"))
    counter = {"n": 0}

    def run(scheduler: str) -> Path:
        counter["n"] += 1
        out = workdir / f"{scheduler}-{counter['n']}"
        result = run_campaign(
            spec, out, scheduler=scheduler, n_jobs=config["n_jobs"]
        )
        if not result.complete:
            raise RuntimeError(f"benchmark campaign incomplete in {out}")
        return out

    try:
        baseline_out = run("cell")
        fast_out = run("global")
        # The speedup only counts if the engines agree byte-for-byte.
        if _summary_tree(baseline_out, spec) != _summary_tree(fast_out, spec):
            raise RuntimeError(
                "global scheduler summaries differ from the sequential "
                "per-cell path; refusing to record the benchmark"
            )
        stage = _stage(
            "campaign_global_scheduler",
            _median_seconds(lambda: run("cell"), config["repeats"]),
            _median_seconds(lambda: run("global"), config["repeats"]),
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    stage["summaries_identical"] = True
    stage["n_cells"] = len(spec.expand())
    stage["n_items"] = (
        len(spec.expand()) * config["repetitions"] * len(config["controllers"])
    )
    return stage


def _lp_patch_stage(config: Dict) -> Dict:
    """Capacity patching: per-station row loop vs one-shot CSC assignment."""
    rngs = RngRegistry(seed=config["seed"])
    network = MECNetwork.synthetic(
        config["lp_stations"], config["lp_services"], rngs
    )
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(config["lp_services"])),
            basic_demand_mb=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(config["lp_requests"])
    ]
    solver = PerSlotLpSolver(network, requests)
    index = solver._capacity_data_index
    data = solver._a_ub.data
    view = solver._capacity_view
    drift = np.random.default_rng(config["seed"] + 5)
    demands = [
        drift.uniform(0.5, 2.0, config["lp_requests"])
        for _ in range(config["lp_patches"])
    ]
    n_stations = network.n_stations

    def legacy() -> None:
        # The pre-PR loop: one fancy assignment per capacity row.
        for needs in demands:
            scaled = needs * network.c_unit_mhz
            for i in range(n_stations):
                data[index[i]] = scaled

    def fast() -> None:
        # The solver's current patch: one strided-view write per slot.
        for needs in demands:
            view[:] = (needs * network.c_unit_mhz)[:, None]

    return _stage(
        "lp_capacity_patch",
        _median_seconds(legacy, config["repeats"]),
        _median_seconds(fast, config["repeats"]),
    )


def _commit_hash() -> str:
    """HEAD at generation time, with ``-dirty`` when the tree has edits."""
    cwd = Path(__file__).resolve().parent
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{head}-dirty" if status else head


def run_benchmark(config: Dict) -> Dict:
    """Run every stage under ``config``; returns the schema'd result."""
    stages: List[Dict] = [
        _campaign_stage(config),
        _lp_patch_stage(config),
    ]
    return {
        "schema": SCHEMA,
        "pr": PR,
        "commit": _commit_hash(),
        "config": dict(config),
        "stages": stages,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke configuration (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / f"BENCH_pr{PR}.json",
        help="where to write the trajectory JSON",
    )
    args = parser.parse_args(argv)
    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    result = run_benchmark(config)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for stage in result["stages"]:
        print(
            f"{stage['stage']:<28} baseline {stage['baseline_median_seconds']:8.3f}s"
            f"  fast {stage['fast_median_seconds']:8.3f}s"
            f"  speedup {stage['speedup']:6.2f}x"
        )
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
