"""Ablation — predictor shoot-out: GAN vs AR (Eq. 27) vs EWMA vs naive.

DESIGN.md exp id ``abl-pred``.  Pure prediction comparison on the bursty
workload (no network in the loop): mean absolute error per slot, with the
clairvoyant oracle as the floor.  This isolates the mechanism behind
Fig. 6: "algorithm OL_GAN adopts a GAN-based method that works very well
in small volume of historical data".
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures import _build_setting
from repro.gan import GanDemandPredictor
from repro.prediction import ArPredictor, EwmaPredictor, LastValuePredictor
from repro.utils.seeding import RngRegistry
from repro.workload import BurstyDemandModel, encode_request_locations


def shootout(profile):
    errors = {}
    for rep in range(profile.repetitions):
        rngs = RngRegistry(seed=profile.seed).child(f"pred-rep{rep}")
        _, requests, demand_model = _build_setting(
            profile, rngs, profile.base_stations, bursty=True
        )
        warmup = BurstyDemandModel(requests, rngs.get("warmup-demand")).matrix(
            profile.gan_pretrain_slots
        )
        codes = encode_request_locations(requests, profile.n_hotspots)
        predictors = {
            "Info-RNN-GAN": GanDemandPredictor(
                codes,
                rngs.get("gan"),
                window=profile.gan_window,
                warmup_history=warmup,
                pretrain_epochs=profile.gan_pretrain_epochs,
                online_steps=1,
                hidden_size=profile.gan_hidden,
                supervised_quantile=0.7,
            ),
            "AR (Eq. 27)": ArPredictor(len(requests), order=5),
            "EWMA": EwmaPredictor(len(requests), alpha=0.4),
            "last-value": LastValuePredictor(len(requests)),
        }
        for name, predictor in predictors.items():
            if name != "Info-RNN-GAN":
                for row in warmup:
                    predictor.observe(row)
        for t in range(profile.horizon):
            actual = demand_model.demand_at(t)
            for name, predictor in predictors.items():
                error = float(np.mean(np.abs(predictor.predict_next() - actual)))
                errors.setdefault(name, []).append(error)
                predictor.observe(actual)
    return {name: float(np.mean(values)) for name, values in errors.items()}


def test_prediction_shootout(benchmark, profile):
    maes = run_once(benchmark, shootout, profile)
    print()
    print("predictor -> demand MAE (MB per request per slot)")
    for name, mae in sorted(maes.items(), key=lambda kv: kv[1]):
        print(f"  {name:<14} {mae:8.3f}")
    assert maes["Info-RNN-GAN"] < maes["AR (Eq. 27)"], (
        f"paper shape: the GAN out-predicts the AR baseline; got {maes}"
    )
    assert maes["Info-RNN-GAN"] < maes["EWMA"], (
        f"the GAN should also beat the EWMA extension baseline; got {maes}"
    )
