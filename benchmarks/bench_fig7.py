"""Fig. 7 — OL_GAN vs OL_Reg on AS1755 and across network sizes 50-300.

Reproduction targets: OL_GAN's prediction advantage holds across sizes,
both algorithms' delays fall as the network grows (more fast stations to
choose from), and OL_GAN's running time on AS1755 stays practical.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figure7
from repro.experiments.claims import assert_hard_claims, check_figure, render_scorecard
from repro.experiments.tables import render_figure


def test_fig7(benchmark, profile):
    figure = run_once(benchmark, figure7, profile)
    print()
    print(render_figure(figure))

    results = check_figure(figure, profile)
    print("claim scorecard:")
    print(render_scorecard(results))
    assert_hard_claims(results)
    as1755_delay = figure.panels["as1755_delay_ms"]
    as1755_runtime = figure.panels["as1755_runtime_s"]
    print(f"AS1755 mean delay: { {k: round(v[0], 2) for k, v in as1755_delay.items()} }")
    print(
        "AS1755 mean decision time (s): "
        f"{ {k: round(v[0], 4) for k, v in as1755_runtime.items()} }"
    )
    assert set(as1755_delay) == {"OL_GAN", "OL_Reg"}
