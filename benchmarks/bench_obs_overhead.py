"""Overhead of the repro.obs instrumentation on the slot loop.

The telemetry contract is that *disabled* telemetry (the default) is free:
every instrumented hot path goes through the module-level helpers
(``obs.span`` / ``obs.inc``), which reduce to one global read and a shared
no-op context manager when no registry is active.  This benchmark proves
the budget two ways:

1. **Microbenchmark** — measures the cost of a disabled ``obs.span`` and
   multiplies it by a generous per-slot instrumentation-site count,
   asserting the product is under 5% of the measured per-slot time of an
   `OL_GD` run (it is typically under 0.1%).
2. **End-to-end** — times the same simulation with telemetry disabled and
   enabled and reports both (the enabled path records real histograms and
   is allowed to cost more; it is reported, not asserted).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""

import time

import numpy as np

from repro import obs
from repro.core import OlGdController
from repro.mec import MECNetwork
from repro.mec.requests import Request
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry
from repro.workload import ConstantDemandModel

HORIZON = 30
# Instrumentation sites actually hit per OL_GD slot: sim.decide,
# sim.evaluate, sim.observe, lp.patch, lp.solve, olgd.candidates,
# olgd.sample, olgd.repair, olgd.arm_update + the counters.  Budget double.
SPANS_PER_SLOT = 24


def _scenario(seed: int = 2020):
    rngs = RngRegistry(seed=seed)
    network = MECNetwork.synthetic(15, 2, rngs)
    rng = rngs.get("requests")
    requests = [
        Request(
            index=i,
            service_index=int(rng.integers(2)),
            basic_demand_mb=float(rng.uniform(1.0, 2.0)),
        )
        for i in range(10)
    ]
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    return network, requests, rngs


def _per_slot_seconds(metrics):
    network, requests, rngs = _scenario()
    controller = OlGdController(network, requests, rngs.get("ctrl"))
    start = time.perf_counter()
    run_simulation(
        network,
        ConstantDemandModel(requests),
        controller,
        horizon=HORIZON,
        metrics=metrics,
    )
    return (time.perf_counter() - start) / HORIZON


def _disabled_span_seconds(iterations: int = 200_000) -> float:
    assert obs.active_registry() is None, "benchmark requires telemetry off"
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("noop"):
            pass
        obs.inc("noop")
    return (time.perf_counter() - start) / iterations


def test_disabled_telemetry_under_budget():
    """Disabled-path cost per slot must be <5% of the slot's real work."""
    slot_seconds = _per_slot_seconds(metrics=None)
    noop_seconds = _disabled_span_seconds()
    overhead_fraction = SPANS_PER_SLOT * noop_seconds / slot_seconds
    print(
        f"\nper-slot time (telemetry off): {slot_seconds * 1e3:.3f} ms\n"
        f"disabled span+counter:         {noop_seconds * 1e9:.0f} ns\n"
        f"overhead at {SPANS_PER_SLOT} sites/slot:    "
        f"{overhead_fraction * 100:.4f}% (budget 5%)"
    )
    assert overhead_fraction < 0.05, (
        f"disabled telemetry costs {overhead_fraction:.2%} per slot, "
        f"over the 5% budget"
    )


def test_enabled_telemetry_reported():
    """Enabled-path cost, for the record (no assertion — it does real work)."""
    off = _per_slot_seconds(metrics=None)
    registry = obs.MetricsRegistry()
    on = _per_slot_seconds(metrics=registry)
    print(
        f"\nper-slot: off {off * 1e3:.3f} ms | on {on * 1e3:.3f} ms "
        f"({(on / off - 1) * 100:+.2f}%)"
    )
    assert registry.counter("sim.slots") == HORIZON
    assert registry.histogram("lp.solve.seconds").count == HORIZON
