"""Ablation — sensitivity of OL_GD to the candidate threshold gamma (Eq. 9).

DESIGN.md exp id ``abl-gamma``.  A very small gamma admits almost every
station with fractional mass into the candidate set (noisy rounding); a
very large one collapses the set to the argmax (no hedging).  The sweep
shows the flat middle region the default gamma=0.1 sits in.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OlGdController
from repro.experiments.figures import _build_setting
from repro.sim import run_simulation
from repro.utils.seeding import RngRegistry

GAMMAS = (0.02, 0.1, 0.3, 0.6)


def sweep_gamma(profile):
    results = {}
    for gamma in GAMMAS:
        delays = []
        for rep in range(profile.repetitions):
            rngs = RngRegistry(seed=profile.seed).child(f"gamma-rep{rep}")
            network, requests, demand_model = _build_setting(
                profile, rngs, profile.base_stations
            )
            controller = OlGdController(
                network, requests, rngs.get("ol-gd"), gamma=gamma
            )
            result = run_simulation(
                network, demand_model, controller, horizon=profile.horizon
            )
            delays.append(result.mean_delay_ms(skip_warmup=profile.horizon // 4))
        results[gamma] = float(np.mean(delays))
    return results


def test_ablation_gamma(benchmark, profile):
    results = run_once(benchmark, sweep_gamma, profile)
    print()
    print("gamma -> steady-state delay (ms)")
    for gamma, delay in results.items():
        print(f"  gamma={gamma:<5} {delay:8.2f}")
    assert set(results) == set(GAMMAS)
    assert all(np.isfinite(v) and v > 0 for v in results.values())
