"""Ablation — cache churn and switching costs (extension).

Under the churn-aware costing (instantiation paid only for *new*
instances, `repro.core.churn.evaluate_with_churn`) a controller that
reshuffles its cache every slot pays for the thrash.  This benchmark
compares plain OL_GD against OL_GD wrapped in the hysteresis guard on
both metrics: churn-aware delay and total cache churn.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core import OlGdController
from repro.core.churn import HysteresisController, evaluate_with_churn
from repro.experiments.figures import _build_setting
from repro.utils.seeding import RngRegistry


def run_churn_study(profile):
    results = {}
    for rep in range(profile.repetitions):
        rngs = RngRegistry(seed=profile.seed).child(f"churn-rep{rep}")
        network, requests, demand_model = _build_setting(
            profile, rngs, profile.base_stations
        )
        controllers = {
            "OL_GD": OlGdController(network, requests, rngs.get("plain")),
            "OL_GD+hyst": HysteresisController(
                OlGdController(network, requests, rngs.get("wrapped")),
                switch_threshold_ms=1.0,
            ),
        }
        for name, controller in controllers.items():
            previous = None
            delays, churn = [], 0
            for t in range(profile.horizon):
                demands = demand_model.demand_at(t)
                assignment = controller.decide(t, demands)
                d_t = network.delays.sample(t)
                delays.append(
                    evaluate_with_churn(
                        assignment, network, requests, demands, d_t, previous
                    )
                )
                if previous is not None:
                    churn += assignment.cache_churn(previous)
                controller.observe(t, demands, d_t, assignment)
                previous = assignment
            entry = results.setdefault(name, {"delay": [], "churn": []})
            skip = profile.horizon // 4
            entry["delay"].append(float(np.mean(delays[skip:])))
            entry["churn"].append(churn)
    return {
        name: {
            "delay_ms": float(np.mean(entry["delay"])),
            "total_churn": float(np.mean(entry["churn"])),
        }
        for name, entry in results.items()
    }


def test_ablation_churn(benchmark, profile):
    results = run_once(benchmark, run_churn_study, profile)
    print()
    print("controller -> churn-aware delay (ms) | total new instances")
    for name, entry in results.items():
        print(
            f"  {name:<12} {entry['delay_ms']:8.2f} | {entry['total_churn']:8.0f}"
        )
    # The hysteresis guard must cut churn substantially...
    assert (
        results["OL_GD+hyst"]["total_churn"] < 0.7 * results["OL_GD"]["total_churn"]
    ), f"hysteresis should reduce cache churn; got {results}"
    # ...without a large delay penalty under churn-aware costing.
    assert results["OL_GD+hyst"]["delay_ms"] <= 1.15 * results["OL_GD"]["delay_ms"], (
        f"hysteresis should not cost much churn-aware delay; got {results}"
    )
