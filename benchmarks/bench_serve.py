"""Benchmark trajectory for the serving layer: sustained requests/sec.

Measures the decision-service stack end to end at its three depths:

* ``serve_inproc_throughput`` — offers ingested + slots decided through
  the in-process :class:`repro.serve.DecisionServer` API (the ceiling:
  no serialisation, no sockets);
* ``serve_dispatch_throughput`` — the same traffic through the
  line-JSON dispatcher (:func:`repro.serve.handle_line`), isolating the
  protocol encode/decode cost;
* ``serve_tcp_throughput`` — pipelined offers over one persistent TCP
  connection against the real :class:`repro.serve.ProtocolServer`;
* ``serve_checkpoint_latency`` — drain-checkpoint write and warm-restart
  (restore) latency, the operations a SIGTERM/restart cycle pays.

Running as a script writes ``BENCH_pr10.json`` at the repo root — the
next point of the recorded benchmark trajectory (see ``BENCH_pr3.json``
onwards; "Performance" in README.md).

Run with::

    PYTHONPATH=src python benchmarks/bench_serve.py          # full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick  # smoke

The tier-1 smoke test (``tests/test_bench_serve.py``) runs the
``--quick`` configuration and validates the schema, so the benchmark
itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import socket
import statistics
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Tuple

import numpy as np

from repro.serve import DecisionServer, ProtocolServer, ServeConfig, handle_line

SCHEMA = "repro.bench.trajectory/v1"
PR = 10

FULL_CONFIG: Dict = {
    "n_stations": 16,
    "n_services": 4,
    "n_requests": 30,
    "n_hotspots": 8,
    "offers_per_slot": 30,
    "inproc_slots": 200,
    "dispatch_slots": 100,
    "tcp_offers": 2000,
    "checkpoint_slots": 50,
    "repeats": 5,
    "seed": 2020,
}

QUICK_CONFIG: Dict = {
    "n_stations": 8,
    "n_services": 2,
    "n_requests": 6,
    "n_hotspots": 3,
    "offers_per_slot": 6,
    "inproc_slots": 8,
    "dispatch_slots": 6,
    "tcp_offers": 60,
    "checkpoint_slots": 6,
    "repeats": 2,
    "seed": 2020,
}


def _serve_config(config: Dict, **overrides) -> ServeConfig:
    fields = dict(
        controller="OL_GD",
        seed=config["seed"],
        horizon=64,
        n_stations=config["n_stations"],
        n_services=config["n_services"],
        n_requests=config["n_requests"],
        n_hotspots=config["n_hotspots"],
    )
    fields.update(overrides)
    return ServeConfig(**fields)


def _offer_stream(config: Dict, n_slots: int) -> List[List[Tuple[int, float]]]:
    """Per-slot offer batches, deterministic in the config seed."""
    rng = np.random.default_rng(config["seed"])
    return [
        [
            (int(rng.integers(config["n_requests"])), float(rng.uniform(0.5, 2.0)))
            for _ in range(config["offers_per_slot"])
        ]
        for _ in range(n_slots)
    ]


def _median(values: List[float]) -> float:
    return float(statistics.median(values))


# --------------------------------------------------------------------- #
# Stages
# --------------------------------------------------------------------- #


def _inproc_stage(config: Dict) -> Dict:
    """The API ceiling: offer() + decide() with no protocol in between."""
    slots = config["inproc_slots"]
    stream = _offer_stream(config, slots)
    times = []
    for _ in range(config["repeats"]):
        server = DecisionServer(_serve_config(config))
        server.start()
        start = time.perf_counter()
        for slot, batch in enumerate(stream):
            for request, volume in batch:
                server.offer(request, volume)
            server.decide(slot)
        times.append(time.perf_counter() - start)
        server.stop()
    seconds = _median(times)
    n_offers = slots * config["offers_per_slot"]
    return {
        "stage": "serve_inproc_throughput",
        "median_seconds": seconds,
        "n_offers": n_offers,
        "n_slots": slots,
        "requests_per_second": n_offers / seconds,
        "slots_per_second": slots / seconds,
    }


def _dispatch_stage(config: Dict) -> Dict:
    """The protocol layer alone: JSON decode -> dispatch -> JSON encode."""
    slots = config["dispatch_slots"]
    stream = _offer_stream(config, slots)
    lines = []
    for slot, batch in enumerate(stream):
        lines.append(
            [
                json.dumps({"op": "offer", "request": r, "volume_mb": v})
                for r, v in batch
            ]
            + [json.dumps({"op": "decide", "slot": slot})]
        )
    times = []
    for _ in range(config["repeats"]):
        server = DecisionServer(_serve_config(config))
        server.start()
        start = time.perf_counter()
        for slot_lines in lines:
            for line in slot_lines:
                handle_line(server, line)
        times.append(time.perf_counter() - start)
        server.stop()
    seconds = _median(times)
    n_requests = sum(len(slot_lines) for slot_lines in lines)
    return {
        "stage": "serve_dispatch_throughput",
        "median_seconds": seconds,
        "n_requests": n_requests,
        "requests_per_second": n_requests / seconds,
    }


def _tcp_stage(config: Dict) -> Dict:
    """Pipelined offers over one persistent connection to the TCP server."""
    n_offers = config["tcp_offers"]
    rng = np.random.default_rng(config["seed"] + 1)
    payload = b"".join(
        json.dumps(
            {
                "op": "offer",
                "request": int(rng.integers(config["n_requests"])),
                "volume_mb": float(rng.uniform(0.5, 2.0)),
            }
        ).encode("utf-8")
        + b"\n"
        for _ in range(n_offers)
    )
    times = []
    for _ in range(config["repeats"]):
        server = DecisionServer(
            _serve_config(config, buffer_limit=max(1024, n_offers))
        )
        server.start()
        tcp = ProtocolServer(server, port=0)
        tcp.start_background()
        try:
            start = time.perf_counter()
            with socket.create_connection(("127.0.0.1", tcp.port)) as conn:
                conn.sendall(payload)
                stream = conn.makefile("r", encoding="utf-8")
                for _ in range(n_offers):
                    if not stream.readline():
                        raise RuntimeError("connection closed mid-benchmark")
            times.append(time.perf_counter() - start)
        finally:
            tcp.stop_background()
            server.stop()
    seconds = _median(times)
    return {
        "stage": "serve_tcp_throughput",
        "median_seconds": seconds,
        "n_requests": n_offers,
        "requests_per_second": n_offers / seconds,
    }


def _checkpoint_stage(config: Dict, workdir: Path) -> Dict:
    """What a SIGTERM/restart cycle costs: snapshot write + warm restart."""
    import shutil
    import tempfile

    slots = config["checkpoint_slots"]
    stream = _offer_stream(config, slots)
    save_times, restore_times = [], []
    for _ in range(config["repeats"]):
        tmp = Path(tempfile.mkdtemp(dir=workdir))
        serve_config = _serve_config(
            config, checkpoint_dir=tmp, resume=True
        )
        server = DecisionServer(serve_config)
        server.start()
        for slot, batch in enumerate(stream):
            for request, volume in batch:
                server.offer(request, volume)
            server.decide(slot)
        start = time.perf_counter()
        server.stop()  # drain writes the snapshot
        save_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        restarted = DecisionServer(serve_config)
        restarted.start()  # warm restart restores the full trace
        restore_times.append(time.perf_counter() - start)
        assert restarted.slot == slots
        restarted.stop()
        shutil.rmtree(tmp)
    return {
        "stage": "serve_checkpoint_latency",
        "median_seconds": _median(save_times),
        "save_median_seconds": _median(save_times),
        "restore_median_seconds": _median(restore_times),
        "n_slots": slots,
    }


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def _commit_hash() -> str:
    """HEAD at generation time, with ``-dirty`` when the tree has edits."""
    cwd = Path(__file__).resolve().parent
    try:
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return f"{head}-dirty" if status else head


def run_benchmark(config: Dict, workdir: Path) -> Dict:
    """Run every stage under ``config``; returns the schema'd result."""
    stages = [
        _inproc_stage(config),
        _dispatch_stage(config),
        _tcp_stage(config),
        _checkpoint_stage(config, workdir),
    ]
    return {
        "schema": SCHEMA,
        "pr": PR,
        "commit": _commit_hash(),
        "config": dict(config),
        "stages": stages,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke configuration (seconds, not minutes)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parents[1] / f"BENCH_pr{PR}.json",
        help="where to write the JSON result",
    )
    args = parser.parse_args(argv)
    import tempfile

    with tempfile.TemporaryDirectory() as workdir:
        result = run_benchmark(
            QUICK_CONFIG if args.quick else FULL_CONFIG, Path(workdir)
        )
    for stage in result["stages"]:
        rate = stage.get("requests_per_second")
        rendered = (
            f"{rate:10.0f} req/s" if rate is not None
            else f"save {stage['save_median_seconds'] * 1e3:6.1f} ms"
                 f" restore {stage['restore_median_seconds'] * 1e3:6.1f} ms"
        )
        print(f"{stage['stage']:<28} {stage['median_seconds'] * 1e3:8.2f} ms  {rendered}")
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
