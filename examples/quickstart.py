#!/usr/bin/env python
"""Quickstart: build a 5G MEC network, run OL_GD, compare against Greedy.

This is the smallest end-to-end use of the library:

1. generate a GT-ITM-style synthetic MEC network (paper §VI-A tiers);
2. sample a user trace and derive the request set;
3. run the paper's online-learning controller (Algorithm 1, `OL_GD`) and
   the greedy baseline for 40 time slots;
4. print the per-slot average delay of both.

Run:  python examples/quickstart.py

This script is the single-run front-end of the declarative campaign in
``examples/campaigns/quickstart.toml`` — run that spec via
``python -m repro campaign run`` for the same study with seed-level
statistics, checkpointed cells and an aggregated report.
"""

import numpy as np

from repro.api import MECNetwork, RngRegistry, make_controller, run_simulation
from repro.mec import DriftingDelay
from repro.workload import (
    ConstantDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)


def main() -> None:
    rngs = RngRegistry(seed=7)

    # --- 1. the network: 40 base stations, 4 cacheable services ---------
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=5, n_users=30, rng=rngs.get("trace"), horizon_slots=40
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=40, n_services=4, rngs=rngs, anchor_points=anchors
    )
    # Per-slot drifting unit delays: the "time-varying processing delay"
    # uncertainty the online learner is built for.
    network.delays = DriftingDelay(
        network.stations, rngs.get("delays-drift"), drift_ms=0.5
    )
    print(f"network: {network.n_stations} stations, tiers {network.tier_counts()}")

    # --- 2. the workload: one request per trace user --------------------
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    demand_model = ConstantDemandModel(requests)
    total = float(np.sum(demand_model.basic_demands))
    network.validate_demand_fits(total)
    print(f"workload: {len(requests)} requests, {total:.1f} MB per slot")

    # --- 3. run both controllers (by registry name) ---------------------
    results = {}
    for controller in (
        make_controller("OL_GD", network, requests, rngs.get("ol-gd")),
        make_controller("Greedy_GD", network, requests, rngs.get("greedy")),
    ):
        results[controller.name] = run_simulation(
            network, demand_model, controller, horizon=40
        )

    # --- 4. report -------------------------------------------------------
    print(f"\n{'slot':>6} " + " ".join(f"{name:>12}" for name in results))
    for t in range(0, 40, 4):
        row = f"{t:>6} "
        row += " ".join(
            f"{results[name].delays_ms[t]:>12.2f}" for name in results
        )
        print(row)
    print("\nsteady-state mean delay (slots 10+):")
    for name, result in results.items():
        print(f"  {name:<12} {result.mean_delay_ms(skip_warmup=10):8.2f} ms")


if __name__ == "__main__":
    main()
