#!/usr/bin/env python
"""Network-size scaling study (the Fig. 4 experiment as a script).

Sweeps the number of base stations and reports, per algorithm:
steady-state average delay, controller decision time, and cache churn.
Demonstrates the trade-off the paper discusses: more stations means more
fast cells to exploit (delay falls) but a bigger LP per slot (OL_GD's
decision time grows).

Run:  python examples/network_scaling.py [--sizes 30 60 90]

This script is the single-run front-end of the declarative campaign in
``examples/campaigns/network_scaling.toml``, where the size sweep is a
factor axis: each size becomes a seeded, checkpointed campaign cell.
"""

import argparse

import numpy as np

from repro.api import MECNetwork, RngRegistry, run_simulation
from repro.core import GreedyController, OlGdController, PriorityController
from repro.mec import DriftingDelay
from repro.workload import (
    ConstantDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

HORIZON = 60
N_REQUESTS = 40


def run_size(n_stations: int, seed: int = 17) -> dict:
    rngs = RngRegistry(seed=seed).child(f"size{n_stations}")
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=5, n_users=N_REQUESTS, rng=rngs.get("trace"), horizon_slots=HORIZON
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=n_stations, n_services=4, rngs=rngs, anchor_points=anchors
    )
    # Time-varying processing delays (§I's uncertainty): a memorising
    # baseline goes stale, which is what the online learner exploits.
    network.delays = DriftingDelay(
        network.stations, rngs.get("delays-drift"), drift_ms=0.5
    )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    demand_model = ConstantDemandModel(requests)

    summaries = {}
    for controller in (
        OlGdController(network, requests, rngs.get("ol-gd")),
        PriorityController(network, requests, rngs.get("priority")),
        GreedyController(network, requests, rngs.get("greedy")),
    ):
        result = run_simulation(network, demand_model, controller, horizon=HORIZON)
        summaries[controller.name] = {
            "delay_ms": result.mean_delay_ms(skip_warmup=HORIZON // 4),
            "decision_ms": result.mean_decision_seconds() * 1000.0,
            "churn": int(result.cache_churn.sum()),
        }
    return summaries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[30, 60, 90],
        help="base-station counts to sweep",
    )
    args = parser.parse_args()

    header = f"{'|BS|':>6} {'algorithm':<12} {'delay ms':>10} {'decide ms':>10} {'churn':>7}"
    print(header)
    print("-" * len(header))
    for size in args.sizes:
        for name, summary in run_size(size).items():
            print(
                f"{size:>6} {name:<12} {summary['delay_ms']:>10.2f} "
                f"{summary['decision_ms']:>10.2f} {summary['churn']:>7}"
            )
        print("-" * len(header))


if __name__ == "__main__":
    main()
