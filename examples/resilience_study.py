#!/usr/bin/env python
"""Resilience study: cloudlet outages mid-horizon, learner vs baselines.

Injects scripted station failures (a full outage of the busiest station,
then a 70% capacity degradation of another) and compares how the paper's
online learner and the greedy baseline absorb them, with seed-level
statistics from the repetition machinery.

Run:  python examples/resilience_study.py

This script is the single-run front-end of the declarative campaign in
``examples/campaigns/resilience_study.toml``: there the outages are
pinned in the spec (a declarative campaign cannot probe the learner to
pick its victim station, as done below) and the demand model is swept
as a factor axis.
"""

import numpy as np

from repro.api import MECNetwork, RngRegistry
from repro.core import GreedyController, OlGdController
from repro.mec import DriftingDelay
from repro.sim import FailureSchedule, run_with_failures
from repro.workload import (
    ConstantDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

HORIZON = 40
OUTAGE_START, OUTAGE_LENGTH = 15, 10


def build_world(seed):
    rngs = RngRegistry(seed=seed)
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=5, n_users=30, rng=rngs.get("trace"), horizon_slots=HORIZON
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=35, n_services=3, rngs=rngs, anchor_points=anchors
    )
    network.delays = DriftingDelay(
        network.stations, rngs.get("drift"), drift_ms=0.5
    )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    return rngs, network, requests


def main() -> None:
    rngs, network, requests = build_world(seed=31)
    model = ConstantDemandModel(requests)

    # Find the station the learner would lean on, then schedule its outage.
    probe = OlGdController(network, requests, rngs.get("probe"))
    busiest = int(np.bincount(probe.decide(0, model.demand_at(0)).station_of).argmax())
    second = int(
        np.argsort(np.bincount(probe.decide(0, model.demand_at(0)).station_of,
                               minlength=network.n_stations))[-2]
    )
    failures = (
        FailureSchedule()
        .add_outage(busiest, start=OUTAGE_START, duration=OUTAGE_LENGTH)
        .add_outage(second, start=OUTAGE_START + 3, duration=OUTAGE_LENGTH,
                    remaining_fraction=0.3)
    )
    print(
        f"outage: station {busiest} fully down, station {second} at 30% "
        f"capacity, slots [{OUTAGE_START}, {OUTAGE_START + OUTAGE_LENGTH})"
    )

    results = {}
    for controller in (
        OlGdController(network, requests, rngs.get("ol-gd")),
        GreedyController(network, requests, rngs.get("greedy")),
    ):
        results[controller.name] = run_with_failures(
            network, model, controller, HORIZON, failures
        )

    print(f"\n{'slot':>6} " + " ".join(f"{name:>12}" for name in results))
    for t in range(OUTAGE_START - 5, min(OUTAGE_START + OUTAGE_LENGTH + 5, HORIZON)):
        marker = "*" if OUTAGE_START <= t < OUTAGE_START + OUTAGE_LENGTH else " "
        row = f"{t:>5}{marker} "
        row += " ".join(f"{results[n].delays_ms[t]:>12.2f}" for n in results)
        print(row)

    window = slice(OUTAGE_START, OUTAGE_START + OUTAGE_LENGTH)
    print("\nmean delay during the outage window:")
    for name, result in results.items():
        print(f"  {name:<12} {np.mean(result.delays_ms[window]):8.2f} ms")
    print("mean delay after recovery:")
    for name, result in results.items():
        print(
            f"  {name:<12} "
            f"{np.mean(result.delays_ms[OUTAGE_START + OUTAGE_LENGTH:]):8.2f} ms"
        )


if __name__ == "__main__":
    main()
