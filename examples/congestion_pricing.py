#!/usr/bin/env python
"""Congestion pricing: which cloudlets are the bottlenecks, and what is
one more MHz there worth?

Uses the per-slot LP's dual values (shadow prices of the Eq. 5 capacity
constraints) to rank stations by congestion price — the operator's
capacity-planning signal.  Also demonstrates burst admission control:
when a flash crowd pushes aggregate demand past the §III-E feasibility
assumption, `select_admissible` picks the feasible subset and the
deferred remainder is priced at the remote data center.

Run:  python examples/congestion_pricing.py
"""

import numpy as np

from repro.api import MECNetwork, RngRegistry
from repro.core import select_admissible
from repro.core.formulation import build_caching_model
from repro.lp import capacity_shadow_prices, solve_lp_with_duals
from repro.mec.datacenter import RemoteDataCenter, cloud_only_delay_ms
from repro.workload import (
    BurstyDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)


def main() -> None:
    rngs = RngRegistry(seed=37)
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=4, n_users=40, rng=rngs.get("trace"), horizon_slots=10
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=25, n_services=3, rngs=rngs, anchor_points=anchors
    )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    # Scarce compute: each femtocell hosts ~1.5 average requests.
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (1.5 * mean_demand))
    demand_model = BurstyDemandModel(
        requests, rngs.get("demand"), amplitude_scale=5.0
    )

    # --- congestion prices on a normal slot -----------------------------
    demands = demand_model.demand_at(0)
    theta = network.delays.true_means
    model, _ = build_caching_model(network, requests, demands, theta)
    duals = solve_lp_with_duals(model)
    prices = capacity_shadow_prices(model, duals, network.n_stations)

    print("top congestion prices (ms of average delay per extra MHz):")
    order = np.argsort(-prices)
    for i in order[:6]:
        bs = network.stations[i]
        print(
            f"  station {i:>3} ({bs.tier.value:<5}) "
            f"capacity {bs.capacity_mhz:7.0f} MHz  theta {theta[i]:5.1f} ms  "
            f"price {prices[i]:.5f}"
        )
    print(f"  ({int((prices > 1e-6).sum())} of {network.n_stations} stations congested)")

    # --- a burst beyond feasibility + admission control ------------------
    burst_slot = next(
        (
            t
            for t in range(60)
            if demand_model.demand_at(t).sum() * network.c_unit_mhz
            > 0.9 * network.total_capacity_mhz()
        ),
        None,
    )
    if burst_slot is None:
        # Force the scenario so the example always demonstrates it.
        burst_demands = demand_model.demand_at(0) * 6.0
        print("\n(synthetic over-capacity burst)")
    else:
        burst_demands = demand_model.demand_at(burst_slot)
        print(f"\nover-capacity burst at slot {burst_slot}")

    budget = 0.9 * network.total_capacity_mhz()
    decision = select_admissible(
        burst_demands, budget, network.c_unit_mhz, policy="smallest-first"
    )
    datacenter = RemoteDataCenter(rngs.get("datacenter"))
    deferred = list(decision.deferred)
    print(
        f"admitted {decision.n_admitted}/{len(requests)} requests at the edge; "
        f"{decision.n_deferred} deferred to the cloud"
    )
    if deferred:
        deferred_requests = [requests[i] for i in deferred]
        cloud_ms = cloud_only_delay_ms(
            datacenter, deferred_requests, burst_demands[deferred], slot=0
        )
        print(f"deferred requests pay the cloud delay: {cloud_ms:.1f} ms on average")


if __name__ == "__main__":
    main()
