#!/usr/bin/env python
"""Flash crowd at a VR hotspot: the paper's motivating "exception".

Scenario (§I / §III-B): "VR services of a museum may experience a bursty
amount of inference data if many people use its VR services suddenly."
We schedule a deterministic flash crowd at one hotspot mid-horizon and
watch how `OL_GAN` (Algorithm 2) absorbs it versus the AR-predicting
`OL_Reg`:

* per-slot demand of the museum hotspot (the exception is visible),
* per-slot prediction error of both controllers around the event,
* per-slot average delay.

Run:  python examples/flash_crowd_vr.py
"""

import numpy as np

from repro.api import MECNetwork, RngRegistry, run_simulation
from repro.core import OlGanController, OlRegController
from repro.workload import (
    BurstyDemandModel,
    FlashCrowdSchedule,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

HORIZON = 40
CROWD_START, CROWD_LENGTH, CROWD_MB = 20, 8, 6.0
MUSEUM = 0  # the hotspot hosting the VR exhibition


def main() -> None:
    rngs = RngRegistry(seed=11)

    trace = synthesize_nyc_wifi_trace(
        n_hotspots=4, n_users=24, rng=rngs.get("trace"), horizon_slots=HORIZON
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=40, n_services=4, rngs=rngs, anchor_points=anchors
    )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    # Size C_unit so a femtocell hosts ~2 average requests (DESIGN.md §5).
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))

    # The exception: a flash crowd at the museum between slots 20 and 28.
    crowd = FlashCrowdSchedule().add_event(
        MUSEUM, start=CROWD_START, duration=CROWD_LENGTH, amplitude_mb=CROWD_MB
    )
    demand_model = BurstyDemandModel(
        requests, rngs.get("demand"), flash_crowds=crowd, p_enter=0.02
    )
    museum_users = [r.index for r in requests if r.hotspot_index == MUSEUM]
    print(
        f"{len(museum_users)} of {len(requests)} users are at the museum; "
        f"crowd of +{CROWD_MB} MB/user in slots "
        f"[{CROWD_START}, {CROWD_START + CROWD_LENGTH})"
    )

    # Pre-train the GAN on a warm-up sample (no flash crowd in it: the
    # event is the exception the model has to react to online).
    warmup = BurstyDemandModel(requests, rngs.get("warmup")).matrix(24)

    controllers = [
        OlGanController(
            network,
            requests,
            rngs.get("ol-gan"),
            n_hotspots=4,
            warmup_history=warmup,
            window=6,
            hidden_size=12,
            pretrain_epochs=10,
            online_steps=1,
            supervised_quantile=0.7,
        ),
        OlRegController(network, requests, rngs.get("ol-reg")),
    ]
    results = {
        c.name: run_simulation(
            network, demand_model, c, horizon=HORIZON, demands_known=False
        )
        for c in controllers
    }

    print(f"\n{'slot':>5} {'museum MB':>10} " + " ".join(f"{n + ' MAE':>12}" for n in results)
          + " " + " ".join(f"{n + ' delay':>14}" for n in results))
    for t in range(CROWD_START - 4, min(CROWD_START + CROWD_LENGTH + 4, HORIZON)):
        museum_mb = float(demand_model.demand_at(t)[museum_users].sum())
        row = f"{t:>5} {museum_mb:>10.1f} "
        row += " ".join(
            f"{results[n].prediction_maes[t]:>12.3f}" for n in results
        )
        row += " " + " ".join(
            f"{results[n].delays_ms[t]:>14.2f}" for n in results
        )
        print(row)

    print("\nmean over the crowd window:")
    window = slice(CROWD_START, CROWD_START + CROWD_LENGTH)
    for name, result in results.items():
        print(
            f"  {name:<8} delay {np.mean(result.delays_ms[window]):7.2f} ms | "
            f"prediction MAE {np.nanmean(result.prediction_maes[window]):.3f} MB"
        )


if __name__ == "__main__":
    main()
