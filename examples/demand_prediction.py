#!/usr/bin/env python
"""Stand-alone demand prediction with the Info-RNN-GAN (§V).

Uses the library's GAN without any network in the loop: synthesise a
bursty hotspot workload, pre-train on a *small sample* (the paper's
emphasis), then forecast slot by slot and compare against the Eq. 27 AR
baseline and an EWMA.  Also prints the InfoGAN training losses so the
adversarial / mutual-information / supervised terms are visible.

Run:  python examples/demand_prediction.py
"""

import numpy as np

from repro.api import RngRegistry
from repro.gan import GanDemandPredictor
from repro.mec.requests import Request
from repro.prediction import ArPredictor, EwmaPredictor
from repro.workload import BurstyDemandModel, encode_request_locations

N_REQUESTS, N_HOTSPOTS = 16, 4
WARMUP_SLOTS, LIVE_SLOTS = 30, 60


def main() -> None:
    rngs = RngRegistry(seed=23)

    requests = [
        Request(
            index=i,
            service_index=0,
            basic_demand_mb=1.0 + 0.1 * (i % 3),
            hotspot_index=i % N_HOTSPOTS,
        )
        for i in range(N_REQUESTS)
    ]
    demand_model = BurstyDemandModel(requests, rngs.get("demand"))
    history = demand_model.matrix(WARMUP_SLOTS + LIVE_SLOTS)
    warmup, live = history[:WARMUP_SLOTS], history[WARMUP_SLOTS:]
    print(
        f"{N_REQUESTS} requests at {N_HOTSPOTS} hotspots; "
        f"small sample = {WARMUP_SLOTS} slots, live horizon = {LIVE_SLOTS}"
    )

    codes = encode_request_locations(requests, N_HOTSPOTS)
    gan = GanDemandPredictor(
        codes,
        rngs.get("gan"),
        window=8,
        warmup_history=warmup,
        pretrain_epochs=15,
        online_steps=1,
        supervised_quantile=0.7,
    )
    print("\nInfo-RNN-GAN pre-training (per-epoch mean losses):")
    for epoch, losses in enumerate(gan.loss_history):
        if epoch % 3 == 0:
            print(
                f"  epoch {epoch:>2}  D={losses.discriminator:6.3f}  "
                f"adv={losses.adversarial:6.3f}  "
                f"I(c;G)={losses.mutual_information:6.3f}  "
                f"sup={losses.supervised:7.3f}"
            )

    baselines = {
        "AR (Eq. 27)": ArPredictor(N_REQUESTS, order=5),
        "EWMA": EwmaPredictor(N_REQUESTS, alpha=0.4),
    }
    for predictor in baselines.values():
        for row in warmup:
            predictor.observe(row)

    errors = {name: [] for name in ["Info-RNN-GAN", *baselines]}
    for actual in live:
        errors["Info-RNN-GAN"].append(
            float(np.mean(np.abs(gan.predict_next() - actual)))
        )
        gan.observe(actual)
        for name, predictor in baselines.items():
            errors[name].append(
                float(np.mean(np.abs(predictor.predict_next() - actual)))
            )
            predictor.observe(actual)

    print("\nforecast MAE over the live horizon (MB/request/slot):")
    for name, series in sorted(errors.items(), key=lambda kv: np.mean(kv[1])):
        print(f"  {name:<14} {np.mean(series):7.3f}")


if __name__ == "__main__":
    main()
