#!/usr/bin/env python
"""Edge caching vs serving from the remote data center (the paper's premise).

The whole point of 5G-MEC service caching (§I): without it, every request
travels to a core-network data center with 50-100 ms unit delays; with it,
tasks run at base stations with 5-50 ms unit delays — *if* the controller
places services well.  This example quantifies that gap:

* cloud-only: everything processed at the remote data center;
* static edge: services cached once at the (initially) best stations and
  never moved;
* OL_GD: the paper's online learner, adapting as delays drift.

Run:  python examples/edge_vs_cloud.py
"""

import numpy as np

from repro.api import MECNetwork, RngRegistry, run_simulation
from repro.core import Assignment, OlGdController, evaluate_assignment
from repro.mec import DriftingDelay
from repro.mec.datacenter import RemoteDataCenter, cloud_only_delay_ms
from repro.workload import (
    ConstantDemandModel,
    requests_from_trace,
    synthesize_nyc_wifi_trace,
)

HORIZON = 50


def main() -> None:
    rngs = RngRegistry(seed=29)
    trace = synthesize_nyc_wifi_trace(
        n_hotspots=5, n_users=30, rng=rngs.get("trace"), horizon_slots=HORIZON
    )
    anchors = [h.location for h in trace.hotspots]
    network = MECNetwork.synthetic(
        n_stations=40, n_services=4, rngs=rngs, anchor_points=anchors
    )
    network.delays = DriftingDelay(
        network.stations, rngs.get("delays-drift"), drift_ms=1.0
    )
    requests = requests_from_trace(trace, network.services, rngs.get("trace"))
    mean_demand = float(np.mean([r.basic_demand_mb for r in requests]))
    network.c_unit_mhz = float(network.capacities_mhz.min() / (2.0 * mean_demand))
    demand_model = ConstantDemandModel(requests)
    datacenter = RemoteDataCenter(rngs.get("datacenter"))

    # --- cloud-only baseline --------------------------------------------
    cloud = np.array(
        [
            cloud_only_delay_ms(datacenter, requests, demand_model.demand_at(t), t)
            for t in range(HORIZON)
        ]
    )

    # --- static edge caching: slot-0 plan frozen forever ------------------
    planner = OlGdController(network, requests, rngs.get("static-plan"))
    frozen = planner.decide(0, demand_model.demand_at(0))
    static = np.array(
        [
            evaluate_assignment(
                frozen,
                network,
                requests,
                demand_model.demand_at(t),
                network.delays.sample(t),
            )
            for t in range(HORIZON)
        ]
    )

    # --- OL_GD: the paper's adaptive learner ------------------------------
    controller = OlGdController(network, requests, rngs.get("ol-gd"))
    adaptive = run_simulation(network, demand_model, controller, HORIZON)

    print(f"{'slot':>6} {'cloud-only':>12} {'static edge':>12} {'OL_GD':>12}")
    for t in range(0, HORIZON, 5):
        print(
            f"{t:>6} {cloud[t]:>12.2f} {static[t]:>12.2f} "
            f"{adaptive.delays_ms[t]:>12.2f}"
        )
    skip = HORIZON // 5
    print("\nsteady-state means (ms):")
    print(f"  cloud-only   {cloud[skip:].mean():8.2f}")
    print(f"  static edge  {static[skip:].mean():8.2f}")
    print(f"  OL_GD        {adaptive.mean_delay_ms(skip_warmup=skip):8.2f}")
    gain = 100.0 * (1.0 - adaptive.mean_delay_ms(skip_warmup=skip) / cloud[skip:].mean())
    print(f"\nOL_GD cuts the cloud-only delay by {gain:.0f}%")


if __name__ == "__main__":
    main()
