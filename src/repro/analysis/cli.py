"""``python -m repro.analysis`` — run the repo's static-analysis rules.

Usage::

    python -m repro.analysis                       # src tests benchmarks
    python -m repro.analysis src/repro/core        # restrict the scan
    python -m repro.analysis --format json src     # machine-readable
    python -m repro.analysis --list-rules          # rule catalogue
    python -m repro.analysis --update-baseline     # grandfather current findings
    python -m repro.analysis --no-cache            # force a full re-parse

Exit codes: 0 clean (after baseline/suppressions), 1 findings reported,
2 usage error (e.g. a named path does not exist).

Project-scope rules (STATE/MP/OBS — see docs/STATIC_ANALYSIS.md) reason
across modules, so they are only meaningful when the scan covers the
whole tree; the default targets do.  Per-module results are memoised in
``.repro-analysis-cache.json`` (content-hash keyed, import-graph
invalidated, safe to delete); ``--no-cache`` bypasses it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import (
    MISSING_JUSTIFICATION,
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    analyze_paths,
    iter_python_files,
)
from repro.analysis.rules import all_rules, rules_table

__all__ = ["build_parser", "main"]

_DEFAULT_TARGETS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based determinism / autograd-safety / obs-hygiene linter "
            "for this repository (see docs/STATIC_ANALYSIS.md)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: src tests benchmarks, "
             "skipping the ones that don't exist under the cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path(DEFAULT_BASELINE_NAME),
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE_NAME}; a missing file is empty)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline file with the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk incremental cache and re-parse everything",
    )
    return parser


def _print_rules() -> None:
    rows = rules_table()
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        print(f"{row['id']}  {row['name']:<{width}}  {row['summary']}")
        print(f"{'':<8}{'':<{width}}[{row['scope']}] paths: {row['paths']}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    if args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        targets = [Path(p) for p in _DEFAULT_TARGETS if Path(p).exists()]
        if not targets:
            print(
                "error: none of the default targets "
                f"{' '.join(_DEFAULT_TARGETS)} exist here; pass paths "
                "explicitly",
                file=sys.stderr,
            )
            return 2

    stats: Dict[str, object] = {}
    try:
        n_files = len(iter_python_files(targets))
        findings = analyze_paths(targets, cache=not args.no_cache, stats=stats)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        old = Baseline.load(args.baseline)
        new = Baseline.from_findings(findings)
        new.save(args.baseline)
        registered = frozenset(rule.rule_id for rule in all_rules()) | {
            PARSE_ERROR,
            MISSING_JUSTIFICATION,
            UNUSED_SUPPRESSION,
        }
        pruned = old.pruned_against(new, registered_rules=registered)
        print(f"wrote {len(findings)} baseline entr"
              f"{'y' if len(findings) == 1 else 'ies'} -> {args.baseline}")
        for entry in pruned:
            print(f"pruned: {entry.render()}")
        if pruned:
            total = sum(entry.count for entry in pruned)
            print(f"pruned {total} grandfathered entr"
                  f"{'y' if total == 1 else 'ies'}")
        return 0

    if not args.no_baseline:
        findings = Baseline.load(args.baseline).filter(findings)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "version": 2,
                    "checked_files": n_files,
                    "count": len(findings),
                    "findings": [finding.to_dict() for finding in findings],
                    "project": {
                        "modules": stats.get("modules", 0),
                        "import_edges": stats.get("import_edges", 0),
                        "rules": stats.get("project_rules", []),
                    },
                    "cache": stats.get("cache", {"enabled": False}),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"{len(findings)} {noun} in {n_files} files")
    return 1 if findings else 0
