"""The rule pack: this repository's invariants, encoded as AST checks.

Every rule exists because the test suite can only *spot-check* the
invariant while a static pass can enforce it at every call site.  Three of
them are direct generalisations of real bugs fixed in PRs 1–3 (see
``docs/STATIC_ANALYSIS.md`` for the full rationale and the suppression /
baseline workflow):

* PR 1 fixed commutative-XOR seed derivation in ``RngRegistry.child`` —
  the determinism rules (``DET001``–``DET005``) police how randomness is
  created and threaded.
* PR 2's churn miscount hid inside aggregate statistics — the obs-hygiene
  rule (``OBS001``) keeps telemetry keys static so snapshots stay
  deterministic and the disabled path allocation-free.
* PR 3's fused kernels rely on ``Tensor.data`` never being mutated or
  read mid-graph outside ``repro.nn`` — the autograd rules (``AG001``,
  ``AG002``) fence that contract.

Scopes
------
``PROTECTED_PACKAGES`` are the seed-deterministic subsystems: everything
whose outputs the paper's figures pin.  ``THREADED_RNG_PACKAGES`` must
*receive* ``numpy.random.Generator`` objects (threaded from
``repro.utils.seeding.RngRegistry``) and never construct their own;
``repro.mec`` / ``repro.workload`` are the sanctioned counter-based
derivation sites (``default_rng((stored_seed, slot))``) and are exempt
from ``DET005`` only.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Type

from repro.analysis.engine import Finding, ModuleContext, Rule, dotted_name

__all__ = [
    "PROTECTED_PACKAGES",
    "THREADED_RNG_PACKAGES",
    "all_rules",
    "rule_by_id",
]

#: Seed-deterministic subsystems: a wall clock or unseeded RNG anywhere in
#: these invalidates the paper's figure-level reproducibility claims.
PROTECTED_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "mec", "sim", "nn", "gan", "bandits", "workload"}
)

#: Packages (plus the CLI module) that must take Generators as parameters
#: rather than constructing their own.
THREADED_RNG_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "gan", "bandits", "nn", "sim", "cli"}
)

#: The modern, explicitly-seeded part of ``numpy.random`` — everything
#: else on that namespace is the legacy *global-state* API.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_RULE_CLASSES: List[Type[Rule]] = []


def _register(cls: Type[Rule]) -> Type[Rule]:
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in _RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """The registered rule with ``rule_id`` (raises ``KeyError`` if none)."""
    for cls in _RULE_CLASSES:
        if cls.rule_id == rule_id:
            return cls()
    raise KeyError(f"no rule with id {rule_id!r}")


def _np_random_member(node: ast.expr) -> Optional[str]:
    """``"default_rng"`` for ``np.random.default_rng`` / ``numpy.random...``."""
    name = dotted_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        return parts[2]
    return None


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #


@_register
class ModuleLevelRngRule(Rule):
    """Import-time RNG construction makes stream layout depend on import
    order — the same class of silent cross-contamination PR 1 removed
    from ``RngRegistry.child``."""

    rule_id = "DET001"
    name = "module-level-rng"
    summary = "no numpy RNG calls at module import time"
    scope = "src/repro/**"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree.body)

    def _scan(
        self, ctx: ModuleContext, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Bodies run at call time, not import time — but decorators
                # and default expressions still evaluate on import.
                if not isinstance(node, ast.Lambda):
                    stack.extend(node.decorator_list)
                stack.extend(node.args.defaults)
                stack.extend(d for d in node.args.kw_defaults if d is not None)
                continue
            if isinstance(node, ast.Call):
                member = _np_random_member(node.func)
                if member is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{member} called at module scope; "
                        "construct RNG state inside functions and thread "
                        "it from repro.utils.seeding.RngRegistry",
                    )
            stack.extend(ast.iter_child_nodes(node))


@_register
class LegacyGlobalRngRule(Rule):
    """The legacy ``np.random.*`` API draws from hidden global state: any
    component using it reshuffles every other component's stream."""

    rule_id = "DET002"
    name = "legacy-global-rng"
    summary = "no legacy global-state numpy.random API"
    scope = "all scanned files"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            member = _np_random_member(node)
            if member is not None and member not in _ALLOWED_NP_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{member} uses the hidden global generator; "
                    "draw from an explicit np.random.Generator instead",
                )


@_register
class StdlibRandomRule(Rule):
    """``random`` shares one process-global Mersenne Twister and is not
    covered by the RngRegistry's named-stream isolation."""

    rule_id = "DET003"
    name = "stdlib-random"
    summary = "no stdlib random module in seed-deterministic packages"
    scope = "src/repro/{core,mec,sim,nn,gan,bandits,workload}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(PROTECTED_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random is process-global state; use a "
                            "numpy Generator from the RngRegistry",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib random is process-global state; use a "
                        "numpy Generator from the RngRegistry",
                    )


@_register
class WallClockRule(Rule):
    """Wall-clock reads inside the simulated system leak real time into
    seed-deterministic outputs (``perf_counter`` for *measuring* runtime
    panels is fine — it never feeds simulation state)."""

    rule_id = "DET004"
    name = "wall-clock-entropy"
    summary = "no time.time()/datetime.now() in seed-deterministic packages"
    scope = "src/repro/{core,mec,sim,nn,gan,bandits,workload}"

    _CLOCK_TAILS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(PROTECTED_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            is_time = name in ("time.time", "time.time_ns")
            is_datetime = parts[-1] in self._CLOCK_TAILS and any(
                part in ("datetime", "date") for part in parts[:-1]
            )
            if is_time or is_datetime:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock inside a "
                    "seed-deterministic package; thread simulated time or "
                    "keep timing in repro.utils.timer/repro.obs",
                )


@_register
class RngConstructionRule(Rule):
    """Controllers, bandits, the NN stack, the engine and the CLI must
    *receive* Generators threaded from the RngRegistry.  Constructing one
    locally bypasses the named-stream isolation that keeps repetitions
    independent (the PR 1 child-derivation bug was exactly such a bypass)."""

    rule_id = "DET005"
    name = "rng-construction"
    summary = "no default_rng/SeedSequence construction outside sanctioned sites"
    scope = "src/repro/{core,gan,bandits,nn,sim} + repro/cli.py"

    _CONSTRUCTORS = frozenset({"default_rng", "SeedSequence"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(THREADED_RNG_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _np_random_member(node.func)
            if member is None and isinstance(node.func, ast.Name):
                if node.func.id in self._CONSTRUCTORS:
                    member = node.func.id
            if member in self._CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{member} constructed in a package that must "
                    "thread Generators; get a named stream from "
                    "repro.utils.seeding.RngRegistry instead",
                )


# --------------------------------------------------------------------- #
# Autograd safety
# --------------------------------------------------------------------- #


def _data_attribute_in_target(target: ast.expr) -> Optional[ast.Attribute]:
    """The ``.data`` attribute node buried in an assignment target, if any.

    Catches ``x.data = v``, ``x.data[i] = v``, ``x.data[i][j] = v`` and
    ``x.data.flat[i] = v`` — all writes that reach the tensor's buffer.
    """
    current: ast.expr = target
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if isinstance(current, ast.Attribute) and current.attr == "data":
            return current
        current = current.value
    return None


@_register
class TensorDataMutationRule(Rule):
    """In-place writes to ``Tensor.data`` outside ``repro.nn`` corrupt the
    recorded graph: backward replays stale values.  The fused kernels
    (PR 3) are bit-identical only because nothing mutates buffers behind
    the tape's back."""

    rule_id = "AG001"
    name = "tensor-data-mutation"
    summary = "no .data mutation outside repro.nn / no_grad()"
    scope = "src/repro/** except repro/nn/**"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and ctx.repro_subpackage != "nn"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for element in _flatten_targets(target):
                    attribute = _data_attribute_in_target(element)
                    if attribute is not None and not ctx.in_no_grad(node):
                        yield self.finding(
                            ctx,
                            attribute,
                            ".data mutated outside repro.nn and outside "
                            "no_grad(); the autograd tape would replay "
                            "stale values on backward",
                        )


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


@_register
class TensorDataReadRule(Rule):
    """Reading ``.data`` mid-graph silently detaches the value from
    autograd — gradients stop flowing with no error.  Outside ``repro.nn``
    raw buffers may only be read under ``no_grad()`` (metadata like
    ``.data.dtype`` / ``.data.shape`` is always safe)."""

    rule_id = "AG002"
    name = "tensor-data-read"
    summary = "no .data reads outside repro.nn unless under no_grad()"
    scope = "src/repro/** except repro/nn/**"

    _METADATA = frozenset({"dtype", "shape", "ndim", "size"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and ctx.repro_subpackage != "nn"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or node.attr != "data":
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # stores are AG001's concern
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Attribute)
                and parent.attr in self._METADATA
            ):
                continue
            if ctx.in_no_grad(node):
                continue
            yield self.finding(
                ctx,
                node,
                ".data read outside repro.nn detaches the value from "
                "autograd; wrap the read in no_grad() (or suppress with a "
                "justification if this is not a Tensor)",
            )


# --------------------------------------------------------------------- #
# Obs hygiene
# --------------------------------------------------------------------- #


@_register
class ObsLiteralNameRule(Rule):
    """Metric/span names must be string literals.  A constructed name
    (f-string, ``%``, ``.format``, concatenation, variable) allocates on
    every call even when telemetry is disabled — breaking the measured
    zero-cost-when-off contract — and risks unbounded, run-dependent key
    sets that defeat snapshot merging."""

    rule_id = "OBS001"
    name = "obs-literal-name"
    summary = "obs.span/inc/observe/gauge names must be string literals"
    scope = "all scanned files"

    _HELPERS = frozenset({"span", "inc", "observe", "gauge"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        bare_helpers = self._bare_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            helper = self._helper_name(node.func, bare_helpers)
            if helper is None or not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                continue
            yield self.finding(
                ctx,
                name_arg,
                f"obs.{helper} name must be a string literal so the "
                "disabled path stays allocation-free and metric keys stay "
                f"deterministic; got {type(name_arg).__name__}",
            )

    def _helper_name(
        self, func: ast.expr, bare_helpers: FrozenSet[str]
    ) -> Optional[str]:
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._HELPERS
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in bare_helpers:
            return func.id
        return None

    def _bare_imports(self, ctx: ModuleContext) -> FrozenSet[str]:
        """Helper names imported directly via ``from repro.obs import ...``."""
        names = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "repro.obs",
                "repro.obs.registry",
            ):
                for alias in node.names:
                    if alias.name in self._HELPERS:
                        names.add(alias.asname or alias.name)
        return frozenset(names)


# --------------------------------------------------------------------- #
# API hygiene
# --------------------------------------------------------------------- #


@_register
class MutableDefaultRule(Rule):
    """A mutable default is created once at def-time and shared by every
    call — state leaks across invocations (and across test cases)."""

    rule_id = "API001"
    name = "mutable-default"
    summary = "no mutable default arguments"
    scope = "all scanned files"

    _MUTABLE_CALLS = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
            "defaultdict",
            "deque",
            "OrderedDict",
            "Counter",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in self._MUTABLE_CALLS
        return False


@_register
class PublicAnnotationRule(Rule):
    """The controller/engine layer is the library's contract surface; a
    missing annotation there is an undocumented degree of freedom (and
    what let the stale-capacity LP bug of PR 1 hide behind an untyped
    ``b_ub`` hand-off)."""

    rule_id = "API002"
    name = "public-annotations"
    summary = "public repro.core/repro.sim functions need full annotations"
    scope = "src/repro/{core,sim}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages({"core", "sim"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(ctx, sub, is_method=True)

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        is_method: bool,
    ) -> Iterator[Finding]:
        if node.name.startswith("_"):
            return  # private helpers and dunders are out of scope
        missing: List[str] = []
        args = node.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if is_method and index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name!r} is missing annotations "
                f"for: {', '.join(missing)}",
            )


@_register
class KeywordOnlyFlagsRule(Rule):
    """Boolean and None-default parameters are flags: at a positional call
    site (``run_simulation(n, m, c, 100, True, False)``) nothing says
    which flag is which, and inserting a new parameter silently reshuffles
    every caller's meaning.  Once a signature accumulates two or more of
    them, they must sit behind ``*`` — this is the contract the
    checkpoint/resume API relies on (``demands_known``, ``resume``,
    ``compute_optimal``... are only safe to evolve as keywords)."""

    rule_id = "API003"
    name = "keyword-only-flags"
    summary = (
        "public repro.core/repro.sim functions with >=2 bool/None-default "
        "parameters must declare them keyword-only"
    )
    scope = "src/repro/{core,sim}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages({"core", "sim"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    yield from self._check_function(ctx, stmt)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if sub.name == "__init__" or not sub.name.startswith("_"):
                            yield from self._check_function(ctx, sub)

    @staticmethod
    def _is_flag_default(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, bool)
        )

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        args = node.args
        # Positional parameters carrying a bool/None default: the defaults
        # list right-aligns against posonlyargs + args.
        positional = args.posonlyargs + args.args
        defaulted = positional[len(positional) - len(args.defaults):]
        positional_flags = [
            arg.arg
            for arg, default in zip(defaulted, args.defaults)
            if self._is_flag_default(default)
        ]
        keyword_flags = [
            arg.arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None and self._is_flag_default(default)
        ]
        if len(positional_flags) + len(keyword_flags) < 2:
            return
        if positional_flags:
            yield self.finding(
                ctx,
                node,
                f"{node.name!r} has {len(positional_flags) + len(keyword_flags)}"
                " bool/None-default parameters but "
                f"{', '.join(repr(a) for a in positional_flags)} "
                "can still be passed positionally; move them behind '*'",
            )


def rules_table() -> List[Dict[str, str]]:
    """Id/name/summary/scope rows for ``--list-rules`` and the docs."""
    return [
        {
            "id": cls.rule_id,
            "name": cls.name,
            "summary": cls.summary,
            "scope": cls.scope,
        }
        for cls in _RULE_CLASSES
    ]
