"""The rule pack: this repository's invariants, encoded as AST checks.

Every rule exists because the test suite can only *spot-check* the
invariant while a static pass can enforce it at every call site.  Three of
them are direct generalisations of real bugs fixed in PRs 1–3 (see
``docs/STATIC_ANALYSIS.md`` for the full rationale and the suppression /
baseline workflow):

* PR 1 fixed commutative-XOR seed derivation in ``RngRegistry.child`` —
  the determinism rules (``DET001``–``DET005``) police how randomness is
  created and threaded.
* PR 2's churn miscount hid inside aggregate statistics — the obs-hygiene
  rule (``OBS001``) keeps telemetry keys static so snapshots stay
  deterministic and the disabled path allocation-free.
* PR 3's fused kernels rely on ``Tensor.data`` never being mutated or
  read mid-graph outside ``repro.nn`` — the autograd rules (``AG001``,
  ``AG002``) fence that contract.

Scopes
------
``PROTECTED_PACKAGES`` are the seed-deterministic subsystems: everything
whose outputs the paper's figures pin.  ``THREADED_RNG_PACKAGES`` must
*receive* ``numpy.random.Generator`` objects (threaded from
``repro.utils.seeding.RngRegistry``) and never construct their own;
``repro.mec`` / ``repro.workload`` are the sanctioned counter-based
derivation sites (``default_rng((stored_seed, slot))``) and are exempt
from ``DET005`` only.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.engine import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    dotted_name,
)
from repro.analysis.project import (
    OBS_DECLARATION_VARS,
    OBS_HELPER_KINDS,
    OBS_NAMES_MODULE,
    ModuleSummary,
    ProjectContext,
)

__all__ = [
    "HOT_PATH_MODULES",
    "PROTECTED_PACKAGES",
    "STATE_PACKAGES",
    "THREADED_RNG_PACKAGES",
    "all_rules",
    "rule_by_id",
    "rules_table",
]

#: Seed-deterministic subsystems: a wall clock or unseeded RNG anywhere in
#: these invalidates the paper's figure-level reproducibility claims.
PROTECTED_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "mec", "sim", "nn", "gan", "bandits", "workload"}
)

#: Packages (plus the CLI module) that must take Generators as parameters
#: rather than constructing their own.
THREADED_RNG_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "gan", "bandits", "nn", "sim", "cli"}
)

#: The modern, explicitly-seeded part of ``numpy.random`` — everything
#: else on that namespace is the legacy *global-state* API.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_RULE_CLASSES: List[Type[Rule]] = []


def _register(cls: Type[Rule]) -> Type[Rule]:
    _RULE_CLASSES.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registration order."""
    return [cls() for cls in _RULE_CLASSES]


def rule_by_id(rule_id: str) -> Rule:
    """The registered rule with ``rule_id`` (raises ``KeyError`` if none)."""
    for cls in _RULE_CLASSES:
        if cls.rule_id == rule_id:
            return cls()
    raise KeyError(f"no rule with id {rule_id!r}")


def _np_random_member(node: ast.expr) -> Optional[str]:
    """``"default_rng"`` for ``np.random.default_rng`` / ``numpy.random...``."""
    name = dotted_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 3 and parts[0] in ("np", "numpy") and parts[1] == "random":
        return parts[2]
    return None


# --------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------- #


@_register
class ModuleLevelRngRule(Rule):
    """Import-time RNG construction makes stream layout depend on import
    order — the same class of silent cross-contamination PR 1 removed
    from ``RngRegistry.child``."""

    rule_id = "DET001"
    name = "module-level-rng"
    summary = "no numpy RNG calls at module import time"
    paths = "src/repro/**"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro()

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._scan(ctx, ctx.tree.body)

    def _scan(
        self, ctx: ModuleContext, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Bodies run at call time, not import time — but decorators
                # and default expressions still evaluate on import.
                if not isinstance(node, ast.Lambda):
                    stack.extend(node.decorator_list)
                stack.extend(node.args.defaults)
                stack.extend(d for d in node.args.kw_defaults if d is not None)
                continue
            if isinstance(node, ast.Call):
                member = _np_random_member(node.func)
                if member is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"np.random.{member} called at module scope; "
                        "construct RNG state inside functions and thread "
                        "it from repro.utils.seeding.RngRegistry",
                    )
            stack.extend(ast.iter_child_nodes(node))


@_register
class LegacyGlobalRngRule(Rule):
    """The legacy ``np.random.*`` API draws from hidden global state: any
    component using it reshuffles every other component's stream."""

    rule_id = "DET002"
    name = "legacy-global-rng"
    summary = "no legacy global-state numpy.random API"
    paths = "all scanned files"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            member = _np_random_member(node)
            if member is not None and member not in _ALLOWED_NP_RANDOM:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{member} uses the hidden global generator; "
                    "draw from an explicit np.random.Generator instead",
                )


@_register
class StdlibRandomRule(Rule):
    """``random`` shares one process-global Mersenne Twister and is not
    covered by the RngRegistry's named-stream isolation."""

    rule_id = "DET003"
    name = "stdlib-random"
    summary = "no stdlib random module in seed-deterministic packages"
    paths = "src/repro/{core,mec,sim,nn,gan,bandits,workload}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(PROTECTED_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib random is process-global state; use a "
                            "numpy Generator from the RngRegistry",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib random is process-global state; use a "
                        "numpy Generator from the RngRegistry",
                    )


@_register
class WallClockRule(Rule):
    """Wall-clock reads inside the simulated system leak real time into
    seed-deterministic outputs (``perf_counter`` for *measuring* runtime
    panels is fine — it never feeds simulation state)."""

    rule_id = "DET004"
    name = "wall-clock-entropy"
    summary = "no time.time()/datetime.now() in seed-deterministic packages"
    paths = "src/repro/{core,mec,sim,nn,gan,bandits,workload}"

    _CLOCK_TAILS = frozenset({"now", "utcnow", "today"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(PROTECTED_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            is_time = name in ("time.time", "time.time_ns")
            is_datetime = parts[-1] in self._CLOCK_TAILS and any(
                part in ("datetime", "date") for part in parts[:-1]
            )
            if is_time or is_datetime:
                yield self.finding(
                    ctx,
                    node,
                    f"{name}() reads the wall clock inside a "
                    "seed-deterministic package; thread simulated time or "
                    "keep timing in repro.utils.timer/repro.obs",
                )


@_register
class RngConstructionRule(Rule):
    """Controllers, bandits, the NN stack, the engine and the CLI must
    *receive* Generators threaded from the RngRegistry.  Constructing one
    locally bypasses the named-stream isolation that keeps repetitions
    independent (the PR 1 child-derivation bug was exactly such a bypass)."""

    rule_id = "DET005"
    name = "rng-construction"
    summary = "no default_rng/SeedSequence construction outside sanctioned sites"
    paths = "src/repro/{core,gan,bandits,nn,sim} + repro/cli.py"

    _CONSTRUCTORS = frozenset({"default_rng", "SeedSequence"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages(THREADED_RNG_PACKAGES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            member = _np_random_member(node.func)
            if member is None and isinstance(node.func, ast.Name):
                if node.func.id in self._CONSTRUCTORS:
                    member = node.func.id
            if member in self._CONSTRUCTORS:
                yield self.finding(
                    ctx,
                    node,
                    f"np.random.{member} constructed in a package that must "
                    "thread Generators; get a named stream from "
                    "repro.utils.seeding.RngRegistry instead",
                )


# --------------------------------------------------------------------- #
# Autograd safety
# --------------------------------------------------------------------- #


def _data_attribute_in_target(target: ast.expr) -> Optional[ast.Attribute]:
    """The ``.data`` attribute node buried in an assignment target, if any.

    Catches ``x.data = v``, ``x.data[i] = v``, ``x.data[i][j] = v`` and
    ``x.data.flat[i] = v`` — all writes that reach the tensor's buffer.
    """
    current: ast.expr = target
    while isinstance(current, (ast.Subscript, ast.Attribute)):
        if isinstance(current, ast.Attribute) and current.attr == "data":
            return current
        current = current.value
    return None


@_register
class TensorDataMutationRule(Rule):
    """In-place writes to ``Tensor.data`` outside ``repro.nn`` corrupt the
    recorded graph: backward replays stale values.  The fused kernels
    (PR 3) are bit-identical only because nothing mutates buffers behind
    the tape's back."""

    rule_id = "AG001"
    name = "tensor-data-mutation"
    summary = "no .data mutation outside repro.nn / no_grad()"
    paths = "src/repro/** except repro/nn/**"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and ctx.repro_subpackage != "nn"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                for element in _flatten_targets(target):
                    attribute = _data_attribute_in_target(element)
                    if attribute is not None and not ctx.in_no_grad(node):
                        yield self.finding(
                            ctx,
                            attribute,
                            ".data mutated outside repro.nn and outside "
                            "no_grad(); the autograd tape would replay "
                            "stale values on backward",
                        )


def _flatten_targets(target: ast.expr) -> Iterator[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten_targets(target.value)
    else:
        yield target


@_register
class TensorDataReadRule(Rule):
    """Reading ``.data`` mid-graph silently detaches the value from
    autograd — gradients stop flowing with no error.  Outside ``repro.nn``
    raw buffers may only be read under ``no_grad()`` (metadata like
    ``.data.dtype`` / ``.data.shape`` is always safe)."""

    rule_id = "AG002"
    name = "tensor-data-read"
    summary = "no .data reads outside repro.nn unless under no_grad()"
    paths = "src/repro/** except repro/nn/**"

    _METADATA = frozenset({"dtype", "shape", "ndim", "size"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_repro() and ctx.repro_subpackage != "nn"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute) or node.attr != "data":
                continue
            if not isinstance(node.ctx, ast.Load):
                continue  # stores are AG001's concern
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Attribute)
                and parent.attr in self._METADATA
            ):
                continue
            if ctx.in_no_grad(node):
                continue
            yield self.finding(
                ctx,
                node,
                ".data read outside repro.nn detaches the value from "
                "autograd; wrap the read in no_grad() (or suppress with a "
                "justification if this is not a Tensor)",
            )


# --------------------------------------------------------------------- #
# Obs hygiene
# --------------------------------------------------------------------- #


@_register
class ObsLiteralNameRule(Rule):
    """Metric/span names must be string literals.  A constructed name
    (f-string, ``%``, ``.format``, concatenation, variable) allocates on
    every call even when telemetry is disabled — breaking the measured
    zero-cost-when-off contract — and risks unbounded, run-dependent key
    sets that defeat snapshot merging."""

    rule_id = "OBS001"
    name = "obs-literal-name"
    summary = "obs.span/inc/observe/gauge names must be string literals"
    paths = "all scanned files"

    _HELPERS = frozenset({"span", "inc", "observe", "gauge"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        bare_helpers = self._bare_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            helper = self._helper_name(node.func, bare_helpers)
            if helper is None or not node.args:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                continue
            yield self.finding(
                ctx,
                name_arg,
                f"obs.{helper} name must be a string literal so the "
                "disabled path stays allocation-free and metric keys stay "
                f"deterministic; got {type(name_arg).__name__}",
            )

    def _helper_name(
        self, func: ast.expr, bare_helpers: FrozenSet[str]
    ) -> Optional[str]:
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._HELPERS
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
        ):
            return func.attr
        if isinstance(func, ast.Name) and func.id in bare_helpers:
            return func.id
        return None

    def _bare_imports(self, ctx: ModuleContext) -> FrozenSet[str]:
        """Helper names imported directly via ``from repro.obs import ...``."""
        names = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in (
                "repro.obs",
                "repro.obs.registry",
            ):
                for alias in node.names:
                    if alias.name in self._HELPERS:
                        names.add(alias.asname or alias.name)
        return frozenset(names)


# --------------------------------------------------------------------- #
# API hygiene
# --------------------------------------------------------------------- #


@_register
class MutableDefaultRule(Rule):
    """A mutable default is created once at def-time and shared by every
    call — state leaks across invocations (and across test cases)."""

    rule_id = "API001"
    name = "mutable-default"
    summary = "no mutable default arguments"
    paths = "all scanned files"

    _MUTABLE_CALLS = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.defaultdict",
            "collections.deque",
            "collections.OrderedDict",
            "collections.Counter",
            "defaultdict",
            "deque",
            "OrderedDict",
            "Counter",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and construct inside the function",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in self._MUTABLE_CALLS
        return False


@_register
class PublicAnnotationRule(Rule):
    """The controller/engine layer is the library's contract surface; a
    missing annotation there is an undocumented degree of freedom (and
    what let the stale-capacity LP bug of PR 1 hide behind an untyped
    ``b_ub`` hand-off)."""

    rule_id = "API002"
    name = "public-annotations"
    summary = (
        "public repro.core/repro.sim/repro.serve/repro.api functions need "
        "full annotations"
    )
    paths = "src/repro/{core,sim,serve,api.py}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages({"core", "sim", "serve", "api"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield from self._check_function(ctx, sub, is_method=True)

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        is_method: bool,
    ) -> Iterator[Finding]:
        if node.name.startswith("_"):
            return  # private helpers and dunders are out of scope
        missing: List[str] = []
        args = node.args
        positional = args.posonlyargs + args.args
        for index, arg in enumerate(positional):
            if is_method and index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if node.returns is None:
            missing.append("return")
        if missing:
            yield self.finding(
                ctx,
                node,
                f"public function {node.name!r} is missing annotations "
                f"for: {', '.join(missing)}",
            )


@_register
class KeywordOnlyFlagsRule(Rule):
    """Boolean and None-default parameters are flags: at a positional call
    site (``run_simulation(n, m, c, 100, True, False)``) nothing says
    which flag is which, and inserting a new parameter silently reshuffles
    every caller's meaning.  Once a signature accumulates two or more of
    them, they must sit behind ``*`` — this is the contract the
    checkpoint/resume API relies on (``demands_known``, ``resume``,
    ``compute_optimal``... are only safe to evolve as keywords)."""

    rule_id = "API003"
    name = "keyword-only-flags"
    summary = (
        "public repro.core/repro.sim/repro.serve/repro.api functions with "
        ">=2 bool/None-default parameters must declare them keyword-only"
    )
    paths = "src/repro/{core,sim,serve,api.py}"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_packages({"core", "sim", "serve", "api"})

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not stmt.name.startswith("_"):
                    yield from self._check_function(ctx, stmt)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if sub.name == "__init__" or not sub.name.startswith("_"):
                            yield from self._check_function(ctx, sub)

    @staticmethod
    def _is_flag_default(node: ast.expr) -> bool:
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, bool)
        )

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        args = node.args
        # Positional parameters carrying a bool/None default: the defaults
        # list right-aligns against posonlyargs + args.
        positional = args.posonlyargs + args.args
        defaulted = positional[len(positional) - len(args.defaults):]
        positional_flags = [
            arg.arg
            for arg, default in zip(defaulted, args.defaults)
            if self._is_flag_default(default)
        ]
        keyword_flags = [
            arg.arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is not None and self._is_flag_default(default)
        ]
        if len(positional_flags) + len(keyword_flags) < 2:
            return
        if positional_flags:
            yield self.finding(
                ctx,
                node,
                f"{node.name!r} has {len(positional_flags) + len(keyword_flags)}"
                " bool/None-default parameters but "
                f"{', '.join(repr(a) for a in positional_flags)} "
                "can still be passed positionally; move them behind '*'",
            )


# --------------------------------------------------------------------- #
# STATE pack: checkpoint coverage (project scope)
# --------------------------------------------------------------------- #

#: Packages whose classes participate in checkpoint/resume (PR 5): any
#: mutable state here that the state_dict pair misses silently breaks
#: bit-identical resume — the exact class of bug PR 6 fixed by hand.
STATE_PACKAGES: FrozenSet[str] = frozenset(
    {"core", "gan", "prediction", "bandits", "workload"}
)


def _in_state_scope(summary: ModuleSummary) -> bool:
    return (
        len(summary.module) >= 2
        and summary.module[0] == "repro"
        and summary.module[1] in STATE_PACKAGES
    )


@_register
class CheckpointPairRule(ProjectRule):
    """A class that mutates instance attributes after construction holds
    run state; if it lives in a checkpointed package it must offer the
    ``state_dict`` / ``load_state_dict`` pair (own or inherited via a
    project-resolvable base) or resume silently drops that state."""

    rule_id = "STATE001"
    name = "checkpoint-pair"
    summary = (
        "mutable classes in checkpointed packages need both state_dict "
        "and load_state_dict"
    )
    paths = "src/repro/{core,gan,prediction,bandits,workload}"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name, summary in sorted(project.modules.items()):
            if not _in_state_scope(summary):
                continue
            for cls in summary.classes.values():
                if not cls.mutated_attrs:
                    continue
                has_state = project.class_provides(module_name, cls, "state_dict")
                has_load = project.class_provides(
                    module_name, cls, "load_state_dict"
                )
                if has_state and has_load:
                    continue
                missing = [
                    method
                    for method, present in (
                        ("state_dict", has_state),
                        ("load_state_dict", has_load),
                    )
                    if not present
                ]
                attrs = ", ".join(cls.mutated_attrs[:4])
                yield self.project_finding(
                    summary.path,
                    cls.site,
                    f"class {cls.name!r} mutates instance state ({attrs}) "
                    f"but provides no {' / '.join(missing)}; checkpoint "
                    "resume would silently drop that state",
                )


@_register
class CheckpointKeysRule(ProjectRule):
    """``load_state_dict`` must restore exactly the literal keys
    ``state_dict`` writes.  A key written but never restored is lost on
    resume; a key restored but never written raises (or silently
    defaults) on every real checkpoint.  Dynamically-keyed pairs are
    skipped — the rule only reasons about literal key sets."""

    rule_id = "STATE002"
    name = "checkpoint-keys"
    summary = "state_dict / load_state_dict literal key sets must match"
    paths = "src/repro/{core,gan,prediction,bandits,workload}"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for _, summary in sorted(project.modules.items()):
            if not _in_state_scope(summary):
                continue
            for cls in summary.classes.values():
                if cls.state_keys is None or cls.load_keys is None:
                    continue  # the pair rule's concern, not ours
                if cls.state_dynamic or cls.load_dynamic:
                    continue
                written = set(cls.state_keys)
                restored = set(cls.load_keys)
                if written == restored:
                    continue
                problems: List[str] = []
                lost = sorted(written - restored)
                if lost:
                    problems.append(
                        "written but never restored: " + ", ".join(lost)
                    )
                phantom = sorted(restored - written)
                if phantom:
                    problems.append(
                        "restored but never written: " + ", ".join(phantom)
                    )
                site = cls.load_site or cls.state_site or cls.site
                yield self.project_finding(
                    summary.path,
                    site,
                    f"{cls.name}.state_dict/load_state_dict key sets "
                    f"disagree ({'; '.join(problems)}); resume would not "
                    "round-trip this class",
                )


# --------------------------------------------------------------------- #
# MP pack: worker-pool safety (project scope)
# --------------------------------------------------------------------- #


@_register
class PoolCallableRule(ProjectRule):
    """Callables crossing the pool boundary are pickled by reference:
    lambdas and nested functions fail outright under spawn, and bound
    methods drag their whole instance through pickle.  The repo contract
    (PR 1/PR 8) is module-level, closure-free worker entry points."""

    rule_id = "MP001"
    name = "pool-callable"
    summary = "pool.submit targets must be module-level, closure-free functions"
    paths = "all scanned files"

    _MESSAGES = {
        "lambda": (
            "a lambda submitted to a worker pool cannot be pickled under "
            "spawn; hoist it to a module-level function"
        ),
        "nested": (
            "nested function {name!r} submitted to a worker pool closes "
            "over its defining frame; hoist it to module level"
        ),
        "self": (
            "bound method {name!r} submitted to a worker pool pickles the "
            "whole instance; use a module-level function taking explicit "
            "arguments"
        ),
    }

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for _, summary in sorted(project.modules.items()):
            for site in summary.submit_sites:
                template = self._MESSAGES.get(site.callable_kind)
                if template is None:
                    continue
                yield self.project_finding(
                    summary.path,
                    site.site,
                    template.format(name=site.callable_name),
                )


@_register
class WorkerGlobalWriteRule(ProjectRule):
    """Writes to module-global mutable state from functions that run
    inside pool workers mutate the *worker's* copy: the parent never sees
    it and results start depending on which worker ran what.  Reachability
    is the transitive closure of submitted entry points (plus pool
    initializers) over the project call index."""

    rule_id = "MP002"
    name = "worker-global-write"
    summary = "no module-global mutable state written from worker-invoked functions"
    paths = "all scanned files"

    _VIA = {
        "assign": "rebinds",
        "subscript": "writes into",
        "attribute": "mutates an attribute of",
    }

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name, fn_name in sorted(project.worker_reachable_functions()):
            summary = project.modules.get(module_name)
            fn = summary.functions.get(fn_name) if summary else None
            if summary is None or fn is None:
                continue
            for write in fn.global_writes:
                if (
                    write.via != "assign"
                    and write.target not in summary.mutable_globals
                ):
                    continue
                if write.via.startswith("method:"):
                    action = f"calls .{write.via.split(':', 1)[1]}() on"
                else:
                    action = self._VIA.get(write.via, "writes")
                yield self.project_finding(
                    summary.path,
                    write.site,
                    f"{fn_name!r} runs inside pool workers and {action} "
                    f"module global {write.target!r}; the mutation stays in "
                    "one worker process and diverges from the parent",
                )


@_register
class PoolGeneratorRule(ProjectRule):
    """A ``numpy.random.Generator`` must never cross the pool boundary:
    after fork (or pickling) parent and worker continue the *same* bit
    stream, which is exactly the cross-contamination the RngRegistry's
    named streams exist to prevent.  Pass an integer seed and construct
    the Generator inside the worker."""

    rule_id = "MP003"
    name = "pool-generator"
    summary = "no numpy Generator objects across the process-pool boundary"
    paths = "all scanned files"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for module_name, summary in sorted(project.modules.items()):
            for site in summary.submit_sites:
                if site.generator_args:
                    streams = ", ".join(site.generator_args)
                    yield self.project_finding(
                        summary.path,
                        site.site,
                        f"Generator state ({streams}) passed through "
                        "pool.submit; parent and worker would continue the "
                        "same bit stream — pass an integer seed and build "
                        "the Generator inside the worker",
                    )
                    continue
                if site.callable_kind not in ("name", "attribute"):
                    continue
                if not site.callable_name:
                    continue
                resolved = project.resolve(module_name, site.callable_name)
                if resolved is None or resolved[2] != "function":
                    continue
                target = project.modules[resolved[0]].functions.get(resolved[1])
                if target is None or not target.generator_params:
                    continue
                params = ", ".join(target.generator_params)
                yield self.project_finding(
                    summary.path,
                    site.site,
                    f"{site.callable_name!r} declares Generator parameter(s) "
                    f"({params}) and is submitted to a worker pool; pass an "
                    "integer seed across the boundary instead",
                )


# --------------------------------------------------------------------- #
# OBS pack: project-wide metric-name consistency (project scope)
# --------------------------------------------------------------------- #


def _declaration_var(kind: str) -> str:
    for var, var_kind in OBS_DECLARATION_VARS.items():
        if var_kind == kind:
            return var
    return kind  # pragma: no cover - kinds and vars are defined together


@_register
class UndeclaredMetricRule(ProjectRule):
    """Every metric/span name the library emits must appear in the
    central catalogue (``repro/obs/names.py``).  Without this, a typo'd
    name silently creates a brand-new series and every dashboard keeps
    reading the stale one.  The rule is skipped when the catalogue module
    is not part of the scan (partial scans would otherwise over-report)."""

    rule_id = "OBS002"
    name = "undeclared-metric"
    summary = "obs names used in src/repro must be declared in repro.obs.names"
    paths = "src/repro/** against src/repro/obs/names.py"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.has_obs_names_module():
            return
        declared = project.obs_declarations()
        for _, summary in sorted(project.modules.items()):
            if not summary.module or summary.module[0] != "repro":
                continue
            if summary.module == OBS_NAMES_MODULE:
                continue
            for use in summary.obs_uses:
                kind = OBS_HELPER_KINDS[use.helper]
                if use.name in declared[kind]:
                    continue
                yield self.project_finding(
                    summary.path,
                    use.site,
                    f"obs.{use.helper}({use.name!r}) is not declared in "
                    f"repro/obs/names.py:{_declaration_var(kind)}; a typo "
                    "here would silently create a new series",
                )


@_register
class UnusedMetricRule(ProjectRule):
    """The reverse direction: a name declared in the catalogue that no
    scanned module emits is dead weight — usually a renamed metric whose
    declaration was left behind, which is exactly how dashboards end up
    watching series that stopped updating."""

    rule_id = "OBS003"
    name = "unused-metric"
    summary = "names declared in repro.obs.names must be emitted somewhere"
    paths = "src/repro/obs/names.py against all scanned files"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        if not project.has_obs_names_module():
            return
        used: Dict[str, set] = {kind: set() for kind in OBS_HELPER_KINDS.values()}
        for summary in project.modules.values():
            for use in summary.obs_uses:
                used[OBS_HELPER_KINDS[use.helper]].add(use.name)
        names_summary = project.modules[".".join(OBS_NAMES_MODULE)]
        for declaration in names_summary.obs_declarations:
            if declaration.name in used[declaration.kind]:
                continue
            yield self.project_finding(
                names_summary.path,
                declaration.site,
                f"{declaration.kind} {declaration.name!r} is declared in the "
                "catalogue but never emitted by any scanned module; drop it "
                "or wire the call site",
            )


# --------------------------------------------------------------------- #
# DTYPE pack: the float32 hot path (module scope)
# --------------------------------------------------------------------- #

#: The modules on the opt-in float32 hot path (PR 3 kernels, PR 6 slot
#: loop): one dtype-less constructor here silently upcasts every
#: downstream array back to float64.
HOT_PATH_MODULES: FrozenSet[Tuple[str, ...]] = frozenset(
    {
        ("repro", "core", "assignment"),
        ("repro", "core", "fastlp"),
        ("repro", "nn", "fused"),
        ("repro", "sim", "engine"),
    }
)


@_register
class DtypeRequiredRule(Rule):
    """``np.zeros(n)`` defaults to float64; in a hot-path module that
    default is a silent widening of the float32 pipeline.  Every array
    constructor here must say which dtype it means (``*_like`` and
    ``asarray`` preserve their input's dtype and are exempt)."""

    rule_id = "DTYPE001"
    name = "dtype-required"
    summary = "numpy array constructors in hot-path modules need an explicit dtype"
    paths = "src/repro/{core/assignment,core/fastlp,nn/fused,sim/engine}.py"

    #: Constructor -> positional index its dtype parameter sits at.
    _CONSTRUCTORS = {"zeros": 1, "ones": 1, "empty": 1, "full": 2, "array": 1}

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module in HOT_PATH_MODULES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            parts = name.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            dtype_index = self._CONSTRUCTORS.get(parts[1])
            if dtype_index is None:
                continue
            if len(node.args) > dtype_index:
                continue  # dtype passed positionally
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            yield self.finding(
                ctx,
                node,
                f"np.{parts[1]} without an explicit dtype defaults to "
                "float64 and silently upcasts the opt-in float32 hot path; "
                "pass dtype= (the evaluator's dtype, np.float32 or "
                "np.float64) explicitly",
            )


@_register
class ImplicitFloat64Rule(Rule):
    """``dtype=float`` and ``dtype="float64"`` *are* float64 — but they
    read as "generic float", so a float32 audit greps right past them.
    Hot-path modules must spell the width (``np.float64`` /
    ``np.float32``) or thread a dtype variable, making every deliberate
    widening visible."""

    rule_id = "DTYPE002"
    name = "implicit-float64"
    summary = "hot-path dtype= arguments must spell np.float32/np.float64"
    paths = "src/repro/{core/assignment,core/fastlp,nn/fused,sim/engine}.py"

    _IMPLICIT_STRINGS = frozenset({"float", "float64", "double"})

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module in HOT_PATH_MODULES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for keyword in node.keywords:
                if keyword.arg != "dtype":
                    continue
                value = keyword.value
                implicit: Optional[str] = None
                if isinstance(value, ast.Name) and value.id == "float":
                    implicit = "float"
                elif isinstance(value, ast.Constant) and (
                    isinstance(value.value, str)
                    and value.value in self._IMPLICIT_STRINGS
                ):
                    implicit = repr(value.value)
                if implicit is not None:
                    yield self.finding(
                        ctx,
                        value,
                        f"dtype={implicit} is an implicit float64 that a "
                        "float32 audit cannot see; spell np.float64 (or "
                        "thread the evaluator's dtype) to make the "
                        "widening explicit",
                    )


def rules_table() -> List[Dict[str, str]]:
    """Id/name/summary/scope/paths rows for ``--list-rules`` and the docs."""
    return [
        {
            "id": cls.rule_id,
            "name": cls.name,
            "summary": cls.summary,
            "scope": cls.scope,
            "paths": cls.paths,
        }
        for cls in _RULE_CLASSES
    ]
