"""Project-specific static analysis (pure stdlib, always on in tier-1).

The test suite can only spot-check this repository's load-bearing
invariants — bit-reproducible seeded randomness, the hand-rolled autograd
tape's ``.data`` contract, and ``repro.obs``'s zero-cost-when-off path.
This package enforces them at every call site with an ``ast``-based rule
pack, a ``# repro: allow[RULE] -- why`` suppression mechanism, and a
committed baseline for grandfathered findings.

Run it as ``python -m repro.analysis [--format json|text] [paths...]``;
the tier-1 gate ``tests/test_static_analysis.py`` runs the same scan
in-process (no subprocess, no skip path).  Rules and rationale are
documented in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.baseline import Baseline, PrunedEntry
from repro.analysis.cache import AnalysisCache, default_cache_path
from repro.analysis.engine import (
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Suppression,
    analyze_paths,
    analyze_source,
    analyze_sources,
    iter_python_files,
    parse_suppressions,
)
from repro.analysis.project import ModuleSummary, ProjectContext, build_summary
from repro.analysis.rules import all_rules, rule_by_id, rules_table

__all__ = [
    "AnalysisCache",
    "Baseline",
    "Finding",
    "ModuleContext",
    "ModuleSummary",
    "ProjectContext",
    "ProjectRule",
    "PrunedEntry",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "build_summary",
    "default_cache_path",
    "iter_python_files",
    "parse_suppressions",
    "rule_by_id",
    "rules_table",
]
