"""Core machinery of the ``repro.analysis`` static-analysis framework.

This module is deliberately pure-stdlib (``ast`` + ``tokenize``): the
analyzer gates tier-1 CI, so it must run on the most hermetic container
the suite supports — no ruff, no mypy, no third-party imports.

Pieces
------
:class:`Finding`
    One diagnostic: file, rule id, position, message, and the stripped
    source line (the line text is what the committed baseline matches on,
    so findings survive unrelated line-number drift).
:class:`Suppression`
    A parsed ``# repro: allow[RULE-ID] -- justification`` comment.  A
    suppression silences the named rule(s) on its own physical line, or —
    when the comment stands alone on a line — on the line directly below.
    The justification is mandatory; a bare ``allow`` is itself reported
    (rule ``ANA001``), as is a suppression that silences nothing
    (``ANA002``), so stale or typo'd allows cannot linger silently.
:class:`ModuleContext`
    Everything a rule needs about one parsed module: the AST, the source
    lines, the dotted module path (``repro.core.fastlp``, ``tests.test_x``)
    and lazily-built parent / ``no_grad``-scope indexes shared by all rules.
:class:`Rule` / :class:`ProjectRule`
    Base classes; concrete rules live in :mod:`repro.analysis.rules`.
    A :class:`Rule` sees one module at a time; a :class:`ProjectRule`
    (``scope = "project"``) sees the whole scanned tree at once through a
    :class:`repro.analysis.project.ProjectContext`.
:func:`analyze_source` / :func:`analyze_sources` / :func:`analyze_paths`
    Run a rule set over source text / an in-memory module set / files and
    return sorted findings with suppressions applied.  ``analyze_paths``
    optionally keeps an on-disk incremental cache (content-hash keyed per
    module, invalidated transitively via the import graph) so the tier-1
    gate does not re-parse an unchanged tree.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.project import ModuleSummary, ProjectContext

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "iter_python_files",
    "parse_suppressions",
]

#: Matches ``repro: allow[RULE1]`` / ``repro: allow[RULE1,RULE2] -- why``
#: inside a comment (the placeholder here is hyphenated on purpose, so this
#: very comment can't match its own pattern).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<justification>.*)$"
)

#: Framework-level diagnostics (not AST rules; cannot be disabled).
PARSE_ERROR = "ANA000"
MISSING_JUSTIFICATION = "ANA001"
UNUSED_SUPPRESSION = "ANA002"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the framework itself).

    ``scope`` records which layer produced it: ``"module"`` for per-file
    AST rules and framework diagnostics, ``"project"`` for cross-module
    rules.  It is part of the JSON schema but *not* of the baseline key —
    a grandfathered line stays grandfathered if a rule migrates layers.
    """

    path: str
    rule: str
    line: int
    col: int
    message: str
    text: str
    scope: str = "module"

    def render(self) -> str:
        """Human-readable one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity the committed baseline matches on.

        Line *text* rather than line *number*, so a grandfathered finding
        stays grandfathered when unrelated edits shift the file around —
        and resurfaces as soon as the offending line itself changes.
        """
        return (self.path, self.rule, self.text)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``--format json`` output schema)."""
        return {
            "path": self.path,
            "rule": self.rule,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=str(data["path"]),
            rule=str(data["rule"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            text=str(data["text"]),
            scope=str(data.get("scope", "module")),
        )


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment.

    ``text`` is the stripped physical line the comment sits on, so the
    framework can report on a suppression without re-reading the source
    (the incremental cache stores suppressions, not source text).
    """

    line: int
    rules: Tuple[str, ...]
    justification: str
    own_line: bool
    text: str = ""

    def covers(self, finding_line: int) -> bool:
        """Whether this comment's scope includes ``finding_line``."""
        if finding_line == self.line:
            return True
        return self.own_line and finding_line == self.line + 1


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# repro: allow[...]`` comment from ``source``.

    Uses :mod:`tokenize` (not a regex over lines) so comment-looking text
    inside string literals is never misread as a suppression.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        justification = match.group("justification").strip().lstrip("-—:").strip()
        before_comment = token.line[: token.start[1]]
        suppressions.append(
            Suppression(
                line=token.start[0],
                rules=rules,
                justification=justification,
                own_line=not before_comment.strip(),
                text=token.line.strip(),
            )
        )
    return suppressions


class ModuleContext:
    """Shared per-module state handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.module = _module_parts(path)
        self._parents: Optional[Dict[int, ast.AST]] = None
        self._no_grad_ids: Optional[FrozenSet[int]] = None

    # ---- module identity ---------------------------------------------- #

    @property
    def repro_subpackage(self) -> Optional[str]:
        """``"core"`` for ``repro.core.*``, ``"cli"`` for ``repro.cli``, ...

        ``None`` when the module is not part of the ``repro`` package
        (tests, benchmarks, fixtures).
        """
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def in_repro(self) -> bool:
        return bool(self.module) and self.module[0] == "repro"

    def in_packages(self, packages: Iterable[str]) -> bool:
        """Whether the module lives in one of the named repro subpackages."""
        sub = self.repro_subpackage
        return sub is not None and sub in set(packages)

    # ---- source access ------------------------------------------------- #

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ---- lazily-built AST indexes -------------------------------------- #

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def in_no_grad(self, node: ast.AST) -> bool:
        """Whether ``node`` sits lexically inside a ``with no_grad():`` body."""
        if self._no_grad_ids is None:
            inside: set = set()
            for outer in ast.walk(self.tree):
                if not isinstance(outer, (ast.With, ast.AsyncWith)):
                    continue
                if not any(
                    _is_no_grad_entry(item.context_expr) for item in outer.items
                ):
                    continue
                for body_stmt in outer.body:
                    for descendant in ast.walk(body_stmt):
                        inside.add(id(descendant))
            self._no_grad_ids = frozenset(inside)
        return id(node) in self._no_grad_ids


def _is_no_grad_entry(expr: ast.expr) -> bool:
    """Whether a with-item expression is a ``no_grad()`` activation."""
    if not isinstance(expr, ast.Call):
        return False
    name = dotted_name(expr.func)
    return name is not None and name.split(".")[-1] == "no_grad"


def dotted_name(node: ast.expr) -> Optional[str]:
    """Resolve ``np.random.default_rng`` -> its dotted string, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _module_parts(path: str) -> Tuple[str, ...]:
    """Dotted-module parts for a file path.

    ``src/repro/core/fastlp.py`` -> ``("repro", "core", "fastlp")``;
    package ``__init__``s drop the final component; paths outside a
    recognised root keep their raw parts so tests can still scope rules.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        return tuple(parts[parts.index("repro"):])
    if "src" in parts:
        return tuple(parts[parts.index("src") + 1:])
    return tuple(parts)


class Rule:
    """Base class for one per-module static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` restricts the rule to the modules it covers (most
    invariants only hold in specific subpackages — ``paths`` is the
    human-readable statement of that restriction, shown by
    ``--list-rules`` and ``docs/STATIC_ANALYSIS.md``).

    ``scope`` is machine-read by the engine: ``"module"`` rules run once
    per file with a :class:`ModuleContext`; ``"project"`` rules (see
    :class:`ProjectRule`) run once per scan with the whole-tree view.
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "module"
    paths: str = "all scanned files"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.path,
            rule=self.rule_id,
            line=lineno,
            col=col,
            message=message,
            text=ctx.line_text(lineno),
        )


class ProjectRule(Rule):
    """Base class for a cross-module (whole-program) rule.

    Project rules never see raw ASTs: they query the
    :class:`~repro.analysis.project.ProjectContext` built from per-module
    summaries, which is what makes the incremental cache sound — a
    summary is a pure function of one file's content.
    """

    scope: str = "project"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, site: "object", message: str
    ) -> Finding:
        """Build a project-scope finding anchored at a summary ``Site``."""
        return Finding(
            path=path,
            rule=self.rule_id,
            line=site.line,  # type: ignore[attr-defined]
            col=site.col,  # type: ignore[attr-defined]
            message=message,
            text=site.text,  # type: ignore[attr-defined]
            scope="project",
        )


def _framework_finding(
    path: str, rule: str, line: int, message: str, text: str
) -> Finding:
    return Finding(path=path, rule=rule, line=line, col=0, message=message, text=text)


def _digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass
class _ModuleRecord:
    """One scanned module: summary + pre-suppression module findings.

    Exactly what the incremental cache persists per file — raw findings
    are stored *before* suppression so the suppression/ANA002 pass (which
    also has to see project findings) can always run fresh and cheap.
    """

    path: str
    digest: str = ""
    dep_digest: str = ""
    summary: Optional["ModuleSummary"] = None
    raw: List[Finding] = field(default_factory=list)
    parse_error: Optional[Finding] = None
    from_cache: bool = False


def _parse_record(
    path_str: str, source: str, module_rules: Sequence[Rule]
) -> _ModuleRecord:
    """Parse one module and run the per-module rules over it."""
    from repro.analysis.project import build_summary

    record = _ModuleRecord(path=path_str, digest=_digest(source))
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as error:
        line = error.lineno or 1
        record.parse_error = _framework_finding(
            path_str,
            PARSE_ERROR,
            line,
            f"file does not parse: {error.msg}",
            source.splitlines()[line - 1].strip() if source.splitlines() else "",
        )
        return record
    ctx = ModuleContext(path_str, source, tree)
    for rule in module_rules:
        if rule.applies_to(ctx):
            record.raw.extend(rule.check(ctx))
    record.summary = build_summary(ctx)
    return record


def _apply_suppressions(
    path_str: str,
    suppressions: Sequence[Suppression],
    raw: Sequence[Finding],
    check_unused: bool,
) -> List[Finding]:
    """Silence suppressed findings; emit ANA001/ANA002 diagnostics."""
    findings: List[Finding] = []
    used: set = set()
    for finding in raw:
        suppressed = False
        for index, suppression in enumerate(suppressions):
            if finding.rule in suppression.rules and suppression.covers(finding.line):
                used.add(index)
                suppressed = True
        if not suppressed:
            findings.append(finding)
    for index, suppression in enumerate(suppressions):
        if not suppression.justification:
            findings.append(
                _framework_finding(
                    path_str,
                    MISSING_JUSTIFICATION,
                    suppression.line,
                    "suppression needs a justification: "
                    "# repro: allow[RULE] -- <why this is safe>",
                    suppression.text,
                )
            )
        if check_unused and index not in used:
            findings.append(
                _framework_finding(
                    path_str,
                    UNUSED_SUPPRESSION,
                    suppression.line,
                    f"suppression for {', '.join(suppression.rules)} matches "
                    "no finding on its line (stale comment or typo'd rule id?)",
                    suppression.text,
                )
            )
    return findings


def _split_rules(
    rules: Sequence[Rule],
) -> Tuple[List[Rule], List["ProjectRule"]]:
    module_rules = [rule for rule in rules if rule.scope != "project"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    return module_rules, project_rules  # type: ignore[return-value]


def _build_project(records: Mapping[str, _ModuleRecord]) -> "ProjectContext":
    from repro.analysis.project import ProjectContext

    return ProjectContext(
        [record.summary for record in records.values() if record.summary is not None]
    )


def _run_project_rules(
    project_rules: Sequence["ProjectRule"], project: "ProjectContext"
) -> Dict[str, List[Finding]]:
    by_path: Dict[str, List[Finding]] = {}
    for rule in project_rules:
        for finding in rule.check_project(project):
            by_path.setdefault(finding.path, []).append(finding)
    return by_path


def _finalize(
    records: Iterable[_ModuleRecord],
    project_by_path: Mapping[str, List[Finding]],
    check_unused: bool,
) -> List[Finding]:
    findings: List[Finding] = []
    for record in records:
        if record.parse_error is not None:
            findings.append(record.parse_error)
            continue
        raw = list(record.raw) + list(project_by_path.get(record.path, []))
        suppressions = record.summary.suppressions if record.summary else ()
        findings.extend(
            _apply_suppressions(record.path, suppressions, raw, check_unused)
        )
    return sorted(findings, key=Finding.sort_key)


def analyze_source(
    source: str,
    path: Union[str, Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: the full registry) over one module's source.

    Returns sorted findings with suppressions already applied.  Only
    per-module rules run — a single source string has no project to be
    checked against; use :func:`analyze_sources` to run project rules
    over an in-memory module set.  Passing an explicit ``rules`` subset
    (as the fixture tests do) disables the unused-suppression check — a
    comment may legitimately target a rule outside the subset.
    """
    path_str = Path(path).as_posix()
    check_unused = rules is None
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    module_rules, _ = _split_rules(rules)
    record = _parse_record(path_str, source, module_rules)
    return _finalize([record], {}, check_unused)


def analyze_sources(
    sources: Mapping[Union[str, Path], str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze an in-memory ``{path: source}`` module set as one project.

    Unlike :func:`analyze_source` this runs project-scope rules too, with
    a :class:`~repro.analysis.project.ProjectContext` built from exactly
    the given modules — the primitive behind the fixture mini-project
    tests.  Passing an explicit ``rules`` subset disables the
    unused-suppression check, as in :func:`analyze_source`.
    """
    check_unused = rules is None
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    module_rules, project_rules = _split_rules(rules)
    records: Dict[str, _ModuleRecord] = {}
    for path, source in sources.items():
        path_str = Path(path).as_posix()
        records[path_str] = _parse_record(path_str, source, module_rules)
    project = _build_project(records)
    by_path = _run_project_rules(project_rules, project)
    return _finalize(records.values(), by_path, check_unused)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path, None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    seen.setdefault(candidate, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def _dep_digests(
    project: "ProjectContext", records: Mapping[str, _ModuleRecord]
) -> Dict[str, str]:
    """Per-file digest of the transitive import closure's content.

    A cached record is only reusable when this matches what was stored
    with it: editing any module a file (transitively) imports invalidates
    the file's cache entry, even though its own bytes are unchanged.
    """
    by_module: Dict[str, _ModuleRecord] = {}
    for record in records.values():
        if record.summary is not None:
            by_module[record.summary.dotted] = record
    digests: Dict[str, str] = {}
    for record in records.values():
        if record.summary is None:
            continue
        closure = sorted(project.transitive_imports(record.summary.dotted))
        material = "\n".join(
            f"{module}:{by_module[module].digest}"
            for module in closure
            if module in by_module
        )
        digests[record.path] = _digest(material)
    return digests


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    *,
    cache: bool = False,
    cache_path: Optional[Union[str, Path]] = None,
    stats: Optional[Dict[str, object]] = None,
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths``; findings sorted by site.

    Paths in findings are reported relative to ``root`` (default: the
    current working directory) whenever possible, so baseline entries are
    stable across machines.

    Per-module rules run per file; project-scope rules run once over the
    whole scanned set.  With ``cache=True`` (or an explicit
    ``cache_path``), per-module work is memoised on disk keyed by content
    hash and invalidated transitively via the import graph; the project
    pass itself is always recomputed from the (possibly cached) module
    summaries, because a project finding can depend on modules outside
    the anchor file's import closure.  The cache is bypassed when an
    explicit ``rules`` subset is given — cached findings would not match.

    When a ``stats`` dict is passed, the engine fills it with the
    project-scope overview the ``--format json`` report embeds (module
    count, import-edge count, project rule ids, cache hit/miss counts).
    """
    base = (root or Path.cwd()).resolve()
    check_unused = rules is None
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    module_rules, project_rules = _split_rules(rules)

    store = None
    if (cache or cache_path is not None) and check_unused:
        from repro.analysis.cache import AnalysisCache, default_cache_path

        store = AnalysisCache.load(
            Path(cache_path) if cache_path is not None else default_cache_path(base)
        )

    records: Dict[str, _ModuleRecord] = {}
    sources: Dict[str, str] = {}
    for file_path in iter_python_files(paths):
        resolved = file_path.resolve()
        try:
            reported: Path = resolved.relative_to(base)
        except ValueError:
            reported = file_path
        path_str = reported.as_posix()
        source = resolved.read_text(encoding="utf-8")
        sources[path_str] = source
        record = store.lookup(path_str, _digest(source)) if store else None
        if record is None:
            record = _parse_record(path_str, source, module_rules)
        records[path_str] = record

    project = _build_project(records)
    dep_digests = _dep_digests(project, records)
    for path_str, record in list(records.items()):
        if record.from_cache and record.dep_digest != dep_digests.get(path_str, ""):
            records[path_str] = _parse_record(
                path_str, sources[path_str], module_rules
            )
        records[path_str].dep_digest = dep_digests.get(path_str, "")
    # Summaries are a pure function of file content, so ``project`` (built
    # before revalidation) is still the correct view after re-parsing.

    by_path = _run_project_rules(project_rules, project)
    findings = _finalize(records.values(), by_path, check_unused)
    if store is not None:
        store.replace(records.values())
        store.save()
    if stats is not None:
        stats["modules"] = len(project.modules)
        stats["import_edges"] = sum(
            len(edges) for edges in project.import_graph.values()
        )
        stats["project_rules"] = sorted(rule.rule_id for rule in project_rules)
        stats["cache"] = {
            "enabled": store is not None,
            "hits": store.hits if store is not None else 0,
            "misses": store.misses if store is not None else 0,
        }
    return findings
