"""Core machinery of the ``repro.analysis`` static-analysis framework.

This module is deliberately pure-stdlib (``ast`` + ``tokenize``): the
analyzer gates tier-1 CI, so it must run on the most hermetic container
the suite supports — no ruff, no mypy, no third-party imports.

Pieces
------
:class:`Finding`
    One diagnostic: file, rule id, position, message, and the stripped
    source line (the line text is what the committed baseline matches on,
    so findings survive unrelated line-number drift).
:class:`Suppression`
    A parsed ``# repro: allow[RULE-ID] -- justification`` comment.  A
    suppression silences the named rule(s) on its own physical line, or —
    when the comment stands alone on a line — on the line directly below.
    The justification is mandatory; a bare ``allow`` is itself reported
    (rule ``ANA001``), as is a suppression that silences nothing
    (``ANA002``), so stale or typo'd allows cannot linger silently.
:class:`ModuleContext`
    Everything a rule needs about one parsed module: the AST, the source
    lines, the dotted module path (``repro.core.fastlp``, ``tests.test_x``)
    and lazily-built parent / ``no_grad``-scope indexes shared by all rules.
:class:`Rule`
    Base class; concrete rules live in :mod:`repro.analysis.rules`.
:func:`analyze_source` / :func:`analyze_paths`
    Run a rule set over source text / files and return sorted findings
    with suppressions applied.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Suppression",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "parse_suppressions",
]

#: Matches ``repro: allow[RULE1]`` / ``repro: allow[RULE1,RULE2] -- why``
#: inside a comment (the placeholder here is hyphenated on purpose, so this
#: very comment can't match its own pattern).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]\s*(?P<justification>.*)$"
)

#: Framework-level diagnostics (not AST rules; cannot be disabled).
PARSE_ERROR = "ANA000"
MISSING_JUSTIFICATION = "ANA001"
UNUSED_SUPPRESSION = "ANA002"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule (or by the framework itself)."""

    path: str
    rule: str
    line: int
    col: int
    message: str
    text: str

    def render(self) -> str:
        """Human-readable one-liner: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity the committed baseline matches on.

        Line *text* rather than line *number*, so a grandfathered finding
        stays grandfathered when unrelated edits shift the file around —
        and resurfaces as soon as the offending line itself changes.
        """
        return (self.path, self.rule, self.text)

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the ``--format json`` output schema)."""
        return {
            "path": self.path,
            "rule": self.rule,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    own_line: bool

    def covers(self, finding_line: int) -> bool:
        """Whether this comment's scope includes ``finding_line``."""
        if finding_line == self.line:
            return True
        return self.own_line and finding_line == self.line + 1


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract every ``# repro: allow[...]`` comment from ``source``.

    Uses :mod:`tokenize` (not a regex over lines) so comment-looking text
    inside string literals is never misread as a suppression.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        justification = match.group("justification").strip().lstrip("-—:").strip()
        before_comment = token.line[: token.start[1]]
        suppressions.append(
            Suppression(
                line=token.start[0],
                rules=rules,
                justification=justification,
                own_line=not before_comment.strip(),
            )
        )
    return suppressions


class ModuleContext:
    """Shared per-module state handed to every rule."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.module = _module_parts(path)
        self._parents: Optional[Dict[int, ast.AST]] = None
        self._no_grad_ids: Optional[FrozenSet[int]] = None

    # ---- module identity ---------------------------------------------- #

    @property
    def repro_subpackage(self) -> Optional[str]:
        """``"core"`` for ``repro.core.*``, ``"cli"`` for ``repro.cli``, ...

        ``None`` when the module is not part of the ``repro`` package
        (tests, benchmarks, fixtures).
        """
        if len(self.module) >= 2 and self.module[0] == "repro":
            return self.module[1]
        return None

    def in_repro(self) -> bool:
        return bool(self.module) and self.module[0] == "repro"

    def in_packages(self, packages: Iterable[str]) -> bool:
        """Whether the module lives in one of the named repro subpackages."""
        sub = self.repro_subpackage
        return sub is not None and sub in set(packages)

    # ---- source access ------------------------------------------------- #

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ---- lazily-built AST indexes -------------------------------------- #

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def in_no_grad(self, node: ast.AST) -> bool:
        """Whether ``node`` sits lexically inside a ``with no_grad():`` body."""
        if self._no_grad_ids is None:
            inside: set = set()
            for outer in ast.walk(self.tree):
                if not isinstance(outer, (ast.With, ast.AsyncWith)):
                    continue
                if not any(
                    _is_no_grad_entry(item.context_expr) for item in outer.items
                ):
                    continue
                for body_stmt in outer.body:
                    for descendant in ast.walk(body_stmt):
                        inside.add(id(descendant))
            self._no_grad_ids = frozenset(inside)
        return id(node) in self._no_grad_ids


def _is_no_grad_entry(expr: ast.expr) -> bool:
    """Whether a with-item expression is a ``no_grad()`` activation."""
    if not isinstance(expr, ast.Call):
        return False
    name = dotted_name(expr.func)
    return name is not None and name.split(".")[-1] == "no_grad"


def dotted_name(node: ast.expr) -> Optional[str]:
    """Resolve ``np.random.default_rng`` -> its dotted string, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _module_parts(path: str) -> Tuple[str, ...]:
    """Dotted-module parts for a file path.

    ``src/repro/core/fastlp.py`` -> ``("repro", "core", "fastlp")``;
    package ``__init__``s drop the final component; paths outside a
    recognised root keep their raw parts so tests can still scope rules.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        return tuple(parts[parts.index("repro"):])
    if "src" in parts:
        return tuple(parts[parts.index("src") + 1:])
    return tuple(parts)


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` restricts the rule to its scope (most invariants
    only hold in specific subpackages — see ``docs/STATIC_ANALYSIS.md``).
    """

    rule_id: str = ""
    name: str = ""
    summary: str = ""
    scope: str = "all scanned files"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=ctx.path,
            rule=self.rule_id,
            line=lineno,
            col=col,
            message=message,
            text=ctx.line_text(lineno),
        )


def _framework_finding(
    path: str, rule: str, line: int, message: str, text: str
) -> Finding:
    return Finding(path=path, rule=rule, line=line, col=0, message=message, text=text)


def analyze_source(
    source: str,
    path: Union[str, Path],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run ``rules`` (default: the full registry) over one module's source.

    Returns sorted findings with suppressions already applied.  Passing an
    explicit ``rules`` subset (as the fixture tests do) disables the
    unused-suppression check — a comment may legitimately target a rule
    outside the subset.
    """
    path_str = Path(path).as_posix()
    check_unused = rules is None
    if rules is None:
        from repro.analysis.rules import all_rules

        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path_str)
    except SyntaxError as error:
        line = error.lineno or 1
        return [
            _framework_finding(
                path_str,
                PARSE_ERROR,
                line,
                f"file does not parse: {error.msg}",
                source.splitlines()[line - 1].strip() if source.splitlines() else "",
            )
        ]
    ctx = ModuleContext(path_str, source, tree)
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))

    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    used: set = set()
    for finding in raw:
        suppressed = False
        for index, suppression in enumerate(suppressions):
            if finding.rule in suppression.rules and suppression.covers(finding.line):
                used.add(index)
                suppressed = True
        if not suppressed:
            findings.append(finding)
    for index, suppression in enumerate(suppressions):
        if not suppression.justification:
            findings.append(
                _framework_finding(
                    path_str,
                    MISSING_JUSTIFICATION,
                    suppression.line,
                    "suppression needs a justification: "
                    "# repro: allow[RULE] -- <why this is safe>",
                    ctx.line_text(suppression.line),
                )
            )
        if check_unused and index not in used:
            findings.append(
                _framework_finding(
                    path_str,
                    UNUSED_SUPPRESSION,
                    suppression.line,
                    f"suppression for {', '.join(suppression.rules)} matches "
                    "no finding on its line (stale comment or typo'd rule id?)",
                    ctx.line_text(suppression.line),
                )
            )
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path, None)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    seen.setdefault(candidate, None)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(seen)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths``; findings sorted by site.

    Paths in findings are reported relative to ``root`` (default: the
    current working directory) whenever possible, so baseline entries are
    stable across machines.
    """
    base = (root or Path.cwd()).resolve()
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        resolved = file_path.resolve()
        try:
            reported = resolved.relative_to(base)
        except ValueError:
            reported = file_path
        source = resolved.read_text(encoding="utf-8")
        findings.extend(analyze_source(source, reported, rules=rules))
    return sorted(findings, key=Finding.sort_key)
