"""On-disk incremental cache for :func:`repro.analysis.engine.analyze_paths`.

The tier-1 gate re-analyzes the full tree on every test run; parsing and
the per-module rule pass dominate that cost.  This cache memoises exactly
that per-module work:

- keyed by the file's **content hash** (not mtime — byte-identical files
  hit regardless of checkout order or clock skew);
- each entry also records a **dep digest** over the content hashes of the
  file's transitive import closure, so editing a module invalidates every
  module that (transitively) imports it, not just the file itself;
- the whole cache is discarded when the analyzer's own sources or the
  Python minor version change (an **analyzer fingerprint** in the header),
  so rule edits can never serve stale findings.

Project-scope findings are *never* cached: a project finding can depend
on modules entirely outside the anchor file's import closure (a metric
declared in ``repro.obs.names`` silences a finding in ``repro.sim``), so
the project pass is recomputed each run from the cached summaries — which
is cheap, because summaries are plain dict/set lookups, no parsing.

The cache file is a private artifact (gitignored, safe to delete at any
time); a corrupt or unreadable file degrades to a cold cache, never to an
error.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path
from typing import Dict, Iterable, Optional

from repro.analysis.engine import Finding, _ModuleRecord

__all__ = ["AnalysisCache", "CACHE_FILE_NAME", "default_cache_path"]

CACHE_FILE_NAME = ".repro-analysis-cache.json"
CACHE_VERSION = 1

_FINGERPRINT: Optional[str] = None


def default_cache_path(root: Path) -> Path:
    return Path(root) / CACHE_FILE_NAME


def analyzer_fingerprint() -> str:
    """Hash of the analyzer's own sources plus the Python minor version.

    Any edit to the ``repro.analysis`` package (new rule, changed summary
    extraction, ...) or an interpreter jump produces a different
    fingerprint and therefore a cold cache.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256()
        digest.update(
            f"py{sys.version_info[0]}.{sys.version_info[1]}".encode("ascii")
        )
        package_dir = Path(__file__).resolve().parent
        for source in sorted(package_dir.glob("*.py")):
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


class AnalysisCache:
    """The persisted per-module records of one scan root."""

    def __init__(
        self, path: Path, entries: Dict[str, Dict[str, object]], fingerprint: str
    ) -> None:
        self.path = Path(path)
        self._entries = entries
        self._fingerprint = fingerprint
        self.hits = 0
        self.misses = 0

    @classmethod
    def load(cls, path: Path) -> "AnalysisCache":
        fingerprint = analyzer_fingerprint()
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls(path, {}, fingerprint)
        if (
            not isinstance(data, dict)
            or data.get("version") != CACHE_VERSION
            or data.get("analyzer") != fingerprint
        ):
            return cls(path, {}, fingerprint)
        files = data.get("files")
        if not isinstance(files, dict):
            return cls(path, {}, fingerprint)
        return cls(path, files, fingerprint)

    def lookup(self, path_str: str, digest: str) -> Optional[_ModuleRecord]:
        """The cached record for ``path_str``, or ``None`` on miss.

        Only the *own* content hash is checked here; the engine follows
        up with the transitive dep-digest check once the import graph
        exists, and demotes stale hits back to misses.
        """
        entry = self._entries.get(path_str)
        if not isinstance(entry, dict) or entry.get("digest") != digest:
            self.misses += 1
            return None
        try:
            record = self._decode(path_str, entry)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    @staticmethod
    def _decode(path_str: str, entry: Dict[str, object]) -> _ModuleRecord:
        from repro.analysis.project import ModuleSummary

        summary_data = entry.get("summary")
        parse_error = entry.get("parse_error")
        return _ModuleRecord(
            path=path_str,
            digest=str(entry["digest"]),
            dep_digest=str(entry.get("dep_digest", "")),
            summary=(
                ModuleSummary.from_json(summary_data)  # type: ignore[arg-type]
                if summary_data is not None
                else None
            ),
            raw=[
                Finding.from_dict(item)
                for item in entry.get("findings", [])  # type: ignore[union-attr]
            ],
            parse_error=(
                Finding.from_dict(parse_error)  # type: ignore[arg-type]
                if parse_error is not None
                else None
            ),
            from_cache=True,
        )

    def replace(self, records: Iterable[_ModuleRecord]) -> None:
        """Rebuild the cache body from this scan's records.

        Entries for files outside the current scan are dropped on
        purpose: the cache mirrors exactly one scan set, and a narrower
        ad-hoc scan simply rebuilds on the next full run.
        """
        self._entries = {
            record.path: {
                "digest": record.digest,
                "dep_digest": record.dep_digest,
                "summary": (
                    record.summary.to_json() if record.summary is not None else None
                ),
                "findings": [finding.to_dict() for finding in record.raw],
                "parse_error": (
                    record.parse_error.to_dict()
                    if record.parse_error is not None
                    else None
                ),
            }
            for record in records
        }

    def save(self) -> None:
        payload = {
            "version": CACHE_VERSION,
            "analyzer": self._fingerprint,
            "files": self._entries,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            # A read-only checkout must not break analysis; run uncached.
            try:
                tmp.unlink()
            except OSError:
                pass
