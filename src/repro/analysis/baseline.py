"""Committed baseline of grandfathered findings.

A baseline lets the always-on tier-1 gate adopt a new rule without a
flag-day fixing spree: known findings are recorded in
``analysis-baseline.json`` and stop failing the gate, while *new*
violations of the same rule still do.  This repository currently ships an
**empty** baseline — every initial finding was either fixed or suppressed
inline with a justification — so the file mostly documents the workflow:

* ``python -m repro.analysis --update-baseline`` rewrites the file with
  whatever currently fires (run it from the repo root so paths match).
* Entries match on ``(path, rule, stripped line text)`` — not the line
  *number* — so unrelated edits don't resurrect grandfathered findings,
  but touching the offending line itself does.
* Duplicate identical lines in one file need one entry each; entries are
  consumed as they match (``count`` in the JSON).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.engine import Finding

__all__ = ["Baseline", "BASELINE_VERSION", "DEFAULT_BASELINE_NAME"]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_Key = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered finding keys."""

    def __init__(self, entries: Union[Dict[_Key, int], None] = None) -> None:
        self.entries: Dict[_Key, int] = dict(entries or {})

    def __len__(self) -> int:
        return sum(self.entries.values())

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[_Key, int] = {}
        for finding in findings:
            key = finding.baseline_key()
            entries[key] = entries.get(key, 0) + 1
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{file_path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries: Dict[_Key, int] = {}
        for entry in payload.get("entries", []):
            key = (str(entry["path"]), str(entry["rule"]), str(entry["text"]))
            entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"path": key[0], "rule": key[1], "text": key[2], "count": count}
                for key, count in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def filter(self, findings: List[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (entries are consumed)."""
        remaining = dict(self.entries)
        fresh: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh
