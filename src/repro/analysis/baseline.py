"""Committed baseline of grandfathered findings.

A baseline lets the always-on tier-1 gate adopt a new rule without a
flag-day fixing spree: known findings are recorded in
``analysis-baseline.json`` and stop failing the gate, while *new*
violations of the same rule still do.  This repository currently ships an
**empty** baseline — every initial finding was either fixed or suppressed
inline with a justification — so the file mostly documents the workflow:

* ``python -m repro.analysis --update-baseline`` rewrites the file with
  whatever currently fires (run it from the repo root so paths match).
* Entries match on ``(path, rule, stripped line text)`` — not the line
  *number* — so unrelated edits don't resurrect grandfathered findings,
  but touching the offending line itself does.
* Duplicate identical lines in one file need one entry each; entries are
  consumed as they match (``count`` in the JSON).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple, Union

from repro.analysis.engine import Finding

__all__ = [
    "Baseline",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "PrunedEntry",
]

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

_Key = Tuple[str, str, str]


def _default_exists(path: str) -> bool:
    return Path(path).exists()


@dataclass(frozen=True)
class PrunedEntry:
    """One baseline entry dropped by ``--update-baseline``, with why."""

    path: str
    rule: str
    text: str
    count: int
    reason: str

    def render(self) -> str:
        return f"{self.path}: {self.rule} ({self.reason}): {self.text}"


class Baseline:
    """A multiset of grandfathered finding keys.

    ``scopes`` records which analysis layer (module/project) produced
    each grandfathered finding — informational in the saved JSON, never
    part of the matching key, so a rule can migrate layers without
    resurrecting its grandfathered findings.
    """

    def __init__(
        self,
        entries: Union[Dict[_Key, int], None] = None,
        scopes: Union[Dict[_Key, str], None] = None,
    ) -> None:
        self.entries: Dict[_Key, int] = dict(entries or {})
        self.scopes: Dict[_Key, str] = dict(scopes or {})

    def __len__(self) -> int:
        return sum(self.entries.values())

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[_Key, int] = {}
        scopes: Dict[_Key, str] = {}
        for finding in findings:
            key = finding.baseline_key()
            entries[key] = entries.get(key, 0) + 1
            scopes.setdefault(key, finding.scope)
        return cls(entries, scopes)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file_path = Path(path)
        if not file_path.exists():
            return cls()
        payload = json.loads(file_path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"{file_path}: unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries: Dict[_Key, int] = {}
        scopes: Dict[_Key, str] = {}
        for entry in payload.get("entries", []):
            key = (str(entry["path"]), str(entry["rule"]), str(entry["text"]))
            entries[key] = entries.get(key, 0) + int(entry.get("count", 1))
            if "scope" in entry:
                scopes.setdefault(key, str(entry["scope"]))
        return cls(entries, scopes)

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline as stable, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "path": key[0],
                    "rule": key[1],
                    "text": key[2],
                    "count": count,
                    "scope": self.scopes.get(key, "module"),
                }
                for key, count in sorted(self.entries.items())
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def pruned_against(
        self,
        new: "Baseline",
        *,
        registered_rules: FrozenSet[str],
        file_exists: Optional[Callable[[str], bool]] = None,
    ) -> List[PrunedEntry]:
        """What rewriting this baseline as ``new`` drops, and why.

        Classifies every entry (or surplus count) present here but not in
        ``new``: the file is gone, the rule id is no longer registered,
        or the finding simply stopped firing (fixed or suppressed).
        """
        exists = file_exists if file_exists is not None else _default_exists
        pruned: List[PrunedEntry] = []
        for key, count in sorted(self.entries.items()):
            dropped = count - new.entries.get(key, 0)
            if dropped <= 0:
                continue
            path, rule, text = key
            if not exists(path):
                reason = "file no longer exists"
            elif rule not in registered_rules:
                reason = "rule id no longer registered"
            else:
                reason = "finding no longer fires"
            pruned.append(
                PrunedEntry(
                    path=path, rule=rule, text=text, count=dropped, reason=reason
                )
            )
        return pruned

    def filter(self, findings: List[Finding]) -> List[Finding]:
        """Findings not covered by the baseline (entries are consumed)."""
        remaining = dict(self.entries)
        fresh: List[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh
