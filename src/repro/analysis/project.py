"""Whole-program layer of ``repro.analysis``: cross-module facts.

Per-module AST rules (:mod:`repro.analysis.rules`) can only see one file
at a time, which is exactly why PR 6 shipped two checkpoint-identity bugs
a reviewer had to find by hand: whether a class restores every key its
``state_dict`` writes, whether a pool-submitted callable is module-level,
or whether a metric name is declared centrally are *project* properties.

This module builds the project view once per scan:

:class:`ModuleSummary`
    Everything the project rules need to know about one module, extracted
    in a single AST pass and **JSON-serialisable** — summaries are what
    the on-disk incremental cache stores, so an unchanged module is never
    re-parsed (see :mod:`repro.analysis.cache`).
:class:`ProjectContext`
    The project: summaries keyed by dotted module name, the project
    import graph, a symbol table with re-export chasing, and a
    conservative call index (named calls only — method dispatch is out of
    scope on purpose; the rules built on top never *prove* safety from
    the index, they only report what it can see).

Everything here is deliberately conservative: resolution that fails
returns ``None`` and the querying rule stays silent, so growing the
codebase can only ever *reveal* findings, not fabricate them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import (
    ModuleContext,
    Suppression,
    dotted_name,
)

__all__ = [
    "ClassSummary",
    "FunctionSummary",
    "GlobalWrite",
    "ModuleSummary",
    "ObsDeclaration",
    "ObsUse",
    "ProjectContext",
    "Site",
    "SubmitSite",
    "build_summary",
]

#: The obs module-level helpers whose first argument is a metric name.
OBS_HELPERS: FrozenSet[str] = frozenset({"span", "inc", "observe", "gauge"})

#: Kind of series each obs helper records into.
OBS_HELPER_KINDS: Mapping[str, str] = {
    "inc": "counter",
    "gauge": "gauge",
    "observe": "histogram",
    "span": "span",
}

#: Dotted module holding the central metric-name catalogue.
OBS_NAMES_MODULE: Tuple[str, ...] = ("repro", "obs", "names")

#: ``names.py`` container variable -> series kind.
OBS_DECLARATION_VARS: Mapping[str, str] = {
    "COUNTERS": "counter",
    "GAUGES": "gauge",
    "HISTOGRAMS": "histogram",
    "SPANS": "span",
}

#: Method names that mutate their receiver in place.
MUTATING_METHODS: FrozenSet[str] = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Constructor names whose result is a mutable container.
_MUTABLE_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "dict",
        "list",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)

#: Constructors of ``numpy.random`` stream state (fork-unsafe across a
#: process-pool boundary: both sides continue the same bit stream).
_RNG_CONSTRUCTORS: FrozenSet[str] = frozenset({"default_rng", "SeedSequence"})

#: Methods whose body is allowed to write ``self.*`` without making the
#: class "mutable" for STATE001: construction and restore sites.
_CONSTRUCTION_METHODS: FrozenSet[str] = frozenset(
    {"__init__", "__new__", "__post_init__", "__init_subclass__"}
)


# --------------------------------------------------------------------- #
# Summary records (all JSON round-trippable via to_json/from_json)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Site:
    """One anchored source position: line, column and stripped line text."""

    line: int
    col: int
    text: str

    def to_json(self) -> Dict[str, object]:
        return {"line": self.line, "col": self.col, "text": self.text}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Site":
        return cls(
            line=int(data["line"]), col=int(data["col"]), text=str(data["text"])
        )


@dataclass(frozen=True)
class ObsUse:
    """One ``obs.<helper>("literal.name", ...)`` call site."""

    helper: str
    name: str
    site: Site

    def to_json(self) -> Dict[str, object]:
        return {"helper": self.helper, "name": self.name, "site": self.site.to_json()}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ObsUse":
        return cls(
            helper=str(data["helper"]),
            name=str(data["name"]),
            site=Site.from_json(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class ObsDeclaration:
    """One name declared in the central catalogue (``repro.obs.names``)."""

    kind: str
    name: str
    site: Site

    def to_json(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "site": self.site.to_json()}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ObsDeclaration":
        return cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            site=Site.from_json(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SubmitSite:
    """One ``<pool>.submit(callable, ...)`` call site.

    ``callable_kind`` is what the first argument syntactically is:
    ``"lambda"``, ``"nested"`` (a function defined inside the enclosing
    function), ``"self"`` (a bound ``self.x`` attribute), ``"name"`` /
    ``"attribute"`` (resolvable against the project symbol table), or
    ``"opaque"`` (anything the summary cannot classify — never flagged).
    """

    callable_kind: str
    callable_name: Optional[str]
    generator_args: Tuple[str, ...]
    site: Site

    def to_json(self) -> Dict[str, object]:
        return {
            "callable_kind": self.callable_kind,
            "callable_name": self.callable_name,
            "generator_args": list(self.generator_args),
            "site": self.site.to_json(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SubmitSite":
        name = data.get("callable_name")
        return cls(
            callable_kind=str(data["callable_kind"]),
            callable_name=str(name) if name is not None else None,
            generator_args=tuple(str(a) for a in data.get("generator_args", [])),
            site=Site.from_json(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class GlobalWrite:
    """One write/mutation of a module-level name inside a function."""

    target: str
    via: str  # "assign" | "subscript" | "attribute" | "method:<name>"
    site: Site

    def to_json(self) -> Dict[str, object]:
        return {"target": self.target, "via": self.via, "site": self.site.to_json()}

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "GlobalWrite":
        return cls(
            target=str(data["target"]),
            via=str(data["via"]),
            site=Site.from_json(data["site"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Project-relevant facts about one module-level function."""

    name: str
    line: int
    calls: Tuple[str, ...]
    global_writes: Tuple[GlobalWrite, ...]
    generator_params: Tuple[str, ...]

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "line": self.line,
            "calls": list(self.calls),
            "global_writes": [w.to_json() for w in self.global_writes],
            "generator_params": list(self.generator_params),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FunctionSummary":
        return cls(
            name=str(data["name"]),
            line=int(data["line"]),
            calls=tuple(str(c) for c in data.get("calls", [])),
            global_writes=tuple(
                GlobalWrite.from_json(w) for w in data.get("global_writes", [])
            ),
            generator_params=tuple(
                str(p) for p in data.get("generator_params", [])
            ),
        )


@dataclass(frozen=True)
class ClassSummary:
    """Project-relevant facts about one module-level class.

    ``state_keys`` / ``load_keys`` are the literal keys the class's
    ``state_dict`` returns / its ``load_state_dict`` reads; ``None`` when
    the method does not exist, paired with a ``*_dynamic`` flag when it
    exists but builds its keys dynamically (key matching is then skipped).
    """

    name: str
    bases: Tuple[str, ...]
    methods: Tuple[str, ...]
    site: Site
    mutated_attrs: Tuple[str, ...]
    mutation_site: Optional[Site]
    state_keys: Optional[Tuple[str, ...]]
    state_dynamic: bool
    state_site: Optional[Site]
    load_keys: Optional[Tuple[str, ...]]
    load_dynamic: bool
    load_site: Optional[Site]

    def has_method(self, name: str) -> bool:
        return name in self.methods

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "site": self.site.to_json(),
            "mutated_attrs": list(self.mutated_attrs),
            "mutation_site": (
                self.mutation_site.to_json() if self.mutation_site else None
            ),
            "state_keys": (
                list(self.state_keys) if self.state_keys is not None else None
            ),
            "state_dynamic": self.state_dynamic,
            "state_site": self.state_site.to_json() if self.state_site else None,
            "load_keys": (
                list(self.load_keys) if self.load_keys is not None else None
            ),
            "load_dynamic": self.load_dynamic,
            "load_site": self.load_site.to_json() if self.load_site else None,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ClassSummary":
        def opt_site(value: object) -> Optional[Site]:
            return Site.from_json(value) if value is not None else None  # type: ignore[arg-type]

        def opt_keys(value: object) -> Optional[Tuple[str, ...]]:
            if value is None:
                return None
            return tuple(str(k) for k in value)  # type: ignore[union-attr]

        return cls(
            name=str(data["name"]),
            bases=tuple(str(b) for b in data.get("bases", [])),
            methods=tuple(str(m) for m in data.get("methods", [])),
            site=Site.from_json(data["site"]),  # type: ignore[arg-type]
            mutated_attrs=tuple(str(a) for a in data.get("mutated_attrs", [])),
            mutation_site=opt_site(data.get("mutation_site")),
            state_keys=opt_keys(data.get("state_keys")),
            state_dynamic=bool(data.get("state_dynamic", False)),
            state_site=opt_site(data.get("state_site")),
            load_keys=opt_keys(data.get("load_keys")),
            load_dynamic=bool(data.get("load_dynamic", False)),
            load_site=opt_site(data.get("load_site")),
        )


@dataclass
class ModuleSummary:
    """One module's contribution to the project view (cache-serialisable)."""

    path: str
    module: Tuple[str, ...]
    #: Local binding -> dotted target ("numpy", "repro.sim.parallel",
    #: "repro.sim.parallel.run_item_on_world", ...).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Every dotted import target (module side), for the import graph.
    import_targets: Tuple[str, ...] = ()
    #: Top-level name -> kind ("class" | "function" | "assign" | "import").
    top_names: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Module-level names bound to a mutable container at import time.
    mutable_globals: Dict[str, Site] = field(default_factory=dict)
    obs_uses: Tuple[ObsUse, ...] = ()
    obs_declarations: Tuple[ObsDeclaration, ...] = ()
    submit_sites: Tuple[SubmitSite, ...] = ()
    #: Names passed as ``initializer=`` to a pool constructor.
    pool_initializers: Tuple[str, ...] = ()
    suppressions: Tuple[Suppression, ...] = ()

    @property
    def dotted(self) -> str:
        return ".".join(self.module)

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "module": list(self.module),
            "imports": dict(self.imports),
            "import_targets": list(self.import_targets),
            "top_names": dict(self.top_names),
            "functions": {k: v.to_json() for k, v in self.functions.items()},
            "classes": {k: v.to_json() for k, v in self.classes.items()},
            "mutable_globals": {
                k: v.to_json() for k, v in self.mutable_globals.items()
            },
            "obs_uses": [u.to_json() for u in self.obs_uses],
            "obs_declarations": [d.to_json() for d in self.obs_declarations],
            "submit_sites": [s.to_json() for s in self.submit_sites],
            "pool_initializers": list(self.pool_initializers),
            "suppressions": [
                {
                    "line": s.line,
                    "rules": list(s.rules),
                    "justification": s.justification,
                    "own_line": s.own_line,
                    "text": s.text,
                }
                for s in self.suppressions
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            path=str(data["path"]),
            module=tuple(str(p) for p in data["module"]),
            imports={str(k): str(v) for k, v in data.get("imports", {}).items()},
            import_targets=tuple(
                str(t) for t in data.get("import_targets", [])
            ),
            top_names={
                str(k): str(v) for k, v in data.get("top_names", {}).items()
            },
            functions={
                str(k): FunctionSummary.from_json(v)
                for k, v in data.get("functions", {}).items()
            },
            classes={
                str(k): ClassSummary.from_json(v)
                for k, v in data.get("classes", {}).items()
            },
            mutable_globals={
                str(k): Site.from_json(v)
                for k, v in data.get("mutable_globals", {}).items()
            },
            obs_uses=tuple(ObsUse.from_json(u) for u in data.get("obs_uses", [])),
            obs_declarations=tuple(
                ObsDeclaration.from_json(d)
                for d in data.get("obs_declarations", [])
            ),
            submit_sites=tuple(
                SubmitSite.from_json(s) for s in data.get("submit_sites", [])
            ),
            pool_initializers=tuple(
                str(n) for n in data.get("pool_initializers", [])
            ),
            suppressions=tuple(
                Suppression(
                    line=int(s["line"]),
                    rules=tuple(str(r) for r in s["rules"]),
                    justification=str(s["justification"]),
                    own_line=bool(s["own_line"]),
                    text=str(s.get("text", "")),
                )
                for s in data.get("suppressions", [])
            ),
        )


# --------------------------------------------------------------------- #
# Summary extraction (one AST pass per module)
# --------------------------------------------------------------------- #


def _site(ctx: ModuleContext, node: ast.AST) -> Site:
    lineno = getattr(node, "lineno", 1)
    return Site(
        line=lineno,
        col=getattr(node, "col_offset", 0),
        text=ctx.line_text(lineno),
    )


def _import_bindings(
    module_parts: Tuple[str, ...], node: ast.stmt
) -> List[Tuple[str, str]]:
    """``(local_name, dotted_target)`` pairs introduced by an import stmt."""
    bindings: List[Tuple[str, str]] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            bindings.append((local, target))
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            # Relative import: anchor on this module's package.
            package = list(module_parts[:-1]) if module_parts else []
            up = node.level - 1
            base = package[: len(package) - up] if up else package
            prefix = ".".join(base + ([node.module] if node.module else []))
        else:
            prefix = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = f"{prefix}.{alias.name}" if prefix else alias.name
            bindings.append((local, target))
    return bindings


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CONSTRUCTORS or (
            name is not None and name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
        )
    return False


def _assigned_names(target: ast.expr) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _assigned_names(element)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound inside a function body (params, assignments, defs)."""
    names: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        names.add(arg.arg)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_assigned_names(target))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            names.update(_assigned_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    names.update(_assigned_names(item.optional_vars))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                names.update(_assigned_names(generator.target))
    return names


def _nested_function_names(fn: ast.AST) -> Set[str]:
    return {
        node.name
        for node in ast.walk(fn)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not fn
    }


def _is_generator_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split(".")[-1].split("[")[0] == "Generator"
    name = dotted_name(annotation)
    return name is not None and name.split(".")[-1] == "Generator"


def _rng_locals(fn: ast.AST) -> Set[str]:
    """Local names bound to a freshly constructed numpy RNG inside ``fn``."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func)
            if callee and callee.split(".")[-1] in _RNG_CONSTRUCTORS:
                for target in node.targets:
                    names.update(_assigned_names(target))
    args = fn.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if _is_generator_annotation(arg.annotation):
            names.add(arg.arg)
    return names


def _collect_global_writes(
    ctx: ModuleContext, fn: ast.AST, module_level: Set[str]
) -> List[GlobalWrite]:
    """Writes/mutations of module-level names lexically inside ``fn``."""
    local = _local_bindings(fn)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    # A name declared ``global`` is module state even though assignments
    # to it appear in the local-bindings scan above.
    local -= declared_global
    writes: List[GlobalWrite] = []

    def module_name_of(expr: ast.expr) -> Optional[str]:
        """Base name of an expression when it is a module-level binding."""
        current = expr
        while isinstance(current, (ast.Subscript, ast.Attribute)):
            current = current.value
        if isinstance(current, ast.Name) and current.id not in local:
            if current.id in module_level or current.id in declared_global:
                return current.id
        return None

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        else:
            targets = []
        for target in targets:
            for element in _flatten(target):
                if isinstance(element, ast.Name):
                    if element.id in declared_global:
                        writes.append(
                            GlobalWrite(element.id, "assign", _site(ctx, node))
                        )
                elif isinstance(element, ast.Subscript):
                    base = module_name_of(element)
                    if base is not None:
                        writes.append(
                            GlobalWrite(base, "subscript", _site(ctx, node))
                        )
                elif isinstance(element, ast.Attribute):
                    base = module_name_of(element)
                    if base is not None:
                        writes.append(
                            GlobalWrite(base, "attribute", _site(ctx, node))
                        )
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            base = module_name_of(node.func.value)
            if base is not None:
                writes.append(
                    GlobalWrite(
                        base, f"method:{node.func.attr}", _site(ctx, node)
                    )
                )
    return writes


def _flatten(target: ast.expr) -> Iterable[ast.expr]:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flatten(element)
    elif isinstance(target, ast.Starred):
        yield from _flatten(target.value)
    else:
        yield target


def _collect_calls(fn: ast.AST) -> Tuple[str, ...]:
    calls: List[str] = []
    seen: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name not in seen:
                seen.add(name)
                calls.append(name)
    return tuple(calls)


def _classify_submitted(
    arg: ast.expr, nested: Set[str], local: Set[str], top: Set[str]
) -> Tuple[str, Optional[str]]:
    """What the first ``submit`` argument syntactically is."""
    if isinstance(arg, ast.Lambda):
        return "lambda", None
    if isinstance(arg, ast.Call):
        # functools.partial(f, ...) wraps f: classify the wrapped callable.
        callee = dotted_name(arg.func)
        if callee and callee.split(".")[-1] == "partial" and arg.args:
            return _classify_submitted(arg.args[0], nested, local, top)
        return "opaque", None
    if isinstance(arg, ast.Name):
        if arg.id in nested:
            return "nested", arg.id
        if arg.id in local and arg.id not in top:
            return "opaque", arg.id  # a local rebinding: cannot resolve
        return "name", arg.id
    if isinstance(arg, ast.Attribute):
        name = dotted_name(arg)
        if name is None:
            return "opaque", None
        if name.split(".")[0] == "self":
            return "self", name
        return "attribute", name
    return "opaque", None


def _collect_submit_sites(
    ctx: ModuleContext, fn: ast.AST, top: Set[str]
) -> List[SubmitSite]:
    nested = _nested_function_names(fn)
    local = _local_bindings(fn)
    rng_names = _rng_locals(fn)
    sites: List[SubmitSite] = []
    for node in ast.walk(fn):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            and node.args
        ):
            continue
        kind, name = _classify_submitted(node.args[0], nested, local, top)
        generator_args: List[str] = []
        for extra in list(node.args[1:]) + [kw.value for kw in node.keywords]:
            if isinstance(extra, ast.Call):
                callee = dotted_name(extra.func)
                if callee and callee.split(".")[-1] in _RNG_CONSTRUCTORS:
                    generator_args.append(callee)
            elif isinstance(extra, ast.Name) and extra.id in rng_names:
                generator_args.append(extra.id)
        sites.append(
            SubmitSite(
                callable_kind=kind,
                callable_name=name,
                generator_args=tuple(generator_args),
                site=_site(ctx, node),
            )
        )
    return sites


def _collect_pool_initializers(ctx: ModuleContext) -> Tuple[str, ...]:
    names: List[str] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None or callee.split(".")[-1] not in (
            "ProcessPoolExecutor",
            "make_worker_pool",
        ):
            continue
        for kw in node.keywords:
            if kw.arg == "initializer" and isinstance(kw.value, ast.Name):
                names.append(kw.value.id)
    return tuple(names)


def _bare_obs_helpers(ctx: ModuleContext) -> Dict[str, str]:
    """Local names bound to obs helpers via ``from repro.obs import inc``."""
    bare: Dict[str, str] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module in (
            "repro.obs",
            "repro.obs.registry",
        ):
            for alias in node.names:
                if alias.name in OBS_HELPERS:
                    bare[alias.asname or alias.name] = alias.name
    return bare


def _collect_obs_uses(ctx: ModuleContext) -> Tuple[ObsUse, ...]:
    bare = _bare_obs_helpers(ctx)
    uses: List[ObsUse] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        helper: Optional[str] = None
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in OBS_HELPERS
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
        ):
            helper = func.attr
        elif isinstance(func, ast.Name) and func.id in bare:
            helper = bare[func.id]
        if helper is None:
            continue
        name_arg = node.args[0]
        if isinstance(name_arg, ast.Constant) and isinstance(name_arg.value, str):
            uses.append(
                ObsUse(helper=helper, name=name_arg.value, site=_site(ctx, node))
            )
    return tuple(uses)


def _collect_obs_declarations(ctx: ModuleContext) -> Tuple[ObsDeclaration, ...]:
    if ctx.module != OBS_NAMES_MODULE:
        return ()
    declarations: List[ObsDeclaration] = []
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        kind = OBS_DECLARATION_VARS.get(target.id)
        if kind is None:
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if not isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            continue
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                declarations.append(
                    ObsDeclaration(
                        kind=kind,
                        name=element.value,
                        site=_site(ctx, element),
                    )
                )
    return tuple(declarations)


def _state_dict_keys(
    fn: ast.AST,
) -> Tuple[Optional[Tuple[str, ...]], bool]:
    """Literal keys of every dict a ``state_dict`` returns.

    Returns ``(keys, dynamic)``; dynamic means at least one return is not
    a fully literal-keyed dict display, so key matching must be skipped.
    """
    keys: List[str] = []
    dynamic = False
    saw_return = False
    for node in ast.walk(fn):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
            continue
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        saw_return = True
        value = node.value
        if not isinstance(value, ast.Dict):
            dynamic = True
            continue
        for key in value.keys:
            if key is None:  # ``**spread``
                dynamic = True
            elif isinstance(key, ast.Constant) and isinstance(key.value, str):
                if key.value not in keys:
                    keys.append(key.value)
            else:
                dynamic = True
    if not saw_return:
        dynamic = True
    return (tuple(keys), dynamic)


def _load_state_keys(fn: ast.AST) -> Tuple[Optional[Tuple[str, ...]], bool]:
    """Literal keys ``load_state_dict`` reads off its state parameter."""
    args = fn.args  # type: ignore[attr-defined]
    positional = args.posonlyargs + args.args
    if len(positional) < 2:
        return ((), True)
    state_name = positional[1].arg
    keys: List[str] = []
    dynamic = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Subscript):
            base = node.value
            if isinstance(base, ast.Name) and base.id == state_name:
                index = node.slice
                if isinstance(index, ast.Constant) and isinstance(
                    index.value, str
                ):
                    if index.value not in keys:
                        keys.append(index.value)
                else:
                    dynamic = True
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id == state_name
                and node.func.attr in ("get", "pop")
                and node.args
            ):
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    if key.value not in keys:
                        keys.append(key.value)
                else:
                    dynamic = True
        elif isinstance(node, ast.Name) and node.id == state_name:
            parent_types = ()  # plain reads of the whole dict are dynamic use
            del parent_types
    # Whole-dict uses (iteration, ``state.items()``, passing it on) make
    # the read set open-ended: treat any non-subscript/get use as dynamic.
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id == state_name
                and node.func.attr in ("items", "keys", "values")
            ):
                dynamic = True
        elif isinstance(node, (ast.For, ast.comprehension)):
            iter_expr = node.iter
            if isinstance(iter_expr, ast.Name) and iter_expr.id == state_name:
                dynamic = True
    return (tuple(keys), dynamic)


def _summarise_class(ctx: ModuleContext, node: ast.ClassDef) -> ClassSummary:
    bases = tuple(
        name for name in (dotted_name(base) for base in node.bases) if name
    )
    methods: List[str] = []
    mutated: List[str] = []
    mutation_site: Optional[Site] = None
    state_keys: Optional[Tuple[str, ...]] = None
    state_dynamic = False
    state_site: Optional[Site] = None
    load_keys: Optional[Tuple[str, ...]] = None
    load_dynamic = False
    load_site: Optional[Site] = None
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        methods.append(stmt.name)
        if stmt.name == "state_dict":
            state_keys, state_dynamic = _state_dict_keys(stmt)
            state_site = _site(ctx, stmt)
        elif stmt.name == "load_state_dict":
            load_keys, load_dynamic = _load_state_keys(stmt)
            load_site = _site(ctx, stmt)
        if stmt.name in _CONSTRUCTION_METHODS or stmt.name == "load_state_dict":
            continue
        positional = stmt.args.posonlyargs + stmt.args.args
        if not positional:
            continue
        self_name = positional[0].arg
        for inner in ast.walk(stmt):
            attr: Optional[str] = None
            if isinstance(inner, ast.Assign):
                targets = [t for target in inner.targets for t in _flatten(target)]
            elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                targets = list(_flatten(inner.target))
            else:
                targets = []
            for target in targets:
                attr = _self_attr(target, self_name)
                if attr is not None:
                    break
            if attr is None and isinstance(inner, ast.Call):
                if (
                    isinstance(inner.func, ast.Attribute)
                    and inner.func.attr in MUTATING_METHODS
                ):
                    attr = _self_attr(inner.func.value, self_name)
            if attr is not None and not attr.startswith("__"):
                if attr not in mutated:
                    mutated.append(attr)
                if mutation_site is None:
                    mutation_site = _site(ctx, inner)
    return ClassSummary(
        name=node.name,
        bases=bases,
        methods=tuple(methods),
        site=_site(ctx, node),
        mutated_attrs=tuple(mutated),
        mutation_site=mutation_site,
        state_keys=state_keys,
        state_dynamic=state_dynamic,
        state_site=state_site,
        load_keys=load_keys,
        load_dynamic=load_dynamic,
        load_site=load_site,
    )


def _self_attr(expr: ast.expr, self_name: str) -> Optional[str]:
    """``attr`` when ``expr`` is ``self.attr`` or a view into it."""
    current = expr
    while isinstance(current, ast.Subscript):
        current = current.value
    if (
        isinstance(current, ast.Attribute)
        and isinstance(current.value, ast.Name)
        and current.value.id == self_name
    ):
        return current.attr
    return None


def build_summary(ctx: ModuleContext) -> ModuleSummary:
    """Extract one module's :class:`ModuleSummary` from its parsed AST."""
    from repro.analysis.engine import parse_suppressions

    summary = ModuleSummary(path=ctx.path, module=ctx.module)
    import_targets: List[str] = []
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for local, target in _import_bindings(ctx.module, stmt):
                summary.imports[local] = target
                summary.top_names[local] = "import"
                import_targets.append(target)
            if isinstance(stmt, ast.Import):
                # ``import a.b`` binds ``a`` but imports the module
                # ``a.b`` — the graph needs the full dotted name.
                import_targets.extend(
                    alias.name for alias in stmt.names if "." in alias.name
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary.top_names[stmt.name] = "function"
        elif isinstance(stmt, ast.ClassDef):
            summary.top_names[stmt.name] = "class"
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for target in targets:
                for name in _assigned_names(target):
                    summary.top_names.setdefault(name, "assign")
                    if value is not None and _is_mutable_container(value):
                        summary.mutable_globals.setdefault(name, _site(ctx, stmt))
    summary.import_targets = tuple(import_targets)

    top = set(summary.top_names)
    module_level_fns: List[Tuple[str, ast.AST]] = [
        (stmt.name, stmt)
        for stmt in ctx.tree.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    submit_sites: List[SubmitSite] = []
    for name, fn in module_level_fns:
        summary.functions[name] = FunctionSummary(
            name=name,
            line=fn.lineno,
            calls=_collect_calls(fn),
            global_writes=tuple(_collect_global_writes(ctx, fn, top)),
            generator_params=tuple(
                arg.arg
                for arg in (
                    fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
                )
                if _is_generator_annotation(arg.annotation)
            ),
        )
        submit_sites.extend(_collect_submit_sites(ctx, fn, top))
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.ClassDef):
            summary.classes[stmt.name] = _summarise_class(ctx, stmt)
            for method in stmt.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    submit_sites.extend(
                        _collect_submit_sites(ctx, method, top)
                    )
    summary.obs_uses = _collect_obs_uses(ctx)
    summary.obs_declarations = _collect_obs_declarations(ctx)
    summary.submit_sites = tuple(submit_sites)
    summary.pool_initializers = _collect_pool_initializers(ctx)
    summary.suppressions = tuple(parse_suppressions(ctx.source))
    return summary


# --------------------------------------------------------------------- #
# The project view
# --------------------------------------------------------------------- #


class ProjectContext:
    """Cross-module indexes over a set of :class:`ModuleSummary` objects.

    All resolution helpers are *conservative*: they return ``None`` (or
    an empty set) whenever the answer cannot be established from the
    summaries, and rules must stay silent in that case.
    """

    #: Bound on import/re-export chains (cycles are also cut by the
    #: visited set; the bound keeps pathological chains cheap).
    _MAX_CHAIN = 16

    def __init__(self, summaries: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        for summary in summaries:
            if summary.module:
                self.modules[summary.dotted] = summary
        self._import_graph: Optional[Dict[str, Set[str]]] = None
        self._transitive: Dict[str, FrozenSet[str]] = {}
        self._call_graph: Optional[
            Dict[Tuple[str, str], Set[Tuple[str, str]]]
        ] = None

    # ---- import graph ------------------------------------------------- #

    def _module_of_target(self, target: str) -> Optional[str]:
        """Longest known-module prefix of a dotted import target."""
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    @property
    def import_graph(self) -> Dict[str, Set[str]]:
        """Project-internal import edges: module -> imported modules."""
        if self._import_graph is None:
            graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
            for name, summary in self.modules.items():
                for target in summary.import_targets:
                    resolved = self._module_of_target(target)
                    if resolved is not None and resolved != name:
                        graph[name].add(resolved)
            self._import_graph = graph
        return self._import_graph

    def transitive_imports(self, module: str) -> FrozenSet[str]:
        """Every project module reachable from ``module`` via imports."""
        cached = self._transitive.get(module)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [module]
        graph = self.import_graph
        while stack:
            current = stack.pop()
            for neighbour in graph.get(current, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        result = frozenset(seen)
        self._transitive[module] = result
        return result

    # ---- symbol resolution -------------------------------------------- #

    def resolve(
        self, module: str, name: str
    ) -> Optional[Tuple[str, str, str]]:
        """Resolve a dotted ``name`` used in ``module``.

        Returns ``(defining_module, symbol, kind)`` — ``kind`` one of
        ``"class"``/``"function"``/``"assign"``/``"module"`` — following
        import bindings and re-export chains, or ``None`` when the name
        does not resolve inside the project.
        """
        summary = self.modules.get(module)
        if summary is None:
            return None
        parts = name.split(".")
        head, rest = parts[0], parts[1:]
        kind = summary.top_names.get(head)
        if kind is None:
            return None
        if kind != "import":
            # Defined here.  A trailing attribute path on a local symbol
            # (``Foo.bar``) resolves to the symbol itself.
            return (module, head, kind)
        target = summary.imports[head] + ("." + ".".join(rest) if rest else "")
        return self._resolve_dotted(target, hops=0)

    def _resolve_dotted(
        self, target: str, hops: int
    ) -> Optional[Tuple[str, str, str]]:
        if hops > self._MAX_CHAIN:
            return None
        owner = self._module_of_target(target)
        if owner is None:
            return None
        remainder = target[len(owner):].lstrip(".")
        if not remainder:
            return (owner, "", "module")
        symbol = remainder.split(".")[0]
        summary = self.modules[owner]
        kind = summary.top_names.get(symbol)
        if kind is None:
            return None
        if kind == "import":
            return self._resolve_dotted(summary.imports[symbol], hops + 1)
        return (owner, symbol, kind)

    def resolve_class(
        self, module: str, name: str
    ) -> Optional[Tuple[str, ClassSummary]]:
        resolved = self.resolve(module, name)
        if resolved is None:
            return None
        owner, symbol, kind = resolved
        if kind != "class":
            return None
        summary = self.modules[owner].classes.get(symbol)
        if summary is None:
            return None
        return (owner, summary)

    def class_provides(
        self, module: str, cls: ClassSummary, method: str
    ) -> bool:
        """Whether ``cls`` (or a project-resolvable ancestor) defines
        ``method``.  Unresolvable bases count as *not* providing — the
        conservative direction for a coverage rule, with inline
        suppressions as the escape hatch."""
        seen: Set[Tuple[str, str]] = set()
        stack: List[Tuple[str, ClassSummary]] = [(module, cls)]
        while stack:
            owner, current = stack.pop()
            key = (owner, current.name)
            if key in seen:
                continue
            seen.add(key)
            if current.has_method(method):
                return True
            for base in current.bases:
                resolved = self.resolve_class(owner, base)
                if resolved is not None:
                    stack.append(resolved)
        return False

    # ---- call index ---------------------------------------------------- #

    @property
    def call_graph(self) -> Dict[Tuple[str, str], Set[Tuple[str, str]]]:
        """Named-call edges: ``(module, fn) -> {(module, fn), ...}``.

        Only direct calls to names that resolve to project module-level
        functions are indexed; method dispatch and higher-order calls are
        invisible (conservative by design).
        """
        if self._call_graph is None:
            graph: Dict[Tuple[str, str], Set[Tuple[str, str]]] = {}
            for name, summary in self.modules.items():
                for fn_name, fn in summary.functions.items():
                    edges: Set[Tuple[str, str]] = set()
                    for called in fn.calls:
                        resolved = self.resolve(name, called)
                        if resolved is None:
                            continue
                        owner, symbol, kind = resolved
                        if kind == "function":
                            edges.add((owner, symbol))
                    graph[(name, fn_name)] = edges
            self._call_graph = graph
        return self._call_graph

    def worker_entry_functions(self) -> Set[Tuple[str, str]]:
        """Module-level functions handed to a pool (``submit`` target or
        pool ``initializer=``), resolved project-wide."""
        entries: Set[Tuple[str, str]] = set()
        for name, summary in self.modules.items():
            for site in summary.submit_sites:
                if site.callable_kind in ("name", "attribute") and site.callable_name:
                    resolved = self.resolve(name, site.callable_name)
                    if resolved is not None and resolved[2] == "function":
                        entries.add((resolved[0], resolved[1]))
            for initializer in summary.pool_initializers:
                resolved = self.resolve(name, initializer)
                if resolved is not None and resolved[2] == "function":
                    entries.add((resolved[0], resolved[1]))
        return entries

    def worker_reachable_functions(self) -> Set[Tuple[str, str]]:
        """Transitive closure of :meth:`worker_entry_functions` over the
        named-call index: everything that may run inside a pool worker."""
        reachable = set(self.worker_entry_functions())
        graph = self.call_graph
        stack = list(reachable)
        while stack:
            current = stack.pop()
            for callee in graph.get(current, ()):
                if callee not in reachable:
                    reachable.add(callee)
                    stack.append(callee)
        return reachable

    # ---- obs index ----------------------------------------------------- #

    def obs_declarations(self) -> Dict[str, Dict[str, ObsDeclaration]]:
        """Declared metric names by kind, from ``repro.obs.names``."""
        declared: Dict[str, Dict[str, ObsDeclaration]] = {
            kind: {} for kind in OBS_DECLARATION_VARS.values()
        }
        names_module = self.modules.get(".".join(OBS_NAMES_MODULE))
        if names_module is not None:
            for declaration in names_module.obs_declarations:
                declared[declaration.kind][declaration.name] = declaration
        return declared

    def has_obs_names_module(self) -> bool:
        return ".".join(OBS_NAMES_MODULE) in self.modules
