"""GanDemandPredictor: the Info-RNN-GAN behind the predictor interface.

`OL_GAN` (Algorithm 2) interleaves prediction and learning per slot: the
generator predicts each request's data volume, the controller acts on the
prediction, then "discriminator D observes the real data volume of r_l and
calculates its loss" and the generator is refined.  :meth:`_after_observe`
implements exactly that per-slot feedback with a small number of online
training steps.

Conditioning channels (see :class:`repro.gan.Generator`): channel 0 is the
request's own previous demand; channel 1 is the previous demand averaged
over all requests sharing the request's latent code (its hotspot).  The
aggregate channel is the operational form of the paper's observation that
"users in the same location may have similar distributions of their data
volumes" — per-user jitter averages out of it, leaving the shared burst
state, which is exactly what the location latent `c` exists to expose.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.gan.infogan import GanLosses, InfoRnnGan
from repro.prediction.base import DemandPredictor
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["GanDemandPredictor"]


class GanDemandPredictor(DemandPredictor):
    """Predicts per-request demand with a (optionally pre-trained) InfoGAN.

    Parameters
    ----------
    codes:
        One-hot latent codes per request, shape ``(n_requests, code_dim)``
        — the location coding `c` of §V-B (see
        :func:`repro.workload.encode_request_locations`).
    window:
        Length `W` of the conditioning window fed to the generator.
    warmup_history:
        Optional pre-training data, shape ``(T0, n_requests)`` — the
        "small samples" of historical demand.
    pretrain_epochs / online_steps:
        Offline epochs over the warm-up windows, and per-slot fine-tuning
        steps after each observation (Algorithm 2 lines 14-15).
    n_noise_samples:
        Monte-Carlo draws of `z` averaged into each prediction.
    dtype:
        Forwarded to :class:`repro.gan.InfoRnnGan` — ``"float32"`` opts
        the whole model into the single-precision fast path.
    """

    def __init__(
        self,
        codes: np.ndarray,
        rng: np.random.Generator,
        window: int = 8,
        warmup_history: Optional[np.ndarray] = None,
        pretrain_epochs: int = 20,
        online_steps: int = 1,
        n_noise_samples: int = 4,
        hidden_size: int = 16,
        info_lambda: float = 0.5,
        supervised_weight: float = 5.0,
        supervised_quantile: float = 0.5,
        lr: float = 2e-3,
        dtype: str = "float64",
    ):
        codes = np.asarray(codes, dtype=float)
        if codes.ndim != 2:
            raise ValueError(f"codes must be (n_requests, code_dim), got {codes.shape}")
        super().__init__(codes.shape[0])
        require_positive("window", window)
        require_non_negative("online_steps", online_steps)
        require_positive("n_noise_samples", n_noise_samples)
        self._codes = codes
        self._window = int(window)
        self._online_steps = int(online_steps)
        self._n_noise_samples = int(n_noise_samples)
        # Group-mean projector: row r holds the averaging weights of the
        # group request r belongs to (codes are one-hot).
        counts = np.maximum(codes.sum(axis=0), 1.0)
        self._group_projector = codes @ (codes / counts).T  # (R, R)
        self.model = InfoRnnGan(
            code_dim=codes.shape[1],
            rng=rng,
            cond_channels=2,
            hidden_size=hidden_size,
            info_lambda=info_lambda,
            supervised_weight=supervised_weight,
            supervised_quantile=supervised_quantile,
            lr=lr,
            dtype=dtype,
        )
        self.loss_history: List = []
        if warmup_history is not None:
            warmup_history = np.asarray(warmup_history, dtype=float)
            if warmup_history.ndim != 2 or warmup_history.shape[1] != self.n_requests:
                raise ValueError(
                    f"warmup_history must be (T0, {self.n_requests}), "
                    f"got {warmup_history.shape}"
                )
            self.pretrain(warmup_history, epochs=pretrain_epochs)

    # ------------------------------------------------------------------ #
    # Conditioning construction
    # ------------------------------------------------------------------ #

    def _conditioning_from(self, demand_rows: np.ndarray) -> np.ndarray:
        """Per-slot conditioning channels from demand rows ``(W, R)``.

        Returns ``(W, R, 2)``: own demand and hotspot-mean demand.
        """
        own = demand_rows[:, :, np.newaxis]
        group = (demand_rows @ self._group_projector.T)[:, :, np.newaxis]
        return np.concatenate([own, group], axis=2)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def _build_windows(
        self, history: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Slice per-request training windows from a demand matrix.

        Returns ``(targets (N, W, 1), conditioning (N, W, 2), codes
        (N, cd))`` or ``None`` when the history is too short for a single
        window.  One training sample is one request over one window; the
        conditioning is built from the slots one step earlier.
        """
        horizon = history.shape[0]
        if horizon < 2:
            return None
        window = min(self._window, horizon - 1)
        conditioning_full = self._conditioning_from(history)  # (T, R, 2)
        targets, conditioning, codes = [], [], []
        # Stride by half-window for overlap without quadratic blowup.
        stride = max(1, window // 2)
        starts = list(range(1, horizon - window + 1, stride))
        if not starts:
            starts = [1]
        for request in range(self.n_requests):
            series = history[:, request]
            for start in starts:
                targets.append(series[start : start + window, np.newaxis])
                conditioning.append(
                    conditioning_full[start - 1 : start + window - 1, request, :]
                )
                codes.append(self._codes[request])
        return np.stack(targets), np.stack(conditioning), np.stack(codes)

    def pretrain(self, history: np.ndarray, epochs: int = 20) -> None:
        """Offline training on historical demand (the small sample)."""
        require_positive("epochs", epochs)
        built = self._build_windows(np.asarray(history, dtype=float))
        if built is None:
            raise ValueError(
                "warm-up history needs at least 2 slots to form a training window"
            )
        targets, conditioning, codes = built
        self.loss_history.extend(
            self.model.fit(targets, conditioning, codes, epochs=epochs)
        )

    def _after_observe(self, demands: np.ndarray) -> None:
        """Per-slot refinement (Algorithm 2's discriminator feedback)."""
        if self._online_steps == 0 or self.n_observed < 2:
            return
        history = self.history
        window = min(self._window, history.shape[0] - 1)
        # Both train_step inputs are loop-invariant: build the (W, R, 1)
        # targets directly (no transpose round-trip per step) and the
        # conditioning once.
        targets = history[-window:, :, np.newaxis]  # (W, R, 1)
        conditioning = self._conditioning_from(
            history[-window - 1 : -1]
        )  # (W, R, 2)
        for _ in range(self._online_steps):
            self.model.train_step(targets, conditioning, self._codes)

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, Any]:
        """Observed history, the full GAN state and the loss log."""
        state = super().state_dict()
        state["model"] = self.model.state_dict()
        state["loss_history"] = np.array(
            [
                [l.discriminator, l.adversarial, l.mutual_information, l.supervised]
                for l in self.loss_history
            ],
            dtype=float,
        ).reshape(len(self.loss_history), 4)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.model.load_state_dict(state["model"])
        losses = np.asarray(state["loss_history"], dtype=float).reshape(-1, 4)
        self.loss_history = [
            GanLosses(
                discriminator=float(row[0]),
                adversarial=float(row[1]),
                mutual_information=float(row[2]),
                supervised=float(row[3]),
            )
            for row in losses
        ]

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def predict_next(self) -> np.ndarray:
        """Generator forecast for the next slot, one value per request.

        Conditions on the last `W` observed demands; the conditioning
        window ends at the latest observation, so the generated value at
        the window's final step is the forecast for the upcoming slot.
        Falls back to zeros before any observation.
        """
        if self.n_observed == 0:
            return np.zeros(self.n_requests)
        history = self.history
        window = min(self._window, history.shape[0])
        conditioning = self._conditioning_from(history[-window:])  # (W, R, 2)
        generated = self.model.generate(
            self._codes,
            conditioning,
            n_samples=self._n_noise_samples,
        )
        return generated[-1, :, 0].copy()
