"""The auxiliary posterior `Q(c' | x)` of the InfoGAN construction (§V-B).

Maximising the mutual information `I(c^t; G(z^t, c^t))` directly is
intractable; the paper follows InfoGAN and maximises the variational lower
bound `L1(G, Q)` (Eq. 25) instead, "generating the direction Q(c'|x) to
approximate P(c|x)".  With a categorical (one-hot location) code, the
bound reduces — up to the constant entropy `H(c)` — to the negative
cross-entropy between Q's prediction and the code used to generate the
series.  The Q head is a linear layer over the discriminator's pooled
trunk features.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import categorical_cross_entropy
from repro.nn.layers import Dense, Module
from repro.nn.tensor import Tensor
from repro.utils.validation import require_positive

__all__ = ["QHead"]


class QHead(Module):
    """Predicts the latent code from discriminator trunk features."""

    def __init__(self, feature_size: int, code_dim: int, rng: np.random.Generator):
        require_positive("feature_size", feature_size)
        require_positive("code_dim", code_dim)
        self.code_dim = int(code_dim)
        self.head = Dense(feature_size, code_dim, rng)

    def forward(self, pooled_features: Tensor) -> Tensor:
        """Logits over latent codes, shape ``(B, code_dim)``."""
        return self.head(pooled_features)

    def info_loss(self, pooled_features: Tensor, codes: np.ndarray) -> Tensor:
        """Negative `L1(G, Q)` up to the constant `H(c)` (Eq. 25).

        Minimising this cross-entropy maximises the mutual-information
        lower bound; ``codes`` are the one-hot latents the generator was
        conditioned on.
        """
        logits = self.forward(pooled_features)
        return categorical_cross_entropy(logits, codes)
