"""The Info-RNN-GAN discriminator: two-layer Bi-LSTM + real/fake head.

"Discriminator D(G(z^t, c^t)) uses a two-layer Bi-LSTM to judge how close
the fake data is from the true data" (§V-B).  The Bi-LSTM trunk is shared
with the :class:`repro.gan.qhead.QHead`, which is the InfoGAN construction
(Q reuses the discriminator body, adding only a light head).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.layers import BiLSTM, Dense, Module
from repro.nn.recurrent import make_birnn
from repro.nn.tensor import Tensor
from repro.utils.validation import require_positive

__all__ = ["Discriminator"]


class Discriminator(Module):
    """`D(x)`: probability that a demand series is real.

    :meth:`forward` returns both the probability and the pooled trunk
    features so the Q head can reuse them without recomputing the Bi-LSTM.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        hidden_size: int = 16,
        num_layers: int = 2,
        rnn_type: str = "lstm",
    ):
        require_positive("hidden_size", hidden_size)
        self.bilstm = make_birnn(rnn_type, 1, hidden_size, rng, num_layers=num_layers)
        self.head = Dense(self.bilstm.output_size, 1, rng, activation="sigmoid")

    @property
    def feature_size(self) -> int:
        """Width of the pooled trunk features handed to the Q head."""
        return self.bilstm.output_size

    def forward(self, series: Tensor) -> Tuple[Tensor, Tensor]:
        """Judge a batch of series.

        ``series`` has shape ``(W, B, 1)``; returns ``(probabilities (B, 1),
        pooled_features (B, 2 * hidden))``.  Pooling is a mean over time —
        every slot of the window contributes to the verdict.
        """
        if series.ndim != 3 or series.shape[2] != 1:
            raise ValueError(f"series must have shape (W, B, 1), got {series.shape}")
        features = self.bilstm(series)  # (W, B, 2H)
        pooled = features.mean(axis=0)  # (B, 2H)
        probabilities = self.head(pooled)
        return probabilities, pooled
