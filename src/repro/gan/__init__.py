"""Info-RNN-GAN: the paper's small-sample demand predictor (§V).

Architecture (Fig. 2):

* **Generator G** — a Bi-LSTM over per-slot inputs ``[z^t, c, x_{t-1}]``
  (noise, one-hot location latent code, previous demand) with a softplus
  head producing the predicted demand series `G(z^t, c^t)`.
* **Discriminator D** — a two-layer Bi-LSTM over demand series, pooled
  and squashed to a real/fake probability (Eq. 23).
* **Q head** — shares D's trunk and recovers the latent code `c'` from a
  series; minimising its cross-entropy maximises the InfoGAN mutual-
  information lower bound `L1(G, Q)` (Eq. 25-26).

:class:`GanDemandPredictor` wraps the model behind the common
:class:`repro.prediction.DemandPredictor` interface used by `OL_GAN`.
"""

from repro.gan.discriminator import Discriminator
from repro.gan.evaluation import (
    autocorrelation_gap,
    latent_recovery_accuracy,
    marginal_ks_statistic,
)
from repro.gan.generator import Generator
from repro.gan.infogan import GanLosses, InfoRnnGan
from repro.gan.predictor import GanDemandPredictor
from repro.gan.qhead import QHead

__all__ = [
    "Discriminator",
    "autocorrelation_gap",
    "latent_recovery_accuracy",
    "marginal_ks_statistic",
    "Generator",
    "GanLosses",
    "InfoRnnGan",
    "GanDemandPredictor",
    "QHead",
]
