"""Info-RNN-GAN training: the min-max objective of Eqs. (23)-(26).

One :meth:`InfoRnnGan.train_step` performs

1. a **discriminator** update on `V'(D, G)` (Eq. 23): maximise
   `log D(rho) + log(1 - D(G(z, c)))` — implemented as BCE with labels
   real=1 / fake=0, generator detached;
2. a **generator + Q** update on Eq. (26): the non-saturating adversarial
   term `-log D(G(z, c))`, plus `lambda * CE(Q(G), c)` (the negative
   mutual-information bound `-L1(G, Q)`), plus a small supervised anchor
   `MSE(G(z, c), rho)`.

The supervised anchor is a documented addition (DESIGN.md §5): the paper's
discriminator "evaluates the quality of the prediction and feeds the
information to the generator"; a direct prediction-error term is the
stable realisation of that feedback loop at the tiny model/data sizes the
paper targets, while the adversarial and mutual-information terms shape
the distribution (burst sharpness) that plain regression smooths away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.gan.discriminator import Discriminator
from repro.gan.generator import Generator
from repro.gan.qhead import QHead
from repro.nn.functional import binary_cross_entropy, mse, pinball
from repro.nn.optim import Adam
from repro.nn.serialize import load_module_state_dict, module_state_dict
from repro.nn.tensor import Tensor, no_grad
from repro.state.snapshot import rng_state, set_rng_state
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["GanLosses", "InfoRnnGan"]


@dataclass(frozen=True)
class GanLosses:
    """Scalar losses of one training step."""

    discriminator: float
    adversarial: float
    mutual_information: float
    supervised: float

    @property
    def generator_total(self) -> float:
        return self.adversarial + self.mutual_information + self.supervised


class InfoRnnGan:
    """The full model: G, D, Q and their optimisers.

    Parameters
    ----------
    noise_dim, code_dim, hidden_size, num_layers:
        Architecture knobs (see :class:`Generator` / :class:`Discriminator`).
    info_lambda:
        The `lambda` of Eq. (24) weighting the mutual-information bound.
    supervised_weight:
        Weight of the prediction-error anchor (0 disables it, giving the
        pure InfoGAN objective).
    supervised_quantile:
        Quantile targeted by the anchor.  0.5 uses plain MSE; anything
        else uses the pinball loss — values above 0.5 bias the generator
        toward *over*-forecasting, which is the safe direction when the
        forecast drives capacity-constrained assignment (an under-forecast
        overloads a station; an over-forecast only wastes head-room).
    lr:
        Adam learning rate for the generator and discriminator updates.
    q_lr:
        Learning rate of the auxiliary Q head (defaults to ``10 * lr``):
        Q is a light linear probe chasing the generator's moving features,
        so it trains faster than the recurrent trunks.
    dtype:
        ``"float64"`` (default, exact gradcheck regime) or ``"float32"``
        (opt-in fast path: parameters, inputs and all intermediate
        activations run in single precision).  Float32 shifts every
        trained value — treat pinned expectations as holding only to
        float32 tolerance (see README "Performance").
    """

    def __init__(
        self,
        code_dim: int,
        rng: np.random.Generator,
        noise_dim: int = 4,
        cond_channels: int = 1,
        hidden_size: int = 16,
        num_layers: int = 2,
        rnn_type: str = "lstm",
        info_lambda: float = 0.5,
        supervised_weight: float = 5.0,
        supervised_quantile: float = 0.5,
        lr: float = 2e-3,
        q_lr: Optional[float] = None,
        dtype: str = "float64",
    ):
        require_non_negative("info_lambda", info_lambda)
        require_non_negative("supervised_weight", supervised_weight)
        if not 0.0 < supervised_quantile < 1.0:
            raise ValueError(
                f"supervised_quantile must be in (0, 1), got {supervised_quantile}"
            )
        require_positive("lr", lr)
        if dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {dtype!r}")
        self.dtype = np.dtype(dtype)
        self._rng = rng
        self.info_lambda = float(info_lambda)
        self.supervised_weight = float(supervised_weight)
        self.supervised_quantile = float(supervised_quantile)
        self.cond_channels = int(cond_channels)
        self.generator = Generator(
            noise_dim,
            code_dim,
            rng,
            cond_channels=cond_channels,
            hidden_size=hidden_size,
            num_layers=num_layers,
            rnn_type=rnn_type,
        )
        self.discriminator = Discriminator(
            rng, hidden_size=hidden_size, num_layers=num_layers, rnn_type=rnn_type
        )
        self.q_head = QHead(self.discriminator.feature_size, code_dim, rng)
        if self.dtype != np.float64:
            # Convert before the optimizers snapshot parameter shapes so
            # the Adam moment buffers come out in the same dtype.
            self.generator.astype(self.dtype)
            self.discriminator.astype(self.dtype)
            self.q_head.astype(self.dtype)
        if q_lr is None:
            q_lr = 10.0 * lr
        require_positive("q_lr", q_lr)
        self._d_optimizer = Adam(self.discriminator.parameters(), lr=lr)
        self._g_optimizer = Adam(self.generator.parameters(), lr=lr)
        self._q_optimizer = Adam(self.q_head.parameters(), lr=q_lr)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def train_step(
        self,
        real_series: np.ndarray,
        conditioning: np.ndarray,
        codes: np.ndarray,
    ) -> GanLosses:
        """One D update followed by one G+Q update.

        Shapes: ``real_series (W, B, 1)`` — the true demand windows
        `rho_l(t)`; ``conditioning (W, B, cond_channels)`` — channel 0 is
        the demand shifted one slot back; ``codes (B, code_dim)`` —
        one-hot latents.
        """
        real_series = np.asarray(real_series, dtype=self.dtype)
        conditioning = np.asarray(conditioning, dtype=self.dtype)
        codes = np.asarray(codes, dtype=self.dtype)
        if real_series.ndim != 3 or real_series.shape[2] != 1:
            raise ValueError(
                f"real_series must have shape (W, B, 1), got {real_series.shape}"
            )
        expected_cond = (real_series.shape[0], real_series.shape[1], self.cond_channels)
        if conditioning.shape != expected_cond:
            raise ValueError(
                f"conditioning shape {conditioning.shape} must be {expected_cond}"
            )
        window, batch = real_series.shape[0], real_series.shape[1]
        if codes.shape[0] != batch:
            raise ValueError(
                f"codes batch {codes.shape[0]} must match series batch {batch}"
            )

        prev_tensor = Tensor(conditioning)
        codes_tensor = Tensor(codes)

        # --- Discriminator step (Eq. 23) --------------------------------
        noise = self.generator.sample_noise(window, batch, self._rng)
        fake = self.generator(noise, codes_tensor, prev_tensor)
        fake_detached = fake.detach()  # stop gradient into G (shares data)

        self._d_optimizer.zero_grad()
        real_probs, _ = self.discriminator(Tensor(real_series))
        fake_probs, _ = self.discriminator(fake_detached)
        d_loss = binary_cross_entropy(
            real_probs, np.ones((batch, 1))
        ) + binary_cross_entropy(fake_probs, np.zeros((batch, 1)))
        d_loss.backward()
        self._d_optimizer.step()

        # --- Generator + Q step (Eq. 26) ---------------------------------
        self._g_optimizer.zero_grad()
        self._q_optimizer.zero_grad()
        self.discriminator.zero_grad()  # trunk is reused, not updated here
        noise = self.generator.sample_noise(window, batch, self._rng)
        fake = self.generator(noise, codes_tensor, prev_tensor)
        fake_probs, pooled = self.discriminator(fake)
        adversarial = binary_cross_entropy(fake_probs, np.ones((batch, 1)))
        info = self.q_head.info_loss(pooled, codes) * self.info_lambda
        if self.supervised_quantile == 0.5:
            anchor = mse(fake, real_series)
        else:
            anchor = pinball(fake, real_series, self.supervised_quantile)
        supervised = anchor * self.supervised_weight
        g_loss = adversarial + info + supervised
        g_loss.backward()
        self._g_optimizer.step()
        self._q_optimizer.step()

        return GanLosses(
            discriminator=d_loss.item(),
            adversarial=adversarial.item(),
            mutual_information=info.item(),
            supervised=supervised.item(),
        )

    def fit(
        self,
        windows: np.ndarray,
        conditioning: np.ndarray,
        codes: np.ndarray,
        epochs: int = 30,
        batch_size: int = 16,
    ) -> list:
        """Train over a dataset of windows; returns per-epoch mean losses.

        ``windows``: ``(N, W, 1)``; ``conditioning``:
        ``(N, W, cond_channels)``; ``codes``: ``(N, code_dim)``.
        """
        require_positive("epochs", epochs)
        require_positive("batch_size", batch_size)
        windows = np.asarray(windows, dtype=float)
        previous = np.asarray(conditioning, dtype=float)
        codes = np.asarray(codes, dtype=float)
        if windows.ndim != 3:
            raise ValueError(f"windows must be (N, W, 1), got {windows.shape}")
        n = windows.shape[0]
        history = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_losses = []
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                # (N, W, 1) -> (W, B, 1)
                batch_windows = windows[batch_idx].transpose(1, 0, 2)
                batch_previous = previous[batch_idx].transpose(1, 0, 2)
                losses = self.train_step(batch_windows, batch_previous, codes[batch_idx])
                epoch_losses.append(losses)
            history.append(
                GanLosses(
                    discriminator=float(np.mean([l.discriminator for l in epoch_losses])),
                    adversarial=float(np.mean([l.adversarial for l in epoch_losses])),
                    mutual_information=float(
                        np.mean([l.mutual_information for l in epoch_losses])
                    ),
                    supervised=float(np.mean([l.supervised for l in epoch_losses])),
                )
            )
        return history

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state: all module weights, optimizer slots and
        the training RNG position (see :mod:`repro.state`)."""
        return {
            "generator": module_state_dict(self.generator),
            "discriminator": module_state_dict(self.discriminator),
            "q_head": module_state_dict(self.q_head),
            "d_optimizer": self._d_optimizer.state_dict(),
            "g_optimizer": self._g_optimizer.state_dict(),
            "q_optimizer": self._q_optimizer.state_dict(),
            "rng": rng_state(self._rng),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot into a same-architecture
        model, in place."""
        load_module_state_dict(self.generator, state["generator"])
        load_module_state_dict(self.discriminator, state["discriminator"])
        load_module_state_dict(self.q_head, state["q_head"])
        self._d_optimizer.load_state_dict(state["d_optimizer"])
        self._g_optimizer.load_state_dict(state["g_optimizer"])
        self._q_optimizer.load_state_dict(state["q_optimizer"])
        set_rng_state(self._rng, state["rng"])

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #

    def generate(
        self,
        codes: np.ndarray,
        conditioning: np.ndarray,
        n_samples: int = 4,
    ) -> np.ndarray:
        """Expected demand series per request: mean over ``n_samples`` draws.

        ``conditioning (W, B, cond_channels)``, ``codes (B, code_dim)``;
        returns ``(W, B, 1)``.  Runs under :class:`~repro.nn.tensor.no_grad`
        — inference records no autograd graph at all (this is the path
        behind ``GanDemandPredictor.predict_next``).
        """
        require_positive("n_samples", n_samples)
        previous = np.asarray(conditioning, dtype=self.dtype)
        codes_tensor = Tensor(np.asarray(codes, dtype=self.dtype))
        prev_tensor = Tensor(previous)
        window, batch = previous.shape[0], previous.shape[1]
        draws = []
        with no_grad():
            for _ in range(n_samples):
                noise = self.generator.sample_noise(window, batch, self._rng)
                draws.append(self.generator(noise, codes_tensor, prev_tensor).data)
        return np.mean(draws, axis=0)
