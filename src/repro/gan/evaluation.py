"""GAN sample-quality evaluation: does `G(z, c)` match the real demand?

Forecast error (the `abl-pred` benchmark) measures only the conditional
mean; a *generative* model should match the whole distribution and keep
its latent code recoverable (the InfoGAN promise).  These metrics quantify
both:

* :func:`marginal_ks_statistic` — two-sample Kolmogorov-Smirnov distance
  between real and generated per-slot volumes (0 = identical marginals);
* :func:`autocorrelation_gap` — |lag-1 autocorrelation(real) - (fake)|,
  the temporal-structure match a per-slot marginal cannot see;
* :func:`latent_recovery_accuracy` — how often the trained Q head
  recovers the code a series was generated with (the practical readout of
  the mutual-information term `I(c; G(z, c))` of Eq. 24).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from repro.gan.infogan import InfoRnnGan
from repro.nn.tensor import Tensor, no_grad
from repro.workload.stats import autocorrelation

__all__ = [
    "marginal_ks_statistic",
    "autocorrelation_gap",
    "latent_recovery_accuracy",
]


def _flatten_series(series: np.ndarray) -> np.ndarray:
    series = np.asarray(series, dtype=float)
    if series.ndim != 3 or series.shape[2] != 1:
        raise ValueError(f"series must have shape (W, B, 1), got {series.shape}")
    return series.reshape(-1)


def marginal_ks_statistic(real: np.ndarray, generated: np.ndarray) -> float:
    """Two-sample KS distance between per-slot volume marginals (in [0, 1])."""
    real_flat = _flatten_series(real)
    fake_flat = _flatten_series(generated)
    statistic, _ = scipy_stats.ks_2samp(real_flat, fake_flat)
    return float(statistic)


def autocorrelation_gap(real: np.ndarray, generated: np.ndarray) -> float:
    """|lag-1 autocorrelation difference|, averaged over the batch."""
    real = np.asarray(real, dtype=float)
    generated = np.asarray(generated, dtype=float)
    if real.shape != generated.shape:
        raise ValueError(
            f"real {real.shape} and generated {generated.shape} must match"
        )
    if real.shape[0] < 3:
        raise ValueError("need windows of at least 3 slots for autocorrelation")
    gaps = []
    for b in range(real.shape[1]):
        r = autocorrelation(real[:, b, 0] + 1e-9, lag=1)
        f = autocorrelation(generated[:, b, 0] + 1e-9, lag=1)
        gaps.append(abs(r - f))
    return float(np.mean(gaps))


def latent_recovery_accuracy(
    gan: InfoRnnGan,
    conditioning: np.ndarray,
    codes: np.ndarray,
    n_samples: int = 1,
) -> float:
    """Fraction of generated series whose code the Q head recovers.

    Generates from each (conditioning, code) pair and asks `Q(c' | G)`;
    chance level is `1 / code_dim`, a trained InfoGAN should sit well
    above it.
    """
    conditioning = np.asarray(conditioning, dtype=float)
    codes = np.asarray(codes, dtype=float)
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    correct, total = 0, 0
    for _ in range(n_samples):
        generated = gan.generate(codes, conditioning, n_samples=1)
        # Discriminator-only evaluation: no training follows, so record
        # no graph.
        with no_grad():
            _, pooled = gan.discriminator(Tensor(generated))
            logits = gan.q_head(pooled).data
        predicted = logits.argmax(axis=1)
        actual = codes.argmax(axis=1)
        correct += int((predicted == actual).sum())
        total += codes.shape[0]
    return correct / total
