"""The Info-RNN-GAN generator: Bi-LSTM + softplus demand head.

Per-slot input is the concatenation of the noise vector `z^t`, the latent
code `c` (constant over the window: a user's location does not change
within a monitoring window) and the previous observed demand `x_{t-1}`
(teacher forcing).  The paper's generator "adopts a Bi-LSTM to learn the
features of user features" and predicts the data volume per slot; demand
volumes are non-negative, so the head is softplus rather than the paper's
softmax-over-levels (documented substitution: continuous volumes need a
continuous head, and softplus preserves the positivity the softmax
discretisation provided).
"""

from __future__ import annotations

import numpy as np

from repro.nn.fused import sequence_kernels_enabled
from repro.nn.functional import softplus
from repro.nn.layers import Dense, Module
from repro.nn.recurrent import make_birnn
from repro.nn.tensor import Tensor, concat, no_grad, stack
from repro.utils.validation import require_positive

__all__ = ["Generator"]


class Generator(Module):
    """`G(z^t, c^t)`: generates/forecasts a demand series.

    Parameters
    ----------
    noise_dim:
        Dimension of the per-slot noise vector `z^t`.
    code_dim:
        Dimension of the one-hot latent code `c` (hotspots + 1).
    cond_channels:
        Number of conditioning channels per slot.  Channel 0 is always the
        request's own previous demand `x_{t-1}`; the demand predictor adds
        a second channel carrying the *hotspot-aggregate* previous demand
        ("users in the same location may have similar distributions of
        their data volumes", §V-A — the aggregate is the cleaner burst
        signal that motivates the location latent in the first place).
    hidden_size:
        Bi-LSTM hidden width per direction (the paper stresses *small
        samples*, so small widths are the intended regime).
    num_layers:
        Bi-LSTM depth (the paper uses a "bidirectional two-layer loop RNN").
    """

    def __init__(
        self,
        noise_dim: int,
        code_dim: int,
        rng: np.random.Generator,
        cond_channels: int = 1,
        hidden_size: int = 16,
        num_layers: int = 2,
        rnn_type: str = "lstm",
    ):
        require_positive("noise_dim", noise_dim)
        require_positive("code_dim", code_dim)
        require_positive("cond_channels", cond_channels)
        require_positive("hidden_size", hidden_size)
        self.noise_dim = int(noise_dim)
        self.code_dim = int(code_dim)
        self.cond_channels = int(cond_channels)
        input_size = noise_dim + code_dim + cond_channels  # [z, c, conditioning]
        self.bilstm = make_birnn(
            rnn_type, input_size, hidden_size, rng, num_layers=num_layers
        )
        self.head = Dense(self.bilstm.output_size, 1, rng)

    def forward(self, noise: Tensor, codes: Tensor, conditioning: Tensor) -> Tensor:
        """Generate one demand value per slot.

        Shapes: ``noise (W, B, noise_dim)``, ``codes (B, code_dim)``,
        ``conditioning (W, B, cond_channels)`` (channel 0: the demand
        observed one slot earlier); returns ``(W, B, 1)`` of
        strictly-positive predicted volumes.
        """
        if noise.ndim != 3 or noise.shape[2] != self.noise_dim:
            raise ValueError(
                f"noise must have shape (W, B, {self.noise_dim}), got {noise.shape}"
            )
        if codes.ndim != 2 or codes.shape[1] != self.code_dim:
            raise ValueError(
                f"codes must have shape (B, {self.code_dim}), got {codes.shape}"
            )
        if conditioning.shape != (noise.shape[0], noise.shape[1], self.cond_channels):
            raise ValueError(
                f"conditioning must have shape ({noise.shape[0]}, "
                f"{noise.shape[1]}, {self.cond_channels}), got {conditioning.shape}"
            )
        window = noise.shape[0]
        if sequence_kernels_enabled() and not (
            noise.requires_grad or codes.requires_grad or conditioning.requires_grad
        ):
            # The usual case: all three inputs are constants (noise, one-hot
            # codes, observed demands), so the per-slot [z_t, c, x_{t-1}]
            # assembly needs no graph — one numpy concatenate replaces
            # W concat nodes + a stack node, bit-identically.
            batch = noise.shape[1]
            with no_grad():
                # Raw-buffer reads are safe here: the branch guard above
                # proved none of the inputs requires a gradient, so there
                # is no graph to detach from.
                sequence = Tensor(
                    np.concatenate(
                        [
                            noise.data,
                            np.broadcast_to(
                                codes.data[np.newaxis],
                                (window, batch, self.code_dim),
                            ),
                            conditioning.data,
                        ],
                        axis=2,
                    )
                )
        else:
            # Broadcast the constant code across time by re-stacking.
            steps = [
                concat([noise[t], codes, conditioning[t]], axis=-1)
                for t in range(window)
            ]
            sequence = stack(steps, axis=0)
        features = self.bilstm(sequence)
        flat = features.reshape(window * noise.shape[1], self.bilstm.output_size)
        raw = self.head(flat).reshape(window, noise.shape[1], 1)
        return softplus(raw)

    def sample_noise(self, window: int, batch: int, rng: np.random.Generator) -> Tensor:
        """Draw `z^t` for a window: standard normal, shape ``(W, B, nz)``.

        Drawn in float64 (so the stream matches seeded expectations) and
        cast to the generator's parameter dtype.
        """
        require_positive("window", window)
        require_positive("batch", batch)
        draw = rng.normal(0.0, 1.0, size=(window, batch, self.noise_dim))
        return Tensor(draw, dtype=self.head.weight.data.dtype)
