"""The stable public facade: one import surface for the whole library.

Everything a typical user needs — building worlds through the
registries, running a single simulation, a repetition study, a
declarative campaign, or a long-running decision service — is
re-exported here under its canonical name::

    from repro.api import (
        RunConfig, ServeConfig,
        make_controller, make_topology, make_workload, make_predictor,
        run_simulation, run_repetitions, run_campaign, serve,
    )

The facade is the API-stability contract (see the table in README.md):
names exported here keep their signatures across releases, with
deprecated spellings warned for at least one release before removal.
Anything *not* exported here — module internals, the analysis rule
engine, the figure code — may change without notice.

Import cost note: importing :mod:`repro.api` pulls in the full stack
(core + mec + workload + prediction + sim + campaigns + serve).  Code
that only needs one layer can keep importing that layer's package
directly; the facade re-exports the same objects, so isinstance checks
and registrations interoperate either way.
"""

from __future__ import annotations

from repro.campaigns import (
    CampaignResult,
    CampaignSpec,
    ScenarioSpec,
    load_campaign_toml,
    run_campaign,
)
from repro.core import Controller, make_controller, register_controller
from repro.mec import MECNetwork, make_topology, register_topology
from repro.prediction import make_predictor, register_predictor
from repro.serve import DecisionServer, Placement, ServeConfig, serve
from repro.sim import (
    RepetitionStudy,
    RunConfig,
    SimulationResult,
    compare_controllers,
    run_repetitions,
    run_simulation,
)
from repro.utils.seeding import RngRegistry
from repro.workload import DemandModel, make_workload, register_workload

__all__ = [
    # world building (registries)
    "make_controller",
    "make_topology",
    "make_workload",
    "make_predictor",
    "register_controller",
    "register_topology",
    "register_workload",
    "register_predictor",
    "Controller",
    "MECNetwork",
    "DemandModel",
    "RngRegistry",
    # execution entry points + their shared config
    "RunConfig",
    "run_simulation",
    "run_repetitions",
    "run_campaign",
    "compare_controllers",
    # results
    "SimulationResult",
    "RepetitionStudy",
    "CampaignResult",
    # campaigns (declarative)
    "CampaignSpec",
    "ScenarioSpec",
    "load_campaign_toml",
    # serving
    "ServeConfig",
    "serve",
    "DecisionServer",
    "Placement",
]
