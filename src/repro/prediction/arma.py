"""The AR predictor of baseline `OL_Reg` (Eq. 27).

The paper's comparison predictor is an "autoregressive moving average
(ARMA)" that is written as a pure AR with fixed decaying weights:

    rho_hat(t) = a_1 * rho(t-1) + a_2 * rho(t-2) + ... + a_p * rho(t-p)

with ``0 <= a_i <= 1``, ``sum a_i = 1`` and ``a_i`` non-increasing in the
lag.  The default weights are the normalised linear taper
``a_i ∝ (p + 1 - i)``; custom weights satisfying the constraints are
accepted.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.prediction.base import DemandPredictor
from repro.utils.validation import require_positive

__all__ = ["ArPredictor"]


def _default_weights(order: int) -> np.ndarray:
    taper = np.arange(order, 0, -1, dtype=float)  # p, p-1, ..., 1
    return taper / taper.sum()


class ArPredictor(DemandPredictor):
    """Fixed-weight AR(p) demand predictor (Eq. 27).

    ``weights[0]`` multiplies the most recent observation.  Before ``p``
    observations exist, the available prefix of weights is renormalised
    over the observed slots; with no observations the prediction is zero.
    """

    def __init__(
        self,
        n_requests: int,
        order: int = 5,
        weights: Optional[Sequence[float]] = None,
    ):
        super().__init__(n_requests)
        require_positive("order", order)
        self._order = int(order)
        if weights is None:
            self._weights = _default_weights(self._order)
        else:
            w = np.asarray(list(weights), dtype=float)
            if w.shape != (self._order,):
                raise ValueError(
                    f"weights must have length {self._order}, got {w.shape}"
                )
            if np.any(w < 0) or np.any(w > 1):
                raise ValueError("weights must lie in [0, 1] (Eq. 27)")
            if not np.isclose(w.sum(), 1.0):
                raise ValueError(f"weights must sum to 1, got {w.sum()}")
            if np.any(np.diff(w) > 1e-12):
                raise ValueError(
                    "weights must be non-increasing in the lag (a_p1 >= a_p2 "
                    "for p1 < p2, Eq. 27)"
                )
            self._weights = w

    @property
    def order(self) -> int:
        """The AR order `p`."""
        return self._order

    @property
    def weights(self) -> np.ndarray:
        """The lag weights ``a_1..a_p`` (copy)."""
        return self._weights.copy()

    def predict_next(self) -> np.ndarray:
        if self.n_observed == 0:
            return np.zeros(self.n_requests)
        available = min(self.n_observed, self._order)
        recent = self.history[-available:][::-1]  # most recent first
        weights = self._weights[:available]
        weights = weights / weights.sum()
        return np.einsum("i,ij->j", weights, recent)
