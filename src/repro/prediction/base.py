"""The predictor interface shared by ARMA, EWMA and the GAN.

Protocol: the controller calls :meth:`predict_next` at the start of a slot
(before demands are known) and :meth:`observe` at the end of the slot with
the realised demands.  Predictors keep their own history buffer — a
capacity-doubling ``(T, n_requests)`` array, so :attr:`history` is an
O(1) view instead of re-stacking a list of rows every slot.
"""

from __future__ import annotations

import abc
from typing import Any, Dict

import numpy as np

from repro.utils.validation import require_positive

__all__ = [
    "DemandPredictor",
    "LastValuePredictor",
    "MeanPredictor",
    "OraclePredictor",
]


class DemandPredictor(abc.ABC):
    """Predicts the next slot's per-request demand vector."""

    def __init__(self, n_requests: int):
        require_positive("n_requests", n_requests)
        self._n_requests = int(n_requests)
        self._history_buffer = np.zeros((0, self._n_requests))
        self._n_observed = 0

    @property
    def n_requests(self) -> int:
        return self._n_requests

    @property
    def n_observed(self) -> int:
        """How many slots of demand have been observed so far."""
        return self._n_observed

    @property
    def history(self) -> np.ndarray:
        """Observed demand matrix, shape ``(n_observed, n_requests)``.

        A read-only view of the internal buffer (no copy, no re-stack);
        take a ``.copy()`` to hold it across later observations.
        """
        view = self._history_buffer[: self._n_observed]
        view.flags.writeable = False
        return view

    def observe(self, demands: np.ndarray) -> None:
        """Record the realised demand vector of the slot that just ended."""
        demands = np.asarray(demands, dtype=float)
        if demands.shape != (self._n_requests,):
            raise ValueError(
                f"expected demand vector of shape ({self._n_requests},), "
                f"got {demands.shape}"
            )
        if np.any(demands < 0):
            raise ValueError("demands must be non-negative")
        if self._n_observed == self._history_buffer.shape[0]:
            grown = np.zeros(
                (max(4, 2 * self._history_buffer.shape[0]), self._n_requests)
            )
            grown[: self._n_observed] = self._history_buffer[: self._n_observed]
            self._history_buffer = grown
        self._history_buffer[self._n_observed] = demands
        self._n_observed += 1
        self._after_observe(demands)

    def _after_observe(self, demands: np.ndarray) -> None:
        """Hook for online fine-tuning (default no-op)."""

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state (see :mod:`repro.state`).

        The base serializes the observed history; subclasses with extra
        mutable state (model weights, optimizers) extend this dict.
        """
        return {
            "n_requests": self._n_requests,
            "history": self.history.copy(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        if int(state["n_requests"]) != self._n_requests:
            raise ValueError(
                f"checkpoint covers {state['n_requests']} requests, "
                f"this predictor covers {self._n_requests}"
            )
        history = np.asarray(state["history"], dtype=float)
        if history.ndim != 2 or history.shape[1] != self._n_requests:
            raise ValueError(
                f"checkpoint history has shape {history.shape}, expected "
                f"(n_observed, {self._n_requests})"
            )
        self._history_buffer = history.copy()
        self._n_observed = int(history.shape[0])

    @abc.abstractmethod
    def predict_next(self) -> np.ndarray:
        """Predicted demand vector for the upcoming slot."""

    def prediction_error(self, actual: np.ndarray) -> float:
        """Mean absolute error of :meth:`predict_next` against ``actual``."""
        predicted = self.predict_next()
        actual = np.asarray(actual, dtype=float)
        if actual.shape != predicted.shape:
            raise ValueError(
                f"actual shape {actual.shape} must match predictions "
                f"{predicted.shape}"
            )
        return float(np.mean(np.abs(predicted - actual)))


class LastValuePredictor(DemandPredictor):
    """Persistence baseline: next = last observed (zeros before any data)."""

    def predict_next(self) -> np.ndarray:
        if self._n_observed == 0:
            return np.zeros(self._n_requests)
        return self._history_buffer[self._n_observed - 1].copy()


class MeanPredictor(DemandPredictor):
    """Running-mean baseline: next = mean of all observed slots."""

    def predict_next(self) -> np.ndarray:
        if self._n_observed == 0:
            return np.zeros(self._n_requests)
        return self.history.mean(axis=0)


class OraclePredictor(DemandPredictor):
    """Clairvoyant upper bound: reads the true demand model (ablations only).

    Predicts slot ``n_observed`` (the next one) straight from the demand
    model, so its error is exactly zero — the ceiling against which GAN/AR
    predictors are scored.
    """

    def __init__(self, demand_model):
        super().__init__(demand_model.n_requests)
        self._model = demand_model

    def predict_next(self) -> np.ndarray:
        return self._model.demand_at(self.n_observed)
