"""Exponentially-weighted moving-average predictor (extension baseline).

Not in the paper; used by the prediction ablation benchmark as a stronger
classical baseline than the fixed-weight AR, to show where the GAN's edge
comes from.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.prediction.base import DemandPredictor
from repro.utils.validation import require_probability

__all__ = ["EwmaPredictor"]


class EwmaPredictor(DemandPredictor):
    """`s_t = alpha * x_t + (1 - alpha) * s_{t-1}`; predicts `s_t`."""

    def __init__(self, n_requests: int, alpha: float = 0.4):
        super().__init__(n_requests)
        require_probability("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be strictly positive")
        self._alpha = float(alpha)
        self._state: np.ndarray = np.zeros(n_requests)
        self._initialised = False

    @property
    def alpha(self) -> float:
        return self._alpha

    def _after_observe(self, demands: np.ndarray) -> None:
        if not self._initialised:
            self._state = demands.copy()
            self._initialised = True
        else:
            self._state = self._alpha * demands + (1.0 - self._alpha) * self._state

    def predict_next(self) -> np.ndarray:
        if not self._initialised:
            return np.zeros(self.n_requests)
        return self._state.copy()

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["ewma_state"] = self._state.copy()
        state["initialised"] = self._initialised
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._state = np.asarray(state["ewma_state"], dtype=float).copy()
        self._initialised = bool(state["initialised"])
