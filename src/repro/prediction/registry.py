"""Named predictor factories: ``make_predictor``.

The predictor counterpart of :func:`repro.core.make_controller`: the §V
demand forecasters are registered by name, the name is stamped onto the
built predictor (``predictor.predictor_name``) and enforced as its
identity, so campaign specs and checkpoints can pin which forecaster a
predictive controller variant used.

Factories are called as ``factory(n_requests, rng, **options)``.  The
closed-form predictors (``last``, ``mean``, ``ewma``, ``ar``) draw
nothing from ``rng``; the ``gan`` entry (the paper's InfoGAN forecaster)
is registered lazily — :mod:`repro.gan` is only imported when the name is
actually built — and requires the caller to supply the location ``codes``
its conditioning needs.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

import numpy as np

from repro.prediction.arma import ArPredictor
from repro.prediction.base import DemandPredictor, LastValuePredictor, MeanPredictor
from repro.prediction.ewma import EwmaPredictor
from repro.utils.registry import Registry

__all__ = [
    "PREDICTORS",
    "PredictorFactory",
    "register_predictor",
    "predictor_names",
    "make_predictor",
]

PredictorFactory = Callable[..., DemandPredictor]

#: The predictor registry instance (names are campaign-spec identities).
PREDICTORS: Registry[DemandPredictor] = Registry(
    "predictor",
    identity=lambda predictor: getattr(predictor, "predictor_name", None),
)


def register_predictor(name: str, factory: PredictorFactory) -> None:
    """Register ``factory`` under ``name`` (must be new and non-empty).

    The built predictor must carry ``predictor_name == name`` —
    :func:`make_predictor` enforces it, mirroring the controller registry.
    """
    PREDICTORS.register(name, factory)


def predictor_names() -> Tuple[str, ...]:
    """All registered predictor names, sorted."""
    return PREDICTORS.names()


def make_predictor(
    name: str,
    n_requests: int,
    rng: np.random.Generator,
    **options: Any,
) -> DemandPredictor:
    """Build the predictor registered under ``name``.

    ``options`` are the predictor's own tuning parameters (``alpha`` for
    ``ewma``, ``order``/``weights`` for ``ar``, the GAN hyper-parameters
    for ``gan``), forwarded verbatim.
    """
    return PREDICTORS.make(name, n_requests, rng, **options)


def _stamped(predictor: DemandPredictor, name: str) -> DemandPredictor:
    predictor.predictor_name = name
    return predictor


def _last(
    n_requests: int, rng: np.random.Generator, **options: Any
) -> DemandPredictor:
    """Repeats the most recent observation."""
    del rng
    return _stamped(LastValuePredictor(n_requests, **options), "last")


def _mean(
    n_requests: int, rng: np.random.Generator, **options: Any
) -> DemandPredictor:
    """Running mean of all observations."""
    del rng
    return _stamped(MeanPredictor(n_requests, **options), "mean")


def _ewma(
    n_requests: int, rng: np.random.Generator, **options: Any
) -> DemandPredictor:
    """Exponentially weighted moving average."""
    del rng
    return _stamped(EwmaPredictor(n_requests, **options), "ewma")


def _ar(
    n_requests: int, rng: np.random.Generator, **options: Any
) -> DemandPredictor:
    """Fixed-weight AR(p), Eq. 27 (what OL_Reg runs on)."""
    del rng
    return _stamped(ArPredictor(n_requests, **options), "ar")


def _gan(
    n_requests: int, rng: np.random.Generator, **options: Any
) -> DemandPredictor:
    """InfoGAN forecaster (what OL_GAN runs on); needs ``codes``.

    ``codes`` — the `(n_requests, code_dim)` one-hot location matrix the
    GAN conditions on — must be passed in ``options`` and must cover
    exactly ``n_requests`` rows.
    """
    from repro.gan.predictor import GanDemandPredictor

    if "codes" not in options:
        raise ValueError(
            "predictor 'gan' needs the location code matrix: "
            "make_predictor('gan', n, rng, codes=...)"
        )
    codes = np.asarray(options.pop("codes"), dtype=float)
    if codes.ndim != 2 or codes.shape[0] != n_requests:
        raise ValueError(
            f"codes must be ({n_requests}, code_dim), got {codes.shape}"
        )
    return _stamped(GanDemandPredictor(codes, rng, **options), "gan")


register_predictor("last", _last)
register_predictor("mean", _mean)
register_predictor("ewma", _ewma)
register_predictor("ar", _ar)
register_predictor("gan", _gan)
