"""Demand predictors: the common interface, ARMA (Eq. 27) and EWMA.

`OL_Reg` plugs :class:`ArPredictor` into the online controller; `OL_GAN`
plugs in :class:`repro.gan.GanDemandPredictor`.  Both implement
:class:`DemandPredictor`, so controllers are predictor-agnostic.
"""

from repro.prediction.arma import ArPredictor
from repro.prediction.base import (
    DemandPredictor,
    LastValuePredictor,
    MeanPredictor,
    OraclePredictor,
)
from repro.prediction.ewma import EwmaPredictor
from repro.prediction.registry import (
    PREDICTORS,
    PredictorFactory,
    make_predictor,
    predictor_names,
    register_predictor,
)

__all__ = [
    "ArPredictor",
    "DemandPredictor",
    "LastValuePredictor",
    "MeanPredictor",
    "OraclePredictor",
    "EwmaPredictor",
    "PREDICTORS",
    "PredictorFactory",
    "make_predictor",
    "predictor_names",
    "register_predictor",
]
