"""Sliding-window arm statistics for non-stationary delays (extension).

The paper's uncertainty model is explicitly *time-varying* (`d_i(t)`
"varies in different time slots"), yet Algorithm 1 keeps a cumulative mean
`theta_i`.  Under drifting means the cumulative estimator lags; the
standard remedy in non-stationary bandits is a sliding window (or
discounting).  :class:`WindowedArmStats` is a drop-in replacement for
:class:`repro.bandits.ArmStats` keeping only the last ``window``
observations per arm — evaluated against the cumulative estimator in
``benchmarks/bench_ablation_window.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.bandits.arms import ArmStats
from repro.utils.validation import require_non_negative, require_positive

__all__ = ["WindowedArmStats"]


class WindowedArmStats(ArmStats):
    """Per-arm mean/variance over the most recent ``window`` observations.

    Play counts `m_i` still count *all* plays (they parameterise
    confidence radii); only the mean/variance estimates forget.
    """

    def __init__(self, n_arms: int, window: int = 20, prior_mean: float = 0.0):
        super().__init__(n_arms, prior_mean=prior_mean)
        require_positive("window", window)
        self._window = int(window)
        self._recent: List[Deque[float]] = [
            deque(maxlen=self._window) for _ in range(self.n_arms)
        ]

    @property
    def window(self) -> int:
        """Observations retained per arm."""
        return self._window

    def observe(self, arm: int, value: float) -> None:
        super().observe(arm, value)
        self._recent[arm].append(float(value))

    def mean(self, arm: int) -> float:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
        recent = self._recent[arm]
        if not recent:
            return self._prior_mean
        return float(np.mean(recent))

    @property
    def means(self) -> np.ndarray:
        values = np.full(self.n_arms, self._prior_mean)
        for arm, recent in enumerate(self._recent):
            if recent:
                values[arm] = float(np.mean(recent))
        return values

    def variance(self, arm: int) -> float:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
        recent = self._recent[arm]
        if len(recent) < 2:
            return 0.0
        return float(np.var(recent))

    def reset(self) -> None:
        super().reset()
        for recent in self._recent:
            recent.clear()
