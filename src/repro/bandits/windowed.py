"""Sliding-window arm statistics for non-stationary delays (extension).

The paper's uncertainty model is explicitly *time-varying* (`d_i(t)`
"varies in different time slots"), yet Algorithm 1 keeps a cumulative mean
`theta_i`.  Under drifting means the cumulative estimator lags; the
standard remedy in non-stationary bandits is a sliding window (or
discounting).  :class:`WindowedArmStats` is a drop-in replacement for
:class:`repro.bandits.ArmStats` keeping only the last ``window``
observations per arm — evaluated against the cumulative estimator in
``benchmarks/bench_ablation_window.py``.

``means`` sits on `OL_GD`'s per-slot LP path (it feeds the Eq. 8
objective every solve), so the window statistics are maintained as
running sums updated on :meth:`observe` — reading a mean or variance is
O(1) per arm instead of an `np.mean` pass over a deque.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List

import numpy as np

from repro.bandits.arms import ArmStats
from repro.utils.validation import require_positive

__all__ = ["WindowedArmStats"]


class WindowedArmStats(ArmStats):
    """Per-arm mean/variance over the most recent ``window`` observations.

    Play counts `m_i` still count *all* plays (they parameterise
    confidence radii); only the mean/variance estimates forget.

    Like :meth:`ArmStats.variance`, :meth:`variance` is the *population*
    variance (``ddof=0``, what ``np.var`` computes by default) over the
    retained observations — the two estimators stay drop-in compatible.
    """

    def __init__(self, n_arms: int, window: int = 20, prior_mean: float = 0.0):
        super().__init__(n_arms, prior_mean=prior_mean)
        require_positive("window", window)
        self._window = int(window)
        self._recent: List[Deque[float]] = [
            deque(maxlen=self._window) for _ in range(self.n_arms)
        ]
        # Running window aggregates, updated on observe(): subtract the
        # evicted observation, add the new one.  Centred moments are
        # recomputed from these in O(1); the deques remain the source of
        # truth (and bound the drift any float cancellation could cause
        # to one window's worth of additions).
        self._win_counts = np.zeros(self.n_arms, dtype=int)
        self._win_sums = np.zeros(self.n_arms)
        self._win_sq_sums = np.zeros(self.n_arms)

    @property
    def window(self) -> int:
        """Observations retained per arm."""
        return self._window

    def observe(self, arm: int, value: float) -> None:
        super().observe(arm, value)
        value = float(value)
        recent = self._recent[arm]
        if len(recent) == self._window:
            evicted = recent[0]
            self._win_sums[arm] -= evicted
            self._win_sq_sums[arm] -= evicted * evicted
        else:
            self._win_counts[arm] += 1
        recent.append(value)
        self._win_sums[arm] += value
        self._win_sq_sums[arm] += value * value

    def mean(self, arm: int) -> float:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
        count = self._win_counts[arm]
        if count == 0:
            return self._prior_mean
        return float(self._win_sums[arm] / count)

    @property
    def means(self) -> np.ndarray:
        played = self._win_counts > 0
        values = np.full(self.n_arms, self._prior_mean)
        values[played] = self._win_sums[played] / self._win_counts[played]
        return values

    def variance(self, arm: int) -> float:
        if not 0 <= arm < self.n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self.n_arms})")
        count = self._win_counts[arm]
        if count < 2:
            return 0.0
        mean = self._win_sums[arm] / count
        # Population variance (ddof=0), clipped against float cancellation
        # — same convention and guard as ArmStats.variance.
        return float(max(self._win_sq_sums[arm] / count - mean * mean, 0.0))

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state: cumulative stats plus the ragged window.

        The per-arm deques are serialized as one concatenated value array
        plus a lengths array (arrays must be rectangular on disk); the
        window aggregates are rebuilt from the values on load.
        """
        state = super().state_dict()
        lengths = np.array([len(recent) for recent in self._recent], dtype=int)
        values = np.array(
            [value for recent in self._recent for value in recent], dtype=float
        )
        state["window"] = self._window
        state["recent_lengths"] = lengths
        state["recent_values"] = values
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if int(state["window"]) != self._window:
            raise ValueError(
                f"checkpoint uses window {state['window']}, "
                f"this estimator uses {self._window}"
            )
        super().load_state_dict(state)
        lengths = np.asarray(state["recent_lengths"], dtype=int)
        values = np.asarray(state["recent_values"], dtype=float)
        if lengths.shape != (self.n_arms,) or int(lengths.sum()) != values.size:
            raise ValueError("checkpoint window buffers are inconsistent")
        self._win_counts = np.zeros(self.n_arms, dtype=int)
        self._win_sums = np.zeros(self.n_arms)
        self._win_sq_sums = np.zeros(self.n_arms)
        self._recent = [deque(maxlen=self._window) for _ in range(self.n_arms)]
        offset = 0
        for arm, length in enumerate(lengths):
            for value in values[offset : offset + length]:
                recent = self._recent[arm]
                recent.append(float(value))
                self._win_counts[arm] += 1
                self._win_sums[arm] += float(value)
                self._win_sq_sums[arm] += float(value) * float(value)
            offset += int(length)

    def reset(self) -> None:
        super().reset()
        for recent in self._recent:
            recent.clear()
        self._win_counts.fill(0)
        self._win_sums.fill(0.0)
        self._win_sq_sums.fill(0.0)
