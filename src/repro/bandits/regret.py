"""Regret accounting (Eq. 10): achieved cost vs the per-slot optimum.

The paper defines regret as the difference between the average delay the
algorithm achieves and the delay an optimal caching/assignment would have
achieved.  :class:`RegretTracker` records both sides per slot and exposes
the per-slot and cumulative series the regret figures plot.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.utils.validation import require_non_negative

__all__ = ["RegretTracker"]


class RegretTracker:
    """Records (achieved, optimal) cost pairs and derives regret series."""

    def __init__(self) -> None:
        self._achieved: List[float] = []
        self._optimal: List[float] = []

    def record(self, achieved_cost: float, optimal_cost: float) -> None:
        """Record one slot.  ``achieved`` may be below ``optimal`` in a
        single slot (the "optimum" may itself be an estimate); cumulative
        regret is still reported as-is rather than clamped, so estimation
        artefacts remain visible in the data."""
        require_non_negative("achieved_cost", achieved_cost)
        require_non_negative("optimal_cost", optimal_cost)
        self._achieved.append(float(achieved_cost))
        self._optimal.append(float(optimal_cost))

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable form of both series (see :mod:`repro.state`)."""
        return {
            "achieved": np.array(self._achieved, dtype=float),
            "optimal": np.array(self._optimal, dtype=float),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        achieved = np.asarray(state["achieved"], dtype=float)
        optimal = np.asarray(state["optimal"], dtype=float)
        if achieved.shape != optimal.shape:
            raise ValueError(
                f"achieved/optimal series lengths differ: "
                f"{achieved.shape} vs {optimal.shape}"
            )
        self._achieved = [float(v) for v in achieved]
        self._optimal = [float(v) for v in optimal]

    @property
    def n_slots(self) -> int:
        return len(self._achieved)

    @property
    def achieved(self) -> np.ndarray:
        """Per-slot achieved cost."""
        return np.array(self._achieved)

    @property
    def optimal(self) -> np.ndarray:
        """Per-slot optimal (clairvoyant) cost."""
        return np.array(self._optimal)

    @property
    def per_slot_regret(self) -> np.ndarray:
        """`achieved - optimal` per slot."""
        return self.achieved - self.optimal

    @property
    def cumulative_regret(self) -> np.ndarray:
        """Running sum of per-slot regret (the curve bounded by Theorem 1)."""
        if not self._achieved:
            return np.array([])
        return np.cumsum(self.per_slot_regret)

    @property
    def total_regret(self) -> float:
        """Cumulative regret at the end of the horizon (0 when empty)."""
        if not self._achieved:
            return 0.0
        return float(self.cumulative_regret[-1])

    def average_regret(self) -> float:
        """Mean per-slot regret (0 when empty)."""
        if not self._achieved:
            return 0.0
        return float(np.mean(self.per_slot_regret))

    def is_sublinear(self, window: int = 10) -> bool:
        """Heuristic check that regret growth is slowing.

        Compares mean per-slot regret in the first ``window`` slots against
        the last ``window``; a learning algorithm should pay less per slot
        at the end than at the start.  Requires at least ``2 * window``
        slots.
        """
        require_non_negative("window", window)
        if window == 0 or self.n_slots < 2 * window:
            raise ValueError(
                f"need at least {2 * max(window, 1)} slots, have {self.n_slots}"
            )
        regret = self.per_slot_regret
        return float(np.mean(regret[-window:])) <= float(np.mean(regret[:window]))
