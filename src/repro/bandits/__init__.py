"""Multi-armed-bandit substrate: arm statistics, policies, regret tracking.

Paper §IV treats every base station as a bandit arm whose random process
`X_i` is the station's unit-data processing delay; playing the arm (routing
a request there) reveals `d_i(t)` and updates the running mean `theta_i`.
This package holds the generic bandit machinery: :class:`ArmStats` is the
state shared with the LP-guided controller (Algorithm 1), and the classic
policies (epsilon-greedy, UCB1, Thompson sampling) serve as ablation
baselines beyond the paper.
"""

from repro.bandits.arms import ArmStats
from repro.bandits.policies import (
    BanditPolicy,
    ConstantEpsilonGreedy,
    DecayingEpsilonGreedy,
    ThompsonSampling,
    Ucb1,
)
from repro.bandits.regret import RegretTracker
from repro.bandits.windowed import WindowedArmStats

__all__ = [
    "ArmStats",
    "WindowedArmStats",
    "BanditPolicy",
    "ConstantEpsilonGreedy",
    "DecayingEpsilonGreedy",
    "ThompsonSampling",
    "Ucb1",
    "RegretTracker",
]
