"""Classic bandit policies over :class:`ArmStats` (cost-minimisation form).

These are the generic exploration strategies.  Algorithm 1's LP-guided
selection lives in :mod:`repro.core.ol_gd`; the policies here are used for

* the exploration schedule (constant ``eps_t = 1/4`` from Algorithm 1
  line 2, and the decaying ``c/t`` schedule from the Theorem 1 analysis);
* ablation baselines (UCB1, Thompson) that pick stations *without* the LP.

All policies minimise: the "best" arm is the one with the smallest mean
cost (delay), so UCB becomes LCB etc.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.bandits.arms import ArmStats
from repro.utils.validation import require_positive, require_probability

__all__ = [
    "BanditPolicy",
    "ConstantEpsilonGreedy",
    "DecayingEpsilonGreedy",
    "Ucb1",
    "ThompsonSampling",
]


class BanditPolicy(abc.ABC):
    """Selects one arm per round given the current statistics."""

    @abc.abstractmethod
    def select(
        self,
        stats: ArmStats,
        t: int,
        rng: np.random.Generator,
        allowed: Optional[Sequence[int]] = None,
    ) -> int:
        """Pick an arm for round ``t`` (1-based) among ``allowed`` (default all)."""

    @staticmethod
    def _allowed_indices(stats: ArmStats, allowed: Optional[Sequence[int]]) -> np.ndarray:
        if allowed is None:
            return np.arange(stats.n_arms)
        indices = np.asarray(list(allowed), dtype=int)
        if indices.size == 0:
            raise ValueError("allowed arm set must not be empty")
        if indices.min() < 0 or indices.max() >= stats.n_arms:
            raise ValueError(
                f"allowed arms must be within [0, {stats.n_arms}), got {indices}"
            )
        return indices


class _EpsilonGreedyBase(BanditPolicy):
    """Shared explore/exploit skeleton: exploit argmin-mean, explore uniform."""

    def _epsilon(self, t: int) -> float:
        raise NotImplementedError

    def select(
        self,
        stats: ArmStats,
        t: int,
        rng: np.random.Generator,
        allowed: Optional[Sequence[int]] = None,
    ) -> int:
        require_positive("t", t)
        indices = self._allowed_indices(stats, allowed)
        # Play any never-played allowed arm first so means are defined.
        unplayed = [i for i in indices if stats.counts[i] == 0]
        if unplayed:
            return int(rng.choice(unplayed))
        if rng.uniform() < self._epsilon(t):
            return int(rng.choice(indices))
        means = stats.means[indices]
        return int(indices[int(np.argmin(means))])


class ConstantEpsilonGreedy(_EpsilonGreedyBase):
    """Explore with a fixed probability (Algorithm 1 uses ``eps_t = 1/4``)."""

    def __init__(self, epsilon: float = 0.25):
        require_probability("epsilon", epsilon)
        self._eps = float(epsilon)

    def _epsilon(self, t: int) -> float:
        return self._eps


class DecayingEpsilonGreedy(_EpsilonGreedyBase):
    """Explore with probability ``min(1, c/t)`` (Theorem 1 analysis, 0 < c < 1)."""

    def __init__(self, c: float = 0.5):
        require_probability("c", c)
        if c == 0.0:
            raise ValueError("c must be strictly positive (0 < c < 1)")
        self._c = float(c)

    def _epsilon(self, t: int) -> float:
        return min(1.0, self._c / t)

    @property
    def c(self) -> float:
        return self._c


class Ucb1(BanditPolicy):
    """UCB1 adapted to costs: pick argmin of mean minus confidence radius.

    ``scale`` should match the cost range so the radius is comparable to
    the means (classic UCB1 assumes rewards in [0, 1]).
    """

    def __init__(self, scale: float = 1.0):
        require_positive("scale", scale)
        self._scale = float(scale)

    def select(
        self,
        stats: ArmStats,
        t: int,
        rng: np.random.Generator,
        allowed: Optional[Sequence[int]] = None,
    ) -> int:
        require_positive("t", t)
        indices = self._allowed_indices(stats, allowed)
        unplayed = [i for i in indices if stats.counts[i] == 0]
        if unplayed:
            return int(rng.choice(unplayed))
        scores = np.array(
            [
                stats.mean(i) - self._scale * stats.confidence_radius(i)
                for i in indices
            ]
        )
        return int(indices[int(np.argmin(scores))])


class ThompsonSampling(BanditPolicy):
    """Gaussian Thompson sampling on costs.

    Posterior per arm approximated as Normal(mean, var / m_i) with an
    ``exploration_std`` floor so well-sampled arms keep a minimum of
    posterior spread.
    """

    def __init__(self, exploration_std: float = 1.0):
        require_positive("exploration_std", exploration_std)
        self._floor = float(exploration_std)

    def select(
        self,
        stats: ArmStats,
        t: int,
        rng: np.random.Generator,
        allowed: Optional[Sequence[int]] = None,
    ) -> int:
        require_positive("t", t)
        indices = self._allowed_indices(stats, allowed)
        unplayed = [i for i in indices if stats.counts[i] == 0]
        if unplayed:
            return int(rng.choice(unplayed))
        draws = []
        for i in indices:
            count = stats.counts[i]
            std = max(np.sqrt(stats.variance(i) / count), self._floor / np.sqrt(count))
            draws.append(rng.normal(stats.mean(i), std))
        return int(indices[int(np.argmin(draws))])
