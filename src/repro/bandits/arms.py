"""Running per-arm statistics: the `theta_i` and `m_i` of Algorithm 1.

The learner never sees the latent means; it maintains the empirical mean
`theta_i` of every observed arm and the play count `m_i` ("the mean theta_i
is calculated based on the number of times that arm of bs_i is played").
Unplayed arms report a configurable *prior* mean — optimistic priors make
early exploration visit every station at least once.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.utils.validation import require_non_negative, require_positive

__all__ = ["ArmStats"]


class ArmStats:
    """Vectorised empirical means and play counts over ``n_arms`` arms.

    Also tracks a running sum of squares so policies can use empirical
    variance (Thompson sampling) without a second pass.
    """

    def __init__(self, n_arms: int, prior_mean: float = 0.0):
        require_positive("n_arms", n_arms)
        require_non_negative("prior_mean", prior_mean)
        self._n_arms = int(n_arms)
        self._prior_mean = float(prior_mean)
        self._sums = np.zeros(self._n_arms)
        self._sq_sums = np.zeros(self._n_arms)
        self._counts = np.zeros(self._n_arms, dtype=int)

    @property
    def n_arms(self) -> int:
        return self._n_arms

    @property
    def counts(self) -> np.ndarray:
        """`m_i`: how many times each arm was played (copy)."""
        return self._counts.copy()

    @property
    def total_plays(self) -> int:
        """Sum of all play counts."""
        return int(self._counts.sum())

    def observe(self, arm: int, value: float) -> None:
        """Record one observation of ``arm``."""
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        require_non_negative("value", value)
        self._sums[arm] += value
        self._sq_sums[arm] += value * value
        self._counts[arm] += 1

    def observe_many(self, arms: Iterable[int], values: Iterable[float]) -> None:
        """Record one observation per (arm, value) pair."""
        arms = list(arms)
        values = list(values)
        if len(arms) != len(values):
            raise ValueError(
                f"got {len(arms)} arms but {len(values)} values"
            )
        for arm, value in zip(arms, values):
            self.observe(arm, value)

    def mean(self, arm: int) -> float:
        """Empirical mean `theta_i` of one arm (prior when unplayed)."""
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        if self._counts[arm] == 0:
            return self._prior_mean
        return float(self._sums[arm] / self._counts[arm])

    @property
    def means(self) -> np.ndarray:
        """Vector of `theta_i` for all arms (prior where unplayed)."""
        means = np.full(self._n_arms, self._prior_mean)
        played = self._counts > 0
        means[played] = self._sums[played] / self._counts[played]
        return means

    def variance(self, arm: int) -> float:
        """Empirical *population* variance (ddof=0) of one arm; 0 with < 2
        plays.  :class:`repro.bandits.WindowedArmStats` follows the same
        convention over its window."""
        if not 0 <= arm < self._n_arms:
            raise IndexError(f"arm {arm} out of range [0, {self._n_arms})")
        count = self._counts[arm]
        if count < 2:
            return 0.0
        mean = self._sums[arm] / count
        return float(max(self._sq_sums[arm] / count - mean * mean, 0.0))

    def unplayed_arms(self) -> np.ndarray:
        """Indices of arms never played (candidates for forced exploration)."""
        return np.nonzero(self._counts == 0)[0]

    def confidence_radius(self, arm: int, horizon_plays: Optional[int] = None) -> float:
        """UCB1-style radius ``sqrt(2 ln N / m_i)``; inf for unplayed arms.

        ``horizon_plays`` defaults to the total plays so far.
        """
        count = self._counts[arm]
        if count == 0:
            return float("inf")
        total = self.total_plays if horizon_plays is None else horizon_plays
        require_positive("horizon_plays", total)
        return float(np.sqrt(2.0 * np.log(max(total, 2)) / count))

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """(means, counts) pair for logging/metrics."""
        return self.means, self.counts

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable state (see :mod:`repro.state`)."""
        return {
            "n_arms": self._n_arms,
            "prior_mean": self._prior_mean,
            "sums": self._sums.copy(),
            "sq_sums": self._sq_sums.copy(),
            "counts": self._counts.copy(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot, in place."""
        if int(state["n_arms"]) != self._n_arms:
            raise ValueError(
                f"checkpoint covers {state['n_arms']} arms, "
                f"this estimator has {self._n_arms}"
            )
        self._prior_mean = float(state["prior_mean"])
        self._sums = np.asarray(state["sums"], dtype=float).copy()
        self._sq_sums = np.asarray(state["sq_sums"], dtype=float).copy()
        self._counts = np.asarray(state["counts"], dtype=int).copy()
        for name in ("_sums", "_sq_sums", "_counts"):
            if getattr(self, name).shape != (self._n_arms,):
                raise ValueError(
                    f"checkpoint field {name[1:]!r} has shape "
                    f"{getattr(self, name).shape}, expected ({self._n_arms},)"
                )

    def reset(self) -> None:
        """Forget all observations."""
        self._sums.fill(0.0)
        self._sq_sums.fill(0.0)
        self._counts.fill(0)
