"""Dual values of the per-slot LP: station congestion prices.

The capacity constraints' (Eq. 5) shadow prices answer the operator's
question "which cloudlet is the bottleneck, and what is one more MHz
there worth (in ms of average delay)?".  HiGHS reports the duals of every
constraint; :func:`solve_lp_with_duals` surfaces them next to the primal
solution, and :func:`capacity_shadow_prices` extracts the per-station
prices for a caching model built by
:func:`repro.core.formulation.build_caching_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import LpModel, Sense
from repro.lp.solver import LpSolution

__all__ = ["DualSolution", "solve_lp_with_duals", "capacity_shadow_prices"]


@dataclass(frozen=True)
class DualSolution:
    """Primal solution plus constraint duals.

    ``ineq_duals[j]`` is the marginal of the j-th *inequality* row in the
    model's LE-normalised order (GE rows were negated, so their reported
    dual is negated back to the user's orientation); ``eq_duals[j]``
    likewise for equality rows.  Sign convention: for a minimisation, a
    binding `<=` constraint has a **non-positive** HiGHS marginal; we
    report shadow prices as ``-marginal`` so "relaxing the constraint by
    one unit reduces the objective by `price`" reads positively.
    """

    primal: LpSolution
    ineq_duals: np.ndarray
    eq_duals: np.ndarray

    @property
    def is_optimal(self) -> bool:
        return self.primal.is_optimal


def solve_lp_with_duals(model: LpModel) -> DualSolution:
    """Solve the LP and return primal values plus constraint duals."""
    if model.n_variables == 0:
        raise ValueError("cannot solve a model with no variables")
    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if result.status != 0:
        primal = LpSolution(
            status="infeasible" if result.status == 2 else "error",
            objective=float("nan"),
            values=np.full(model.n_variables, np.nan),
            message=str(result.message),
        )
        return DualSolution(
            primal=primal,
            ineq_duals=np.array([]),
            eq_duals=np.array([]),
        )
    primal = LpSolution(
        status="optimal",
        objective=float(result.fun),
        values=np.asarray(result.x, dtype=float),
        message=str(result.message),
    )
    ineq = (
        -np.asarray(result.ineqlin.marginals, dtype=float)
        if a_ub is not None
        else np.array([])
    )
    eq = (
        -np.asarray(result.eqlin.marginals, dtype=float)
        if a_eq is not None
        else np.array([])
    )
    # GE rows were negated into LE form; flip their duals back so the
    # price refers to the constraint as the user wrote it.
    ge_positions = [
        position
        for position, constraint in enumerate(
            c for c in model.constraints if c.sense is not Sense.EQ
        )
        if constraint.sense is Sense.GE
    ]
    for position in ge_positions:
        ineq[position] = -ineq[position]
    return DualSolution(primal=primal, ineq_duals=ineq, eq_duals=eq)


def capacity_shadow_prices(
    model: LpModel, duals: DualSolution, n_stations: int
) -> np.ndarray:
    """Per-station congestion prices from a caching model's duals.

    Relies on :func:`build_caching_model`'s row layout: the capacity rows
    are named ``capacity[i]`` and are the only LE rows before the coupling
    rows.  Returns ms of average delay saved per extra MHz at each
    station (0 for uncongested stations).
    """
    if not duals.is_optimal:
        raise ValueError("duals are only available for optimal solves")
    inequality_constraints = [
        c for c in model.constraints if c.sense is not Sense.EQ
    ]
    prices = np.zeros(n_stations)
    found = 0
    for position, constraint in enumerate(inequality_constraints):
        if constraint.name.startswith("capacity["):
            station = int(constraint.name[len("capacity[") : -1])
            if not 0 <= station < n_stations:
                raise ValueError(
                    f"capacity row names station {station}, outside "
                    f"[0, {n_stations})"
                )
            prices[station] = duals.ineq_duals[position]
            found += 1
    if found != n_stations:
        raise ValueError(
            f"expected {n_stations} capacity rows, found {found} — was the "
            "model built by build_caching_model?"
        )
    return prices
