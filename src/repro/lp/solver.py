"""LP solving via scipy's HiGHS backend.

Solving the relaxation "can be obtained efficiently in polynomial time"
(§IV-B); HiGHS comfortably handles the per-slot models (|R|·|BS| variables)
within a time slot's budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.lp.model import LpModel

__all__ = ["LpSolution", "solve_lp"]


@dataclass(frozen=True)
class LpSolution:
    """Result of an LP solve.

    ``status`` is one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``
    or ``"error"``; ``values``/``objective`` are only meaningful when
    :attr:`is_optimal`.
    """

    status: str
    objective: float
    values: np.ndarray
    message: str = ""

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"

    def value_of(self, index: int) -> float:
        """Value of one variable; raises unless the solve was optimal."""
        if not self.is_optimal:
            raise RuntimeError(f"no solution values: status is {self.status!r}")
        return float(self.values[index])


_STATUS_BY_CODE = {
    0: "optimal",
    1: "error",      # iteration limit
    2: "infeasible",
    3: "unbounded",
    4: "error",
}


def solve_lp(model: LpModel) -> LpSolution:
    """Minimise the model's objective with HiGHS.

    Integrality markers are ignored (this is the *relaxation* solver);
    use :func:`repro.lp.solve_ilp` for exact integer solutions.
    """
    if model.n_variables == 0:
        raise ValueError("cannot solve a model with no variables")
    c, a_ub, b_ub, a_eq, b_eq, bounds = model.to_arrays()
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    status = _STATUS_BY_CODE.get(result.status, "error")
    if status != "optimal":
        return LpSolution(
            status=status,
            objective=float("nan"),
            values=np.full(model.n_variables, np.nan),
            message=str(result.message),
        )
    # Clip tiny numerical violations of the bounds so downstream code can
    # treat values as probabilities without re-sanitising.
    values = np.asarray(result.x, dtype=float)
    lows = np.array([b[0] for b in bounds], dtype=float)
    highs = np.array(
        [np.inf if b[1] is None else b[1] for b in bounds], dtype=float
    )
    values = np.clip(values, lows, highs)
    return LpSolution(
        status="optimal",
        objective=float(result.fun),
        values=values,
        message=str(result.message),
    )
