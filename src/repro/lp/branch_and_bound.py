"""Exact 0/1-ILP solving by LP-based branch and bound.

Used only for *measurement*: the per-slot clairvoyant optimum in the regret
curves (Eq. 10) and the optimality checks in tests.  The dynamic service
caching ILP is NP-hard (§IV-A), so this solver is intended for the small
instances in tests/ablations; ``node_limit`` caps the search and the result
reports whether it was proven optimal.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.lp.model import LpModel
from repro.lp.solver import LpSolution, solve_lp

__all__ = ["BranchAndBoundResult", "solve_ilp"]

_INTEGRALITY_TOL = 1e-6


@dataclass(frozen=True)
class BranchAndBoundResult:
    """Outcome of an exact solve.

    ``proven_optimal`` is False when the node limit was hit before the gap
    closed; ``objective``/``values`` then hold the best incumbent found
    (or NaN/empty when none was found at all).
    """

    status: str  # "optimal" | "feasible" | "infeasible" | "node_limit"
    objective: float
    values: np.ndarray
    nodes_explored: int
    best_bound: float

    @property
    def proven_optimal(self) -> bool:
        return self.status == "optimal"

    @property
    def has_solution(self) -> bool:
        return self.status in ("optimal", "feasible")

    @property
    def gap(self) -> float:
        """Relative optimality gap of the incumbent (0 when proven)."""
        if not self.has_solution:
            return math.inf
        if self.proven_optimal:
            return 0.0
        denom = max(abs(self.objective), 1e-12)
        return abs(self.objective - self.best_bound) / denom


def _most_fractional(values: np.ndarray, integer_indices) -> Optional[int]:
    """The integer variable whose LP value is farthest from integral."""
    worst_index, worst_gap = None, _INTEGRALITY_TOL
    for index in integer_indices:
        value = values[index]
        gap = abs(value - round(value))
        if gap > worst_gap:
            worst_index, worst_gap = index, gap
    return worst_index


def solve_ilp(model: LpModel, node_limit: int = 10_000) -> BranchAndBoundResult:
    """Minimise ``model`` with its integrality constraints enforced.

    Best-bound search: nodes are explored in order of their LP bound, so
    the first integral node popped is optimal.  Branches fix the most
    fractional integer variable to ``floor`` / ``ceil``.
    """
    if node_limit <= 0:
        raise ValueError(f"node_limit must be > 0, got {node_limit}")
    integer_indices = model.integer_indices
    root = solve_lp(model)
    if root.status == "infeasible":
        return BranchAndBoundResult(
            status="infeasible",
            objective=math.nan,
            values=np.array([]),
            nodes_explored=1,
            best_bound=math.inf,
        )
    if not root.is_optimal:
        raise RuntimeError(f"root relaxation failed: {root.status} ({root.message})")

    counter = itertools.count()  # tie-breaker so heap never compares dicts
    # Each entry: (bound, tiebreak, bound_overrides)
    heap: list = [(root.objective, next(counter), {})]
    incumbent: Optional[np.ndarray] = None
    incumbent_objective = math.inf
    nodes = 0
    best_bound = root.objective

    while heap and nodes < node_limit:
        bound, _, overrides = heapq.heappop(heap)
        best_bound = bound
        if bound >= incumbent_objective - 1e-9:
            # Everything left is worse than the incumbent: proven optimal.
            heap.clear()
            break
        nodes += 1
        solution = solve_lp(model.with_bounds(overrides)) if overrides else root
        if not solution.is_optimal:
            continue  # infeasible branch
        if solution.objective >= incumbent_objective - 1e-9:
            continue
        branch_var = _most_fractional(solution.values, integer_indices)
        if branch_var is None:
            # Integral: new incumbent (rounded to kill epsilon noise).
            values = solution.values.copy()
            for index in integer_indices:
                values[index] = round(values[index])
            incumbent = values
            incumbent_objective = solution.objective
            continue
        value = solution.values[branch_var]
        down = dict(overrides)
        down[branch_var] = (model.variables[branch_var].low, math.floor(value))
        up = dict(overrides)
        up[branch_var] = (math.ceil(value), model.variables[branch_var].high)
        heapq.heappush(heap, (solution.objective, next(counter), down))
        heapq.heappush(heap, (solution.objective, next(counter), up))

    if incumbent is None:
        status = "node_limit" if heap else "infeasible"
        return BranchAndBoundResult(
            status=status,
            objective=math.nan,
            values=np.array([]),
            nodes_explored=nodes,
            best_bound=best_bound,
        )
    proven = not heap or best_bound >= incumbent_objective - 1e-9
    return BranchAndBoundResult(
        status="optimal" if proven else "feasible",
        objective=incumbent_objective,
        values=incumbent,
        nodes_explored=nodes,
        best_bound=min(best_bound, incumbent_objective),
    )
