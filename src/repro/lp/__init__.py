"""Linear-programming layer: model builder, LP solver, exact ILP solver.

Algorithm 1 needs one LP relaxation per time slot (Eq. 3-8); the regret
measurements additionally need the clairvoyant *integer* optimum, which
:mod:`repro.lp.branch_and_bound` computes exactly for the small instances
used in tests and ablations.  :mod:`repro.lp.duals` turns the capacity
constraints' shadow prices into per-station congestion prices.
"""

from repro.lp.branch_and_bound import BranchAndBoundResult, solve_ilp
from repro.lp.duals import DualSolution, capacity_shadow_prices, solve_lp_with_duals
from repro.lp.model import Constraint, LpModel, Sense, Variable
from repro.lp.solver import LpSolution, solve_lp

__all__ = [
    "BranchAndBoundResult",
    "DualSolution",
    "capacity_shadow_prices",
    "solve_lp_with_duals",
    "solve_ilp",
    "Constraint",
    "LpModel",
    "Sense",
    "Variable",
    "LpSolution",
    "solve_lp",
]
