"""A small LP/ILP model builder assembling sparse scipy arrays.

The per-slot formulation of Eq. (3)-(7) has O(|R|·|BS|) variables, so the
builder keeps constraints as sparse coefficient dictionaries and only
materialises CSR matrices once, at solve time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse

__all__ = ["Sense", "Variable", "Constraint", "LpModel"]


class Sense(enum.Enum):
    """Constraint sense."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable with bounds and an objective coefficient."""

    index: int
    name: str
    low: float
    high: Optional[float]
    objective: float
    integer: bool


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum(coef * var) <sense> rhs``."""

    name: str
    coefficients: Dict[int, float]
    sense: Sense
    rhs: float


class LpModel:
    """A minimisation LP/MILP assembled incrementally.

    Example
    -------
    >>> model = LpModel("toy")
    >>> x = model.add_variable(objective=1.0, name="x")
    >>> y = model.add_variable(objective=2.0, name="y")
    >>> model.add_constraint({x: 1.0, y: 1.0}, Sense.GE, 1.0)
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self._variables: List[Variable] = []
        self._constraints: List[Constraint] = []

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_variable(
        self,
        low: float = 0.0,
        high: Optional[float] = None,
        objective: float = 0.0,
        integer: bool = False,
        name: Optional[str] = None,
    ) -> int:
        """Add a variable and return its index.

        ``high=None`` means unbounded above.  For the paper's indicator
        variables use ``low=0, high=1`` (the LP relaxation of Eq. 8) with
        ``integer=True`` when the exact ILP is wanted.
        """
        if not math.isfinite(low):
            raise ValueError(f"variable lower bound must be finite, got {low}")
        if high is not None:
            if not math.isfinite(high):
                raise ValueError(f"variable upper bound must be finite or None, got {high}")
            if high < low:
                raise ValueError(f"upper bound {high} below lower bound {low}")
        if not math.isfinite(objective):
            raise ValueError(f"objective coefficient must be finite, got {objective}")
        index = len(self._variables)
        label = name if name is not None else f"v{index}"
        self._variables.append(
            Variable(
                index=index,
                name=label,
                low=float(low),
                high=None if high is None else float(high),
                objective=float(objective),
                integer=bool(integer),
            )
        )
        return index

    def add_binary(self, objective: float = 0.0, name: Optional[str] = None) -> int:
        """Shortcut for a 0/1 integer variable."""
        return self.add_variable(low=0.0, high=1.0, objective=objective, integer=True, name=name)

    def add_constraint(
        self,
        coefficients: Dict[int, float],
        sense: Sense,
        rhs: float,
        name: Optional[str] = None,
    ) -> None:
        """Add ``sum(coefficients[i] * x_i) <sense> rhs``."""
        if not coefficients:
            raise ValueError("a constraint needs at least one coefficient")
        if not math.isfinite(rhs):
            raise ValueError(f"rhs must be finite, got {rhs}")
        n = len(self._variables)
        for var_index, coef in coefficients.items():
            if not 0 <= var_index < n:
                raise ValueError(
                    f"constraint references variable {var_index} but only {n} exist"
                )
            if not math.isfinite(coef):
                raise ValueError(f"coefficient for variable {var_index} must be finite")
        label = name if name is not None else f"c{len(self._constraints)}"
        self._constraints.append(
            Constraint(
                name=label,
                coefficients={int(k): float(v) for k, v in coefficients.items()},
                sense=sense,
                rhs=float(rhs),
            )
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n_variables(self) -> int:
        return len(self._variables)

    @property
    def n_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variables(self) -> List[Variable]:
        return list(self._variables)

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    @property
    def integer_indices(self) -> List[int]:
        """Indices of variables declared integer."""
        return [v.index for v in self._variables if v.integer]

    def relaxed(self) -> "LpModel":
        """A copy with every integrality requirement dropped (Eq. 8)."""
        clone = LpModel(name=f"{self.name}-relaxed")
        for v in self._variables:
            clone.add_variable(
                low=v.low, high=v.high, objective=v.objective, integer=False, name=v.name
            )
        for c in self._constraints:
            clone.add_constraint(dict(c.coefficients), c.sense, c.rhs, name=c.name)
        return clone

    def with_bounds(self, overrides: Dict[int, Tuple[float, Optional[float]]]) -> "LpModel":
        """A copy with per-variable bound overrides (used when branching)."""
        clone = LpModel(name=self.name)
        for v in self._variables:
            low, high = overrides.get(v.index, (v.low, v.high))
            clone.add_variable(
                low=low, high=high, objective=v.objective, integer=v.integer, name=v.name
            )
        for c in self._constraints:
            clone.add_constraint(dict(c.coefficients), c.sense, c.rhs, name=c.name)
        return clone

    # ------------------------------------------------------------------ #
    # Array assembly
    # ------------------------------------------------------------------ #

    def to_arrays(self):
        """Assemble ``(c, A_ub, b_ub, A_eq, b_eq, bounds)`` for linprog.

        GE constraints are negated into LE form.  Matrices are CSR-sparse;
        either may be ``None`` when there are no constraints of that kind.
        """
        n = self.n_variables
        c = np.array([v.objective for v in self._variables])
        bounds = [(v.low, v.high) for v in self._variables]

        ub_rows: List[Tuple[Dict[int, float], float]] = []
        eq_rows: List[Tuple[Dict[int, float], float]] = []
        for constraint in self._constraints:
            if constraint.sense is Sense.LE:
                ub_rows.append((constraint.coefficients, constraint.rhs))
            elif constraint.sense is Sense.GE:
                negated = {k: -v for k, v in constraint.coefficients.items()}
                ub_rows.append((negated, -constraint.rhs))
            else:
                eq_rows.append((constraint.coefficients, constraint.rhs))

        def build(rows):
            if not rows:
                return None, None
            data, row_idx, col_idx, rhs = [], [], [], []
            for r, (coefs, b) in enumerate(rows):
                for col, coef in coefs.items():
                    data.append(coef)
                    row_idx.append(r)
                    col_idx.append(col)
                rhs.append(b)
            matrix = sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )
            return matrix, np.array(rhs)

        a_ub, b_ub = build(ub_rows)
        a_eq, b_eq = build(eq_rows)
        return c, a_ub, b_ub, a_eq, b_eq, bounds
