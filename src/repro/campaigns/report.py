"""Campaign reporting: one aggregated view over the per-cell result tree.

Loads the ``summary.json`` files a campaign run produced (RepetitionStudy
aggregates, reproducible fields only) and renders them as an aligned
text table grouped by cell, a per-controller sparkline across the factor
grid (borrowing :func:`repro.experiments.plots.sparkline`), and a flat
CSV for downstream tooling.  Reporting never touches the simulator: it
reads exactly what :func:`repro.campaigns.run_campaign` persisted, so it
works on partial campaigns too (incomplete cells are listed as pending).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.campaigns.runner import (
    campaign_status,
    cell_directory,
    read_campaign_payload,
    read_cell_summary,
    read_cell_timing,
)
from repro.campaigns.spec import CampaignError
from repro.experiments.plots import sparkline

__all__ = [
    "CampaignReport",
    "load_campaign_report",
    "render_campaign_report",
    "campaign_to_csv",
    "write_campaign_report",
]

DEFAULT_METRIC = "mean_delay_ms"


@dataclass(frozen=True)
class CampaignReport:
    """Everything the renderers need, loaded from one campaign directory."""

    name: str
    out_dir: Path
    payload: Dict
    #: cell_id -> persisted summary payload, in expansion order.
    cell_summaries: Dict[str, Dict]
    pending: Tuple[str, ...]

    @property
    def controllers(self) -> Tuple[str, ...]:
        return tuple(self.payload["scenario"]["controllers"])

    @property
    def metrics(self) -> Tuple[str, ...]:
        for summary in self.cell_summaries.values():
            for per_metric in summary["summaries"].values():
                return tuple(sorted(per_metric))
        return ()


def load_campaign_report(out_dir: Union[str, Path]) -> CampaignReport:
    """Load a campaign directory's payload and every finished cell.

    Timing metric summaries (the ``timing.json`` sidecar, e.g.
    ``mean_decision_s``) are merged back into each cell's metric map, so
    reports and CSV exports keep showing decision times even though the
    deterministic ``summary.json`` no longer carries them.
    """
    out_dir = Path(out_dir)
    payload = read_campaign_payload(out_dir)
    status = campaign_status(out_dir)
    summaries: Dict[str, Dict] = {}
    pending: List[str] = []
    for cell in status.cells:
        directory = cell_directory(out_dir, cell.cell_id)
        summary = read_cell_summary(directory)
        if summary is None:
            pending.append(cell.cell_id)
            continue
        timing = read_cell_timing(directory)
        if timing is not None:
            for controller, per_metric in timing.get("summaries", {}).items():
                target = summary["summaries"].setdefault(controller, {})
                for metric, values in per_metric.items():
                    target.setdefault(metric, values)
        summaries[cell.cell_id] = summary
    return CampaignReport(
        name=payload["name"],
        out_dir=out_dir,
        payload=payload,
        cell_summaries=summaries,
        pending=tuple(pending),
    )


def _metric_rows(
    report: CampaignReport, metric: str
) -> List[Tuple[str, str, Dict]]:
    """``(cell_id, controller, summary)`` rows for one metric."""
    rows = []
    for cell_id, summary in report.cell_summaries.items():
        for controller in sorted(summary["summaries"]):
            per_metric = summary["summaries"][controller]
            if metric not in per_metric:
                raise CampaignError(
                    f"cell {cell_id!r} has no metric {metric!r}; "
                    f"available: {sorted(per_metric)}"
                )
            rows.append((cell_id, controller, per_metric[metric]))
    return rows


def render_campaign_report(
    report: CampaignReport, metric: str = DEFAULT_METRIC
) -> str:
    """Aligned text report of one metric across the whole factor grid."""
    lines = [
        f"campaign {report.name!r} — {metric} "
        f"({len(report.cell_summaries)} cells"
        + (f", {len(report.pending)} pending" if report.pending else "")
        + ")"
    ]
    rows = _metric_rows(report, metric)
    if not rows:
        lines.append("  (no finished cells yet)")
        return "\n".join(lines)
    cell_width = max(len(cell_id) for cell_id, _, _ in rows)
    ctrl_width = max(len(controller) for _, controller, _ in rows)
    header = (
        f"  {'cell':<{cell_width}} {'controller':<{ctrl_width}} "
        f"{'mean':>10} {'std':>10} {'95% CI':>23} {'n':>4}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    previous = None
    for cell_id, controller, summary in rows:
        shown = cell_id if cell_id != previous else ""
        previous = cell_id
        lines.append(
            f"  {shown:<{cell_width}} {controller:<{ctrl_width}} "
            f"{summary['mean']:>10.3f} {summary['std']:>10.3f} "
            f"[{summary['ci_low']:>9.3f}, {summary['ci_high']:>9.3f}] "
            f"{len(summary['values']):>4}"
        )
    # Per-controller trend across the grid (expansion order).
    by_controller: Dict[str, List[float]] = {}
    for _, controller, summary in rows:
        by_controller.setdefault(controller, []).append(summary["mean"])
    if len(report.cell_summaries) > 1:
        lines.append("")
        lines.append("  trend across cells (expansion order):")
        for controller in sorted(by_controller):
            means = by_controller[controller]
            lines.append(
                f"  {controller:<{ctrl_width}} {sparkline(means)}  "
                f"[{min(means):.3f} .. {max(means):.3f}]"
            )
    if report.pending:
        lines.append("")
        lines.append(f"  pending cells: {', '.join(report.pending)}")
    return "\n".join(lines)


def campaign_to_csv(
    report: CampaignReport, path: Union[str, Path]
) -> Path:
    """Flat CSV of every finished cell: one row per (cell, controller, metric)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    factor_paths = [row["path"] for row in report.payload.get("factors", [])]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["cell_id", *factor_paths, "controller", "metric",
             "mean", "std", "ci_low", "ci_high", "n"]
        )
        for cell_id, summary in report.cell_summaries.items():
            overrides = dict(
                (row[0], row[1]) for row in summary.get("overrides", [])
            )
            factor_values = [overrides.get(p, "") for p in factor_paths]
            for controller in sorted(summary["summaries"]):
                for metric in sorted(summary["summaries"][controller]):
                    s = summary["summaries"][controller][metric]
                    writer.writerow(
                        [cell_id, *factor_values, controller, metric,
                         s["mean"], s["std"], s["ci_low"], s["ci_high"],
                         len(s["values"])]
                    )
    return path


def write_campaign_report(
    out_dir: Union[str, Path],
    metric: str = DEFAULT_METRIC,
    report_name: str = "report.md",
    csv_name: str = "results.csv",
) -> Tuple[Path, Path, Optional[CampaignReport]]:
    """Render and persist ``report.md`` + ``results.csv`` into ``out_dir``.

    Returns the two written paths and the loaded report (for callers that
    also want to print it).
    """
    out_dir = Path(out_dir)
    report = load_campaign_report(out_dir)
    text = render_campaign_report(report, metric)
    report_path = out_dir / report_name
    report_path.write_text(text + "\n", encoding="utf-8")
    csv_path = campaign_to_csv(report, out_dir / csv_name)
    return report_path, csv_path, report
