"""Campaign execution: the result tree, cell scheduling and resume.

A campaign run owns one directory::

    <out_dir>/
        campaign.json            # the spec's identity payload
        cells/<cell_id>/
            manifest.json        # repro.state sweep manifest
            rep00000-ctrl000.npz # per-(repetition, controller) snapshots
            summary.json         # deterministic aggregate, written once
                                 # the cell is complete
            timing.json          # wall-clock sidecar (decision times,
                                 # execution accounting)

Every cell is one repetition study over the cell's
:class:`~repro.campaigns.scenario.CampaignScenario`, seeded with the
cell's own derived seed and checkpointed into the cell directory —
executed either cell-by-cell through :func:`repro.sim.run_repetitions`
or by the campaign-wide scheduler (:mod:`repro.campaigns.scheduler`);
see :func:`run_campaign`'s ``scheduler`` argument.  Resume works at two
grains under both engines: a finished cell is recognised by its
``summary.json`` and never re-executed, and a *partially* finished cell
re-enters the sweep-manifest resume path and runs only its missing
``(repetition, controller)`` items.

``campaign.json`` pins the campaign's identity: restarting with
``resume=True`` against a directory whose payload differs from the spec
raises instead of silently mixing two campaigns' results.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.campaigns.scenario import CampaignScenario, failure_schedule
from repro.campaigns.spec import CampaignCell, CampaignError, CampaignSpec
from repro.sim.config import UNSET, RunConfig, resolve_run_config
from repro.sim.multirun import MetricSummary, RepetitionStudy, run_repetitions
from repro.sim.parallel import resolve_n_jobs
from repro.state.manifest import completed_items

__all__ = [
    "CampaignResult",
    "CellStatus",
    "CampaignStatus",
    "SCHEDULERS",
    "TIMING_METRICS",
    "run_campaign",
    "campaign_status",
    "cell_directory",
    "write_cell_summary",
    "read_cell_summary",
    "read_cell_timing",
    "read_campaign_payload",
]

logger = logging.getLogger(__name__)

_CAMPAIGN_FILE = "campaign.json"
_SUMMARY_FILE = "summary.json"
_TIMING_FILE = "timing.json"
_CELLS_DIR = "cells"

#: Valid ``scheduler`` arguments of :func:`run_campaign`.
SCHEDULERS = ("auto", "global", "cell")

#: Metric summaries built from wall-clock measurements.  They are split
#: out of ``summary.json`` (whose contract is byte-identity across
#: reruns, worker counts and scheduler choices) into ``timing.json``;
#: the report layer merges them back for tables and CSV.
TIMING_METRICS = ("mean_decision_s",)


def cell_directory(out_dir: Union[str, Path], cell_id: str) -> Path:
    """The result directory of one cell."""
    return Path(out_dir) / _CELLS_DIR / cell_id


def _write_json(path: Path, payload: object) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp, path)


def _summary_payload(metrics: Dict[str, MetricSummary]) -> Dict[str, Dict]:
    return {
        metric: {
            "mean": summary.mean,
            "std": summary.std,
            "ci_low": summary.ci_low,
            "ci_high": summary.ci_high,
            "values": list(summary.values),
            "repetitions": list(summary.repetitions),
        }
        for metric, summary in metrics.items()
    }


def write_cell_summary(
    directory: Union[str, Path], cell: CampaignCell, study: RepetitionStudy
) -> Path:
    """Persist the aggregate of one finished cell (reproducible fields only).

    ``summary.json`` carries only seed-determined fields: the summary of
    a resumed campaign — or one executed by a different scheduler or
    worker count — must be byte-identical to an uninterrupted sequential
    run's.  Wall-clock-derived metric summaries (:data:`TIMING_METRICS`,
    i.e. controller decision time) and the run's execution accounting go
    to ``timing.json`` next to it; the report layer merges them back.
    """
    payload = {
        "cell_id": cell.cell_id,
        "index": cell.index,
        "seed": cell.seed,
        "overrides": [[path, value] for path, value in cell.overrides],
        "horizon": study.horizon,
        "repetitions": study.repetitions,
        "n_failed": study.n_failed,
        "failed_items": sorted(
            [f.repetition, f.controller_index] for f in study.failures
        ),
        "summaries": {
            controller: _summary_payload(
                {
                    metric: summary
                    for metric, summary in metrics.items()
                    if metric not in TIMING_METRICS
                }
            )
            for controller, metrics in study.summaries.items()
        },
    }
    timing = {
        "cell_id": cell.cell_id,
        "n_jobs": study.n_jobs,
        "wall_clock_seconds": study.wall_clock_seconds,
        "cpu_seconds": study.cpu_seconds,
        "summaries": {
            controller: _summary_payload(
                {
                    metric: summary
                    for metric, summary in metrics.items()
                    if metric in TIMING_METRICS
                }
            )
            for controller, metrics in study.summaries.items()
        },
    }
    directory = Path(directory)
    _write_json(directory / _TIMING_FILE, timing)
    path = directory / _SUMMARY_FILE
    _write_json(path, payload)
    return path


def read_cell_summary(directory: Union[str, Path]) -> Optional[Dict]:
    """The persisted summary of a cell directory, or ``None``."""
    path = Path(directory) / _SUMMARY_FILE
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def read_cell_timing(directory: Union[str, Path]) -> Optional[Dict]:
    """The persisted timing sidecar of a cell directory, or ``None``.

    Absent for campaigns written before the summary/timing split; the
    report layer treats that as "no timing metrics recorded".
    """
    path = Path(directory) / _TIMING_FILE
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def read_campaign_payload(out_dir: Union[str, Path]) -> Dict:
    """The ``campaign.json`` identity payload of a campaign directory."""
    path = Path(out_dir) / _CAMPAIGN_FILE
    if not path.exists():
        raise CampaignError(f"no campaign at {path}")
    return json.loads(path.read_text(encoding="utf-8"))


def _check_or_claim_directory(
    spec: CampaignSpec, out_dir: Path, resume: bool
) -> None:
    path = out_dir / _CAMPAIGN_FILE
    payload = spec.to_payload()
    if path.exists():
        existing = json.loads(path.read_text(encoding="utf-8"))
        if existing != payload:
            raise CampaignError(
                f"{out_dir} holds campaign {existing.get('name')!r} with a "
                "different spec; refusing to mix results (pick a fresh "
                "--out directory)"
            )
        if not resume:
            raise CampaignError(
                f"{out_dir} already holds this campaign; pass resume=True "
                "to continue it"
            )
    else:
        _write_json(path, payload)


@dataclass(frozen=True)
class CampaignResult:
    """A completed (or truncated) campaign run."""

    spec: CampaignSpec
    out_dir: Path
    cells: Tuple[CampaignCell, ...]
    #: cell_id -> freshly-executed study (cells skipped on resume or cut
    #: by ``max_cells`` are absent here; their summaries are on disk).
    studies: Dict[str, RepetitionStudy]
    executed: Tuple[str, ...]
    skipped: Tuple[str, ...]
    remaining: Tuple[str, ...]

    @property
    def complete(self) -> bool:
        return not self.remaining


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    *,
    config: Optional[RunConfig] = None,
    max_cells: Optional[int] = None,
    n_jobs: object = UNSET,
    resume: object = UNSET,
    max_retries: object = UNSET,
    collect_metrics: object = UNSET,
    scheduler: object = UNSET,
) -> CampaignResult:
    """Execute ``spec``'s cells into ``out_dir``; resumable at any point.

    ``config`` (a :class:`repro.sim.RunConfig`) carries the execution
    knobs — the same spelling :func:`repro.sim.run_simulation` and
    :func:`repro.sim.run_repetitions` use: ``jobs``, ``retries``,
    ``collect_metrics``, ``resume``, plus the campaign-only
    ``scheduler``.  The pre-``RunConfig`` keywords (``n_jobs``,
    ``max_retries``, and the bare ``resume``/``collect_metrics``/
    ``scheduler``) still work but raise :class:`DeprecationWarning`;
    mixing them with ``config=`` is a :class:`TypeError`.

    ``config.scheduler`` picks the execution engine:

    * ``"global"`` — the campaign-wide work-stealing scheduler
      (:mod:`repro.campaigns.scheduler`): one persistent pool of
      ``jobs`` workers drains the entire ``(cell × repetition ×
      controller)`` grid from a shared queue.
    * ``"cell"`` — the legacy path: cells run sequentially in expansion
      order, each with its own per-cell pool of ``jobs`` workers
      (forwarded to :func:`repro.sim.run_repetitions`).
    * ``"auto"`` (default) — ``"global"`` when ``jobs`` resolves to
      more than one worker, ``"cell"`` otherwise (in-process execution
      already shares world builds, so the pool buys nothing at 1).

    Both engines write the same directory tree with byte-identical
    ``summary.json`` per cell, so they can be mixed freely across
    resumes.  ``retries``/``collect_metrics`` keep their
    :meth:`ParallelRunner.run` semantics under both.  ``max_cells`` stops
    after executing that many cells — the programmatic stand-in for a
    mid-campaign kill, and what the CI smoke test uses to exercise the
    resume path deterministically.
    """
    run_config = resolve_run_config(
        "run_campaign",
        config,
        {
            "n_jobs": n_jobs,
            "resume": resume,
            "max_retries": max_retries,
            "collect_metrics": collect_metrics,
            "scheduler": scheduler,
        },
    )
    if run_config.scheduler not in SCHEDULERS:
        raise CampaignError(
            f"unknown scheduler {run_config.scheduler!r}; "
            f"pick one of {SCHEDULERS}"
        )
    if run_config.scheduler == "global" or (
        run_config.scheduler == "auto"
        and resolve_n_jobs(run_config.jobs) > 1
    ):
        from repro.campaigns.scheduler import run_campaign_scheduled

        return run_campaign_scheduled(
            spec,
            out_dir,
            n_jobs=run_config.jobs,
            resume=run_config.resume,
            max_retries=run_config.retries,
            max_cells=max_cells,
            collect_metrics=run_config.collect_metrics,
        )
    out_dir = Path(out_dir)
    cells = spec.expand()
    _check_or_claim_directory(spec, out_dir, run_config.resume)

    studies: Dict[str, RepetitionStudy] = {}
    executed: List[str] = []
    skipped: List[str] = []
    remaining: List[str] = []
    budget = len(cells) if max_cells is None else max_cells
    for cell in cells:
        cell_dir = cell_directory(out_dir, cell.cell_id)
        if read_cell_summary(cell_dir) is not None:
            skipped.append(cell.cell_id)
            continue
        if budget <= 0:
            remaining.append(cell.cell_id)
            continue
        budget -= 1
        logger.info(
            "campaign %s: cell %s (%d/%d), seed=%d",
            spec.name, cell.cell_id, cell.index + 1, len(cells), cell.seed,
        )
        study = run_repetitions(
            CampaignScenario(cell.scenario),
            seed=cell.seed,
            repetitions=spec.repetitions,
            horizon=cell.scenario.horizon,
            demands_known=spec.demands_known,
            confidence=spec.confidence,
            config=RunConfig(
                jobs=run_config.jobs,
                retries=run_config.retries,
                collect_metrics=run_config.collect_metrics,
                checkpoint_dir=cell_dir,
                resume=run_config.resume,
            ),
            n_controllers=len(cell.scenario.controllers),
            failures=failure_schedule(cell.scenario),
        )
        write_cell_summary(cell_dir, cell, study)
        studies[cell.cell_id] = study
        executed.append(cell.cell_id)
    return CampaignResult(
        spec=spec,
        out_dir=out_dir,
        cells=cells,
        studies=studies,
        executed=tuple(executed),
        skipped=tuple(skipped),
        remaining=tuple(remaining),
    )


@dataclass(frozen=True)
class CellStatus:
    """Progress of one cell: persisted items versus the full grid."""

    cell_id: str
    complete: bool
    items_done: int
    items_total: int


@dataclass(frozen=True)
class CampaignStatus:
    """Progress of a campaign directory, cell by cell."""

    name: str
    out_dir: Path
    cells: Tuple[CellStatus, ...]

    @property
    def n_complete(self) -> int:
        return sum(1 for cell in self.cells if cell.complete)

    @property
    def complete(self) -> bool:
        return self.n_complete == len(self.cells)

    def table(self) -> str:
        lines = [
            f"campaign {self.name!r}: {self.n_complete}/{len(self.cells)} "
            f"cells complete ({self.out_dir})"
        ]
        width = max((len(c.cell_id) for c in self.cells), default=4)
        for cell in self.cells:
            state = (
                "done" if cell.complete
                else f"{cell.items_done}/{cell.items_total} items"
            )
            lines.append(f"  {cell.cell_id:<{width}}  {state}")
        return "\n".join(lines)


def campaign_status(
    out_dir: Union[str, Path], spec: Optional[CampaignSpec] = None
) -> CampaignStatus:
    """Inspect a campaign directory without executing anything.

    With ``spec`` given, its expansion defines the cell list (and the
    directory payload is checked against it); otherwise the cell ids are
    reconstructed from ``campaign.json``'s recorded factor grid by
    re-expanding the persisted payload.
    """
    out_dir = Path(out_dir)
    payload = read_campaign_payload(out_dir)
    if spec is not None and spec.to_payload() != payload:
        raise CampaignError(
            f"{out_dir} holds campaign {payload.get('name')!r} with a "
            "different spec than the one given"
        )
    if spec is None:
        spec = _spec_from_payload(payload)
    cells = spec.expand()
    items_total = spec.repetitions * len(spec.scenario.controllers)
    statuses = []
    for cell in cells:
        cell_dir = cell_directory(out_dir, cell.cell_id)
        done = read_cell_summary(cell_dir) is not None
        n_items = len(completed_items(cell_dir))
        statuses.append(
            CellStatus(
                cell_id=cell.cell_id,
                complete=done,
                items_done=items_total if done else n_items,
                items_total=spec.repetitions
                * len(cell.scenario.controllers),
            )
        )
    return CampaignStatus(
        name=spec.name, out_dir=out_dir, cells=tuple(statuses)
    )


def _spec_from_payload(payload: Dict) -> CampaignSpec:
    """Rebuild a :class:`CampaignSpec` from its ``campaign.json`` payload."""
    from repro.campaigns.spec import FactorAxis, OutageSpec, ScenarioSpec

    scenario_payload = dict(payload["scenario"])
    scenario_payload["controllers"] = tuple(scenario_payload["controllers"])
    scenario_payload["outages"] = tuple(
        OutageSpec(**row) for row in scenario_payload.get("outages", ())
    )
    factors = tuple(
        FactorAxis(path=row["path"], values=tuple(row["values"]))
        for row in payload.get("factors", ())
    )
    return CampaignSpec(
        name=payload["name"],
        seed=payload["seed"],
        repetitions=payload["repetitions"],
        confidence=payload.get("confidence", 0.95),
        demands_known=payload.get("demands_known", True),
        scenario=ScenarioSpec(**scenario_payload),
        factors=factors,
    )
