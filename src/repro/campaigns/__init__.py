"""Declarative experiment campaigns over the name registries.

The campaign layer turns "run this grid of experiments" into data: a
:class:`CampaignSpec` (Python or TOML) names a base scenario entirely
through the registries — topology, workload, controllers, predictors —
and a cartesian factor grid over it; :meth:`CampaignSpec.expand`
deterministically derives one seeded :class:`CampaignCell` per grid
point; :func:`run_campaign` executes the cells — either sequentially
per cell or through the campaign-wide work-stealing scheduler
(:mod:`repro.campaigns.scheduler`, one persistent worker pool over the
full ``cell × repetition × controller`` grid) — with per-cell
checkpoint directories, so a killed campaign restarted with
``resume=True`` re-runs only the missing work; and
:mod:`repro.campaigns.report` aggregates the result tree into one
table/CSV.  CLI front-end: ``repro campaign run|status|report``.
"""

from repro.campaigns.report import (
    CampaignReport,
    campaign_to_csv,
    load_campaign_report,
    render_campaign_report,
    write_campaign_report,
)
from repro.campaigns.runner import (
    SCHEDULERS,
    CampaignResult,
    CampaignStatus,
    CellStatus,
    campaign_status,
    cell_directory,
    run_campaign,
)
from repro.campaigns.scenario import CampaignScenario, failure_schedule
from repro.campaigns.scheduler import run_campaign_scheduled
from repro.campaigns.spec import (
    CampaignCell,
    CampaignError,
    CampaignSpec,
    FactorAxis,
    OutageSpec,
    ScenarioSpec,
    load_campaign_toml,
)

__all__ = [
    "CampaignCell",
    "CampaignError",
    "CampaignReport",
    "CampaignResult",
    "CampaignScenario",
    "CampaignSpec",
    "CampaignStatus",
    "CellStatus",
    "FactorAxis",
    "OutageSpec",
    "SCHEDULERS",
    "ScenarioSpec",
    "campaign_status",
    "campaign_to_csv",
    "cell_directory",
    "failure_schedule",
    "load_campaign_report",
    "load_campaign_toml",
    "render_campaign_report",
    "run_campaign",
    "run_campaign_scheduled",
    "write_campaign_report",
]
