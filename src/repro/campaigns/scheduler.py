"""Campaign-wide work-stealing scheduler: one pool over the whole grid.

The historical execution model (:func:`repro.campaigns.runner.run_campaign`
with ``scheduler="cell"``) runs cells *sequentially*: each cell builds its
own :class:`~repro.sim.parallel.ParallelRunner` and its own short-lived
``ProcessPoolExecutor``, so a campaign's wall-clock is bounded by the
slowest repetition of every cell in turn, pays pool spin-up plus builder
pickling per cell, and leaves workers idle through every cell's tail.

This module flattens the entire campaign into one global queue of
``(cell, repetition, controller)`` work items and drains it through a
**single persistent pool**:

* **Dispatch units.**  The missing items of one ``(cell, repetition)``
  are dispatched together, so a worker builds the repetition's world once
  and runs every queued controller on it — the same world sharing the
  serial path has always used.  World realisations are slot-keyed and
  controller streams are name-keyed, so any grouping or ordering of
  items produces bit-identical results (the determinism argument of
  :mod:`repro.sim.parallel`).
* **Longest-expected-cell-first.**  Units are enqueued cell-major in
  decreasing expected remaining cost (pending items × horizon ×
  requests), so the big cells start first and small cells fill the tail.
* **Work stealing.**  All units go into the one shared queue up front;
  an idle worker simply takes the next unit regardless of which cell it
  belongs to, so no worker idles while any cell has work left.  A worker
  whose consecutive units belong to different cells counts as a steal
  (``campaign.items_stolen``).
* **Per-worker world cache.**  Each worker process keeps a small cache
  of built worlds keyed by cell id; a unit that lands on a worker which
  just built the same ``(cell, repetition)`` reuses the build — but only
  for controller indices that have not yet run on it, because
  controllers are stateful and a rerun must start fresh.  Hit/miss
  counts surface as ``campaign.world_cache_hits`` / ``_misses``.
* **Streaming results.**  Every completed item is persisted immediately
  into the cell's existing checkpoint tree
  (``cells/<id>/rep*-ctrl*.npz`` + sweep manifest), and a cell's
  ``summary.json`` is written the moment its grid completes — so the
  two-grain resume story is unchanged: a finished cell is recognised by
  its summary, a partial cell re-enters through the sweep-manifest
  resume path, and a killed campaign resumes bit-identically.

Failure semantics mirror :meth:`ParallelRunner.run`: scenario errors are
captured per item and recorded on the owning cell; ``max_retries`` adds
bounded retry rounds on the same persistent pool (a broken pool is
replaced); with ``max_retries=0`` pool infrastructure errors propagate.
"""

from __future__ import annotations

import logging
import os
import time
import traceback
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.campaigns.scenario import CampaignScenario, failure_schedule
from repro.campaigns.spec import CampaignCell, CampaignSpec, ScenarioSpec
from repro.sim.failures import FailureSchedule
from repro.sim.multirun import RepetitionStudy, aggregate_work_results
from repro.sim.parallel import (
    WorkItem,
    WorkResult,
    World,
    build_world,
    controller_names_from_results,
    load_work_result,
    make_worker_pool,
    persist_work_result,
    resolve_n_jobs,
    run_item_on_world,
)
from repro.state import SweepManifest, completed_items, finalise_controllers
from repro.utils.validation import require_non_negative

__all__ = [
    "ScheduledUnit",
    "UnitOutcome",
    "run_campaign_scheduled",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ScheduledUnit:
    """One dispatch unit: the queued items of one ``(cell, repetition)``.

    Self-contained and picklable — a worker needs nothing but the unit to
    rebuild the repetition's world (`scenario` + `seed`) and run every
    listed controller on it.
    """

    cell_id: str
    scenario: ScenarioSpec
    seed: int
    repetition: int
    controller_indices: Tuple[int, ...]
    horizon: int
    demands_known: bool
    collect_metrics: bool
    failures: Optional[FailureSchedule]


@dataclass(frozen=True)
class UnitOutcome:
    """What a worker sends back: one :class:`WorkResult` per unit item."""

    cell_id: str
    repetition: int
    results: Tuple[WorkResult, ...]
    #: True when the worker served the world from its per-process cache.
    cache_hit: bool


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #

#: Worlds kept per worker process (LRU by cell id).  Small on purpose:
#: a world holds the full topology + requests + controller line-up, and
#: the scheduler dispatches cell-major so consecutive units of one cell
#: dominate; capacity beyond a few cells buys nothing.
_WORLD_CACHE_CAPACITY = 4


class _CachedWorld:
    """One cached build plus the controller indices already run on it."""

    __slots__ = ("repetition", "world", "used")

    def __init__(self, repetition: int, world: World, used: Set[int]) -> None:
        self.repetition = repetition
        self.world = world
        self.used = used


_WORLD_CACHE: "OrderedDict[str, _CachedWorld]" = OrderedDict()


def _cached_world(unit: ScheduledUnit) -> Tuple[World, bool]:
    """The unit's world, from this worker's cache when reusable.

    A cached build is only reusable for controller indices that have not
    run on it yet: controllers are stateful, and re-running one on a
    world it already consumed would continue from mutated state instead
    of reproducing a fresh run (the retry path hits exactly this).
    """
    entry = _WORLD_CACHE.get(unit.cell_id)
    if (
        entry is not None
        and entry.repetition == unit.repetition
        and not entry.used.intersection(unit.controller_indices)
    ):
        entry.used.update(unit.controller_indices)
        # _WORLD_CACHE is *designed* as per-worker state: each pool
        # process keeps its own LRU of world builds, and outcomes are
        # pure functions of the unit, so divergence between workers'
        # caches cannot change results.
        # repro: allow[MP002] -- intentional per-worker world-build LRU
        _WORLD_CACHE.move_to_end(unit.cell_id)
        return entry.world, True
    world = build_world(
        CampaignScenario(unit.scenario), unit.seed, unit.repetition
    )
    # repro: allow[MP002] -- intentional per-worker world cache, see above
    _WORLD_CACHE[unit.cell_id] = _CachedWorld(
        unit.repetition, world, set(unit.controller_indices)
    )
    # repro: allow[MP002] -- intentional per-worker world cache, see above
    _WORLD_CACHE.move_to_end(unit.cell_id)
    while len(_WORLD_CACHE) > _WORLD_CACHE_CAPACITY:
        # repro: allow[MP002] -- intentional per-worker world cache, see above
        _WORLD_CACHE.popitem(last=False)
    return world, False


def _execute_unit(unit: ScheduledUnit) -> UnitOutcome:
    """Run every item of one unit on a single world build; never raises.

    A build crash fails every item of the unit (the world is unknowable
    without it); item-level errors are captured per item by
    :func:`run_item_on_world`, so one bad controller cannot take its
    siblings down.
    """
    try:
        world, cache_hit = _cached_world(unit)
    except Exception as exc:  # noqa: BLE001 — reported per item, never fatal
        error_tb = traceback.format_exc()
        return UnitOutcome(
            cell_id=unit.cell_id,
            repetition=unit.repetition,
            results=tuple(
                WorkResult(
                    repetition=unit.repetition,
                    controller_index=index,
                    controller_name=None,
                    result=None,
                    error=f"{type(exc).__name__}: {exc}",
                    error_traceback=error_tb,
                    wall_seconds=0.0,
                    cpu_seconds=0.0,
                    pid=os.getpid(),
                )
                for index in unit.controller_indices
            ),
            cache_hit=False,
        )
    results = tuple(
        run_item_on_world(
            world,
            WorkItem(repetition=unit.repetition, controller_index=index),
            unit.horizon,
            demands_known=unit.demands_known,
            collect_metrics=unit.collect_metrics,
            failures=unit.failures,
        )
        for index in unit.controller_indices
    )
    return UnitOutcome(
        cell_id=unit.cell_id,
        repetition=unit.repetition,
        results=results,
        cache_hit=cache_hit,
    )


# --------------------------------------------------------------------- #
# Parent side
# --------------------------------------------------------------------- #


@dataclass
class _CellPlan:
    """Parent-side execution state of one unfinished cell."""

    cell: CampaignCell
    directory: Path
    manifest: SweepManifest
    failures: Optional[FailureSchedule]
    #: (repetition, controller_index) -> result; starts with the items
    #: loaded back from disk on resume, grows as units stream in.
    results: Dict[Tuple[int, int], WorkResult] = field(default_factory=dict)
    #: repetition -> controller indices still to execute.
    queued: Dict[int, List[int]] = field(default_factory=dict)
    #: Items submitted and not yet returned.
    pending: int = 0

    def expected_cost(self) -> float:
        """Dispatch-ordering heuristic: pending work × per-item weight.

        Horizon × requests tracks the slot loop's dominant dimensions; it
        only orders the queue (big cells first), so a rough proxy is fine.
        """
        n_items = sum(len(indices) for indices in self.queued.values())
        scenario = self.cell.scenario
        return float(n_items * scenario.horizon * scenario.n_requests)


def _plan_units(
    plan: _CellPlan, spec: CampaignSpec, collect_metrics: bool
) -> List[ScheduledUnit]:
    """Turn a plan's queued items into dispatch units (repetition-major)."""
    units = []
    for repetition in sorted(plan.queued):
        indices = plan.queued[repetition]
        if not indices:
            continue
        units.append(
            ScheduledUnit(
                cell_id=plan.cell.cell_id,
                scenario=plan.cell.scenario,
                seed=plan.cell.seed,
                repetition=repetition,
                controller_indices=tuple(sorted(indices)),
                horizon=plan.cell.scenario.horizon,
                demands_known=spec.demands_known,
                collect_metrics=collect_metrics,
                failures=plan.failures,
            )
        )
        plan.pending += len(indices)
    plan.queued = {}
    return units


def _ordered_units(
    plans: Sequence[_CellPlan], spec: CampaignSpec, collect_metrics: bool
) -> List[ScheduledUnit]:
    """All queued units, longest-expected-cell-first (ties by cell index)."""
    ordered = sorted(
        plans, key=lambda plan: (-plan.expected_cost(), plan.cell.index)
    )
    units: List[ScheduledUnit] = []
    for plan in ordered:
        units.extend(_plan_units(plan, spec, collect_metrics))
    return units


def run_campaign_scheduled(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    *,
    n_jobs: Optional[int] = None,
    resume: bool = False,
    max_retries: int = 0,
    max_cells: Optional[int] = None,
    collect_metrics: Optional[bool] = None,
) -> "CampaignResult":
    """Execute ``spec`` with the campaign-wide scheduler (see module doc).

    Same contract as :func:`repro.campaigns.runner.run_campaign` — same
    directory tree, same resume semantics, bit-identical ``summary.json``
    per cell — but ``n_jobs`` counts campaign-global workers drained from
    one shared queue instead of workers within each sequential cell.
    ``max_cells`` still budgets the first N unfinished cells in expansion
    order (the kill/resume hook CI uses), and ``collect_metrics`` keeps
    the tri-state semantics of :meth:`ParallelRunner.run`.
    """
    from repro.campaigns.runner import (
        CampaignResult,
        _check_or_claim_directory,
        cell_directory,
        read_cell_summary,
        write_cell_summary,
    )

    require_non_negative("max_retries", max_retries)
    out_dir = Path(out_dir)
    cells = spec.expand()
    _check_or_claim_directory(spec, out_dir, resume)
    workers = resolve_n_jobs(n_jobs)
    parent_registry = obs.active_registry()
    if collect_metrics is None:
        collect_metrics = parent_registry is not None

    skipped: List[str] = []
    remaining: List[str] = []
    plans: Dict[str, _CellPlan] = {}
    budget = len(cells) if max_cells is None else max_cells
    for cell in cells:
        directory = cell_directory(out_dir, cell.cell_id)
        if read_cell_summary(directory) is not None:
            skipped.append(cell.cell_id)
            continue
        if budget <= 0:
            remaining.append(cell.cell_id)
            continue
        budget -= 1
        manifest = SweepManifest(
            seed=int(cell.seed),
            repetitions=int(spec.repetitions),
            horizon=int(cell.scenario.horizon),
            demands_known=bool(spec.demands_known),
        )
        loaded: Dict[Tuple[int, int], WorkResult] = {}
        if resume and SweepManifest.exists(directory):
            SweepManifest.read(directory).require_compatible(manifest)
            for (r, c), _path in sorted(completed_items(directory).items()):
                if r < spec.repetitions:
                    loaded[(r, c)] = load_work_result(directory, r, c)
        manifest.write(directory)
        plan = _CellPlan(
            cell=cell,
            directory=directory,
            manifest=manifest,
            failures=failure_schedule(cell.scenario),
            results=loaded,
        )
        n_controllers = len(cell.scenario.controllers)
        for repetition in range(spec.repetitions):
            missing = [
                index
                for index in range(n_controllers)
                if (repetition, index) not in loaded
            ]
            if missing:
                plan.queued[repetition] = missing
        plans[cell.cell_id] = plan

    logger.info(
        "campaign %s: global scheduler, %d worker(s), %d cell(s) to run "
        "(%d skipped, %d beyond budget)",
        spec.name, workers, len(plans), len(skipped), len(remaining),
    )

    wall_start = time.perf_counter()
    studies: Dict[str, RepetitionStudy] = {}
    last_cell_by_pid: Dict[int, str] = {}

    def finalise(plan: _CellPlan) -> None:
        results = sorted(
            plan.results.values(),
            key=lambda r: (r.repetition, r.controller_index),
        )
        finalise_controllers(
            plan.directory, plan.manifest, controller_names_from_results(results)
        )
        study = aggregate_work_results(
            results,
            horizon=plan.cell.scenario.horizon,
            repetitions=spec.repetitions,
            confidence=spec.confidence,
            n_jobs=workers,
            wall_clock_seconds=time.perf_counter() - wall_start,
        )
        write_cell_summary(plan.directory, plan.cell, study)
        studies[plan.cell.cell_id] = study
        obs.inc("campaign.cells_completed")

    def handle_outcome(unit: ScheduledUnit, outcome: UnitOutcome) -> None:
        plan = plans[unit.cell_id]
        pid = outcome.results[0].pid if outcome.results else 0
        if pid:
            previous = last_cell_by_pid.get(pid)
            if previous is not None and previous != unit.cell_id:
                obs.inc("campaign.items_stolen", len(outcome.results))
            last_cell_by_pid[pid] = unit.cell_id
        if outcome.cache_hit:
            obs.inc("campaign.world_cache_hits")
        else:
            obs.inc("campaign.world_cache_misses")
        for work_result in outcome.results:
            if work_result.ok:
                persist_work_result(plan.directory, work_result)
            if parent_registry is not None and work_result.metrics is not None:
                parent_registry.merge(
                    obs.MetricsRegistry.from_snapshot(work_result.metrics)
                )
            key = (work_result.repetition, work_result.controller_index)
            plan.results[key] = work_result
        plan.pending -= len(outcome.results)
        obs.gauge(
            "campaign.cells_in_flight",
            sum(1 for p in plans.values() if p.pending > 0),
        )
        # Stream the summary out the moment the cell's grid is clean; a
        # cell carrying failures waits for the retry rounds (or the final
        # sweep below) so retried items can still amend it.
        if plan.pending == 0 and all(r.ok for r in plan.results.values()):
            finalise(plan)

    def drain(
        pool: ProcessPoolExecutor,
        units: Sequence[ScheduledUnit],
        capture_pool_errors: bool,
    ) -> bool:
        """Submit all units, process outcomes as they land; True if pool ok."""
        pool_ok = True
        futures: Dict["Future[UnitOutcome]", ScheduledUnit] = {
            pool.submit(_execute_unit, unit): unit for unit in units
        }
        for future in as_completed(futures):
            unit = futures[future]
            if capture_pool_errors:
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 — retried next round
                    pool_ok = False
                    error_tb = traceback.format_exc()
                    outcome = UnitOutcome(
                        cell_id=unit.cell_id,
                        repetition=unit.repetition,
                        results=tuple(
                            WorkResult(
                                repetition=unit.repetition,
                                controller_index=index,
                                controller_name=None,
                                result=None,
                                error=f"{type(exc).__name__}: {exc}",
                                error_traceback=error_tb,
                                wall_seconds=0.0,
                                cpu_seconds=0.0,
                                pid=0,
                            )
                            for index in unit.controller_indices
                        ),
                        cache_hit=False,
                    )
            else:
                outcome = future.result()
            handle_outcome(unit, outcome)
        return pool_ok

    units = _ordered_units(list(plans.values()), spec, collect_metrics)
    obs.inc("campaign.units_dispatched", len(units))
    pool: Optional[ProcessPoolExecutor] = None
    pool_ok = True
    try:
        if units:
            pool = make_worker_pool(min(workers, len(units)))
            pool_ok = drain(pool, units, capture_pool_errors=max_retries > 0)
        for _round in range(max_retries):
            for plan in plans.values():
                for (r, c), result in sorted(plan.results.items()):
                    if not result.ok and plan.cell.cell_id not in studies:
                        plan.queued.setdefault(r, []).append(c)
            retry_units = _ordered_units(
                list(plans.values()), spec, collect_metrics
            )
            if not retry_units:
                break
            n_retried = sum(len(u.controller_indices) for u in retry_units)
            obs.inc("sim.retries", n_retried)
            if pool is None or not pool_ok:
                if pool is not None:
                    pool.shutdown(wait=False)
                pool = make_worker_pool(min(workers, len(retry_units)))
                pool_ok = True
            pool_ok = drain(pool, retry_units, capture_pool_errors=True)
    finally:
        if pool is not None:
            pool.shutdown()

    # Whatever was not streamed out above: cells whose items were all on
    # disk already (nothing pending) and cells that kept failures past
    # the retry budget — their summaries record the failed items.
    for cell in cells:
        plan = plans.get(cell.cell_id)
        if plan is not None and cell.cell_id not in studies:
            finalise(plan)

    executed = tuple(c.cell_id for c in cells if c.cell_id in studies)
    return CampaignResult(
        spec=spec,
        out_dir=out_dir,
        cells=cells,
        studies=studies,
        executed=executed,
        skipped=tuple(skipped),
        remaining=tuple(remaining),
    )
