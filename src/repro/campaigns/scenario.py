"""From a declarative :class:`ScenarioSpec` to a runnable world.

:class:`CampaignScenario` is the bridge between the spec layer and the
repetition machinery: it is a picklable scenario *builder* (the callable
``repro.sim.run_repetitions`` fans out over worker processes), built
entirely through the name registries — :func:`repro.mec.make_topology`,
:func:`repro.workload.make_workload`, :func:`repro.core.make_controller`
— so the identity the spec declares is enforced on every object the
cell actually runs.

The construction recipe is the one the example scripts established:
synthesise a Wi-Fi trace, anchor the topology on its hotspots, derive
one request per trace user, then calibrate ``c_unit`` against the mean
basic demand.  Every random draw comes from the repetition's
:class:`~repro.utils.seeding.RngRegistry` streams, so two cells with
the same scenario and seed are bit-identical worlds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.campaigns.spec import ScenarioSpec
from repro.core.controller import Controller
from repro.core.registry import make_controller
from repro.mec.delay import DriftingDelay
from repro.mec.network import MECNetwork
from repro.mec.registry import make_topology
from repro.sim.failures import FailureSchedule
from repro.utils.seeding import RngRegistry
from repro.workload.demand import DemandModel
from repro.workload.registry import make_workload
from repro.workload.trace import requests_from_trace, synthesize_nyc_wifi_trace

__all__ = ["CampaignScenario", "failure_schedule"]


def failure_schedule(spec: ScenarioSpec) -> Optional[FailureSchedule]:
    """The scripted outages of ``spec`` as a schedule, or ``None``."""
    if not spec.outages:
        return None
    schedule = FailureSchedule()
    for outage in spec.outages:
        schedule.add_outage(
            outage.station,
            start=outage.start,
            duration=outage.duration,
            remaining_fraction=outage.remaining_fraction,
        )
    return schedule


class CampaignScenario:
    """Picklable scenario builder realising one :class:`ScenarioSpec`.

    Instances are the ``build`` argument of
    :func:`repro.sim.run_repetitions`: called with a per-repetition
    :class:`RngRegistry`, they return the usual
    ``(network, demand_model, controllers)`` triple.
    """

    def __init__(self, spec: ScenarioSpec) -> None:
        spec.validate_names()
        self.spec = spec

    def __call__(
        self, rngs: RngRegistry
    ) -> Tuple[MECNetwork, DemandModel, List[Controller]]:
        spec = self.spec
        trace = synthesize_nyc_wifi_trace(
            spec.n_hotspots,
            spec.n_requests,
            rngs.get("trace"),
            horizon_slots=spec.horizon,
        )
        network = make_topology(
            spec.topology,
            rngs,
            n_stations=spec.n_stations,
            n_services=spec.n_services,
            anchor_points=[h.location for h in trace.hotspots],
            **spec.topology_options,
        )
        network.delays = DriftingDelay(
            network.stations, rngs.get("drift"), drift_ms=spec.drift_ms
        )
        requests = requests_from_trace(
            trace, network.services, rngs.get("requests")
        )
        if spec.capacity_headroom is not None:
            mean_demand = float(
                np.mean([r.basic_demand_mb for r in requests])
            )
            network.c_unit_mhz = float(
                network.capacities_mhz.min()
                / (spec.capacity_headroom * mean_demand)
            )
        model = make_workload(
            spec.workload, requests, rngs.get("demand"), **spec.workload_options
        )
        controllers = [
            make_controller(
                name,
                network,
                requests,
                rngs.get(f"controller/{name}"),
                **spec.controller_options.get(name, {}),
            )
            for name in spec.controllers
        ]
        return network, model, controllers

    def __repr__(self) -> str:
        spec = self.spec
        return (
            f"CampaignScenario(topology={spec.topology!r}, "
            f"workload={spec.workload!r}, "
            f"controllers={list(spec.controllers)})"
        )
